"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (the
experiment index lives in DESIGN.md §4).  Tables are printed through the
``emit`` fixture, which bypasses pytest's output capture so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the paper-style rows alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

from typing import Callable

import pytest


@pytest.fixture
def emit(capsys) -> Callable[[str], None]:
    """Print a block of text straight to the terminal (uncaptured)."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
