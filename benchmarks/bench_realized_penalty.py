"""A3 — ablation: Eq. 5 prices the penalty of the *mean*, contracts pay
the mean of the *realized* penalty.

``max(0, X - allowance)`` is convex, so monthly settlement of simulated
downtime pays at least Eq. 5's expectation (Jensen).  This bench settles
20 simulated years for the interesting case-study options and reports
the gap — the amount a provider using Eq. 5 alone would under-budget.
"""

from __future__ import annotations

import pytest

from repro.cli.formatting import render_table
from repro.optimizer.brute_force import brute_force_optimize
from repro.sla.measurement import measure_compliance
from repro.workloads.case_study import case_study_contract, case_study_problem


def test_expected_vs_realized_penalty(benchmark, emit):
    result = brute_force_optimize(case_study_problem())
    contract = case_study_contract()
    interesting = (1, 3, 5)  # slips badly / slips a little / meets

    def settle_all():
        return {
            option_id: measure_compliance(
                result.option(option_id).system, contract,
                years=20.0, seed=600 + option_id,
            )
            for option_id in interesting
        }

    reports = benchmark.pedantic(settle_all, rounds=1, iterations=1)

    rows = []
    for option_id in interesting:
        report = reports[option_id]
        rows.append(
            (
                result.option(option_id).label,
                f"${report.expected_monthly_penalty:,.2f}",
                f"${report.mean_realized_penalty:,.2f}",
                f"${report.jensen_gap:+,.2f}",
                f"{report.breach_fraction * 100:.1f}%",
                f"${report.worst_month_penalty:,.2f}",
            )
        )
    emit(
        "[A3] Eq. 5 expected vs realized monthly penalty "
        "(20 settled years per option):\n"
        + render_table(
            ("option", "Eq. 5 expected", "mean realized", "Jensen gap",
             "months breached", "worst month"),
            rows,
        )
    )

    # Option #1 misses the SLA in expectation AND in most months; the
    # realized mean must not be materially below the expectation.
    assert reports[1].mean_realized_penalty >= (
        reports[1].expected_monthly_penalty * 0.8
    )
    # Option #3 straddles the allowance: the Jensen gap is strictly
    # positive — Eq. 5 under-budgets this configuration.
    assert reports[3].jensen_gap > 0.0
    # Option #5 meets the SLA in expectation; Eq. 5 says $0, but rare
    # bad months still cost something (the gap *is* the whole payout).
    assert reports[5].expected_monthly_penalty == 0.0
    assert reports[5].mean_realized_penalty >= 0.0
    # Breach frequency falls with more HA.
    assert (
        reports[1].breach_fraction
        > reports[3].breach_fraction
        >= reports[5].breach_fraction
    )
