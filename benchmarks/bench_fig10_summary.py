"""E2 — Figure 10: summary of results & resulting cost efficiency.

Regenerates the as-is vs recommended comparison and asserts the three
headline outcomes the paper's text states: option #3 recommended,
option #5 the minimum-penalty alternative, and savings vs the deployed
ad-hoc option #8 close to 62%.
"""

from __future__ import annotations

import pytest

from repro.broker.reports import render_summary
from repro.optimizer.brute_force import brute_force_optimize
from repro.workloads.case_study import (
    AS_IS_OPTION_ID,
    EXPECTED_BEST_OPTION_ID,
    EXPECTED_MIN_PENALTY_OPTION_ID,
    EXPECTED_SAVINGS_FRACTION,
    SAVINGS_TOLERANCE,
    case_study_problem,
)


def test_fig10_summary(benchmark, emit):
    result = benchmark(lambda: brute_force_optimize(case_study_problem()))
    as_is = result.option(AS_IS_OPTION_ID)
    savings = result.savings_vs(as_is)

    emit(render_summary(
        result, as_is,
        title="[E2] Figure 10 — summary of results & cost efficiency:",
    ) + f"\n  paper-reported savings: ~62%  |  measured: {savings * 100:.1f}%")

    assert result.best.option_id == EXPECTED_BEST_OPTION_ID
    assert result.min_penalty_option.option_id == EXPECTED_MIN_PENALTY_OPTION_ID
    assert savings == pytest.approx(
        EXPECTED_SAVINGS_FRACTION, abs=SAVINGS_TOLERANCE
    )
    # The as-is strategy is over-engineered: it pays more than double the
    # recommendation for uptime beyond what the contract needs.
    assert as_is.tco.total > 2 * result.best.tco.total
