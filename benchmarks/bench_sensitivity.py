"""E7 — savings sensitivity: "actual savings depend on how ad-hoc the
original redundancy engineering has been" (§III-B).

Sweeps the penalty rate and the SLA target over the case study and
reports where the recommendation crosses from no-HA to storage-only to
storage+network — the crossovers that make the broker's optimization
worth running at all.
"""

from __future__ import annotations

from repro.cli.formatting import render_table
from repro.cost.rates import LaborRate
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.workloads.case_study import case_study_problem


def _with_contract(contract: Contract) -> OptimizationProblem:
    base = case_study_problem()
    return OptimizationProblem(
        base_system=base.base_system,
        registry=base.registry,
        contract=contract,
        labor_rate=base.labor_rate,
    )


def test_penalty_rate_sweep(benchmark, emit):
    rates = (0.0, 10.0, 50.0, 100.0, 250.0, 1000.0, 5000.0)

    def sweep():
        return {
            rate: brute_force_optimize(
                _with_contract(Contract.linear(98.0, rate))
            )
            for rate in rates
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for rate in rates:
        best = results[rate].best
        as_is = results[rate].option(8)
        savings = results[rate].savings_vs(as_is)
        rows.append(
            (
                f"${rate:,.0f}",
                best.label,
                f"{best.tco.uptime_probability * 100:.4f}%",
                f"${best.tco.total:,.2f}",
                f"{savings * 100:.1f}%",
            )
        )
    emit(
        "[E7] penalty-rate sweep (SLA 98%): recommendation crossovers:\n"
        + render_table(
            ("S_P/hour", "recommended", "U_s", "TCO/mo", "savings vs #8"), rows
        )
    )

    # Shape: free penalties -> no HA; the paper's $100 -> storage only;
    # punitive rates -> the cheapest SLA-meeting option (#5), never #8.
    assert results[0.0].best.option_id == 1
    assert results[100.0].best.option_id == 3
    assert results[5000.0].best.option_id == 5
    # HA footprint grows monotonically with the penalty rate.
    footprints = [
        len(results[rate].best.clustered_components) for rate in rates
    ]
    assert footprints == sorted(footprints)


def test_sla_target_sweep(benchmark, emit):
    targets = (95.0, 97.0, 98.0, 99.0, 99.5, 99.9)

    def sweep():
        return {
            target: brute_force_optimize(
                _with_contract(Contract.linear(target, 100.0))
            )
            for target in targets
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for target in targets:
        best = results[target].best
        rows.append(
            (
                f"{target:g}%",
                best.label,
                f"{best.tco.uptime_probability * 100:.4f}%",
                f"${best.tco.total:,.2f}",
            )
        )
    emit(
        "[E7] SLA-target sweep (S_P $100/h):\n"
        + render_table(("U_SLA", "recommended", "U_s", "TCO/mo"), rows)
    )

    # Loose SLAs need no HA; tighter SLAs buy monotonically more.
    footprints = [
        len(results[target].best.clustered_components) for target in targets
    ]
    assert footprints == sorted(footprints)
    assert footprints[0] == 0
    assert footprints[-1] >= 2
