"""A1 — ablation: Eq. 2's hidden unlimited-repair-crew assumption.

Eq. 2 treats nodes as i.i.d. with down probability ``P_i``, which is the
steady state of a birth-death chain with *parallel* repairs.  With a
finite repair crew, failed nodes queue for attention and the cluster's
breakdown probability rises.  This bench quantifies the gap on the
case-study compute cluster and on the full system TCO.
"""

from __future__ import annotations

import pytest

from repro.availability.cluster_math import cluster_up_probability
from repro.availability.markov import MarkovClusterModel, markov_cluster_up_probability
from repro.cli.formatting import render_table
from repro.optimizer.brute_force import brute_force_optimize
from repro.workloads.case_study import case_study_problem


def test_repair_crew_ablation(benchmark, emit):
    result = brute_force_optimize(case_study_problem())
    compute = result.option(8).system.cluster("compute")  # 3+1 shape

    def sweep():
        return {
            crew: markov_cluster_up_probability(compute, crew)
            for crew in (1, 2, 3, 4)
        }

    by_crew = benchmark(sweep)
    binomial = cluster_up_probability(compute)

    rows = [("Eq. 2 (binomial)", f"{binomial:.8f}", "-")]
    for crew, up in sorted(by_crew.items()):
        rows.append(
            (
                f"Markov, crew={crew}",
                f"{up:.8f}",
                f"{(binomial - up):.2e}",
            )
        )
    emit(
        "[A1] compute cluster (3+1) up-probability vs repair-crew size:\n"
        + render_table(("model", "Pr[cluster up]", "optimism of Eq. 2"), rows)
    )

    # Unlimited crew reproduces Eq. 2 exactly; crews queue -> worse.
    assert by_crew[4] == pytest.approx(binomial, rel=1e-9)
    ups = [by_crew[crew] for crew in (1, 2, 3, 4)]
    assert ups == sorted(ups)
    assert by_crew[1] < binomial


def test_crew_effect_on_steady_state(benchmark, emit):
    result = brute_force_optimize(case_study_problem())
    compute = result.option(8).system.cluster("compute")

    def expected_down(crew):
        return MarkovClusterModel.from_cluster(compute, crew).expected_down_nodes()

    values = benchmark(lambda: {crew: expected_down(crew) for crew in (1, 2, 4)})
    emit(
        "[A1] expected simultaneously-down nodes in the 3+1 cluster: "
        + ", ".join(f"crew={crew}: {value:.5f}" for crew, value in sorted(values.items()))
    )
    # A single-person crew leaves more nodes down on average.
    assert values[1] > values[4]
