"""E6 — Eq. 1-4 validity: Monte Carlo simulation vs the analytic model.

The analytic model carries two stated approximations (footnotes 2-3).
This bench simulates every case-study option for many replicated years
and checks that the analytic U_s lands inside the simulation's 95%
confidence interval — plus quantifies the footnote-2 overlap error.
"""

from __future__ import annotations

from repro.cli.formatting import render_table
from repro.optimizer.brute_force import brute_force_optimize
from repro.simulation.validation import validate_against_model
from repro.workloads.case_study import case_study_problem


def test_monte_carlo_validates_analytic_model(benchmark, emit):
    result = brute_force_optimize(case_study_problem())

    def validate_all():
        return {
            option.option_id: validate_against_model(
                option.system, replications=60, seed=500 + option.option_id
            )
            for option in result.options
        }

    reports = benchmark.pedantic(validate_all, rounds=1, iterations=1)

    rows = []
    for option_id, report in sorted(reports.items()):
        low, high = report.simulated.availability_ci95
        rows.append(
            (
                f"#{option_id}",
                f"{report.analytic_uptime:.6f}",
                f"{report.simulated_uptime:.6f}",
                f"[{low:.6f}, {high:.6f}]",
                "yes" if report.analytic_inside_ci else "NO",
            )
        )
    emit(
        "[E6] analytic U_s vs Monte Carlo (60 x 1-year runs per option):\n"
        + render_table(
            ("option", "analytic", "simulated", "95% CI", "inside CI"), rows
        )
    )

    inside = sum(1 for report in reports.values() if report.analytic_inside_ci)
    # 95% CIs can legitimately miss occasionally; require 7 of 8.
    assert inside >= 7
    for report in reports.values():
        assert report.absolute_error < 0.01


def test_footnote_approximation_error_is_negligible(benchmark, emit):
    """Footnote 2 treats breakdown and failover downtime as mutually
    exclusive; the simulator measures the actual overlap."""
    result = brute_force_optimize(case_study_problem())
    option8 = result.option(8)  # all HA: most failover activity

    report = benchmark.pedantic(
        lambda: validate_against_model(option8.system, replications=40, seed=77),
        rounds=1,
        iterations=1,
    )
    emit(
        "[E6] footnote-2 overlap on option #8: "
        f"{report.simulated.mean_overlap_fraction:.2e} of simulated time "
        "was simultaneously breakdown+failover (analytic model assumes 0)"
    )
    assert report.simulated.mean_overlap_fraction < 1e-4
