"""A4 — ablation: the model's memorylessness assumption.

Eq. 1-4 consume only steady-state means; by renewal-reward the long-run
availability of alternating up/down processes depends on duration
*means*, not shapes.  This bench runs the case-study system under four
repair-time shapes with identical means and shows (a) availability is
shape-invariant — the analytic ``U_s`` stays inside every CI — while
(b) per-run downtime variance moves with the shape's tail weight, which
is what monthly penalty settlement (A3) feels.
"""

from __future__ import annotations

import pytest

from repro.availability.model import evaluate_availability
from repro.cli.formatting import render_table
from repro.simulation.distributions import (
    DETERMINISTIC,
    EXPONENTIAL,
    HEAVY_TAILED,
    LOW_VARIANCE,
)
from repro.simulation.monte_carlo import monte_carlo
from repro.workloads.case_study import case_study_base_system

_SHAPES = {
    "deterministic (CV=0)": DETERMINISTIC,
    "weibull k=3 (CV≈0.36)": LOW_VARIANCE,
    "exponential (CV=1)": EXPONENTIAL,
    "weibull k=0.5 (CV≈2.24)": HEAVY_TAILED,
}


def test_distribution_robustness(benchmark, emit):
    system = case_study_base_system()
    analytic = evaluate_availability(system).uptime_probability

    def run_all():
        return {
            label: monte_carlo(
                system, replications=50, seed=123, down_distribution=shape
            )
            for label, shape in _SHAPES.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        low, high = result.availability_ci95
        rows.append(
            (
                label,
                f"{result.mean_availability:.6f}",
                f"[{low:.6f}, {high:.6f}]",
                f"{result.availability_stderr:.2e}",
                "yes" if result.contains(analytic) else "NO",
            )
        )
    emit(
        f"[A4] repair-time shape ablation (analytic U_s = {analytic:.6f}, "
        "means fixed):\n"
        + render_table(
            ("repair-time shape", "simulated U_s", "95% CI",
             "run-to-run stderr", "analytic in CI"),
            rows,
        )
    )

    # (a) Availability is shape-invariant: analytic inside every CI.
    for label, result in results.items():
        assert result.contains(analytic), label

    # (b) Variance tracks tail weight: heavier shapes jitter more.
    stderrs = [results[label].availability_stderr for label in _SHAPES]
    assert stderrs[0] < stderrs[-1]  # deterministic < heavy-tailed
    assert results["exponential (CV=1)"].availability_stderr < (
        results["weibull k=0.5 (CV≈2.24)"].availability_stderr
    )
