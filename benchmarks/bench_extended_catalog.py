"""E8 — §V future work: the extended HA catalog and hybrid marketplace.

The paper's future-work list (OS clustering, software-defined storage,
multipathing, BGP dual circuits) is implemented as catalog extensions;
this bench shows (a) widening the choice set can only improve the
optimum and may change the winning technology, and (b) the cross-
provider marketplace placement the broker enables.
"""

from __future__ import annotations

import pytest

from repro.broker.marketplace import compare_providers
from repro.broker.ratecard import registry_for_provider
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cli.formatting import render_table
from repro.cloud.providers import all_providers, metalcloud
from repro.cost.rates import LaborRate
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.workloads.case_study import case_study_base_system


def _problem(extended: bool) -> OptimizationProblem:
    provider = metalcloud()
    return OptimizationProblem(
        base_system=case_study_base_system(),
        registry=registry_for_provider(provider, extended=extended),
        contract=Contract.linear(99.5, 500.0),
        labor_rate=LaborRate(provider.rate_card.labor_rate_per_hour),
    )


def test_extended_catalog_improves_optimum(benchmark, emit):
    narrow = pruned_optimize(_problem(extended=False))
    wide = benchmark(lambda: pruned_optimize(_problem(extended=True)))

    rows = [
        (
            "case-study catalog",
            narrow.space_size,
            narrow.best.label,
            " / ".join(narrow.best.choice_names),
            f"${narrow.best.tco.total:,.2f}",
        ),
        (
            "extended (§V) catalog",
            wide.space_size,
            wide.best.label,
            " / ".join(wide.best.choice_names),
            f"${wide.best.tco.total:,.2f}",
        ),
    ]
    emit(
        "[E8] extended catalog at a strict 99.5% SLA, $500/h penalty:\n"
        + render_table(
            ("catalog", "k^n", "best option", "technologies", "TCO/mo"), rows
        )
    )

    # The extended space is a strict superset, so its optimum can only
    # be at least as good.
    assert wide.space_size > narrow.space_size
    assert wide.best.tco.total <= narrow.best.tco.total + 1e-9
    # At least one future-work technology appears in the wide space.
    wide_names = {
        name for option in wide.options for name in option.choice_names
    }
    assert wide_names & {
        "os-cluster-n+1", "sds-replica-3", "storage-multipath",
        "bgp-dual-circuit", "hypervisor-n+2",
    }


def test_hybrid_marketplace_placement(benchmark, emit):
    def run_marketplace():
        broker = BrokerService(all_providers())
        broker.observe_all(years=6.0, seed=71)
        request = three_tier_request(
            Contract.linear(99.0, 300.0), extended_catalog=True
        )
        return compare_providers(broker, request)

    comparison = benchmark.pedantic(run_marketplace, rounds=1, iterations=1)

    rows = [
        (
            rank,
            entry.provider_name,
            entry.result.best.label,
            f"{entry.result.best.tco.uptime_probability * 100:.4f}%",
            f"${entry.monthly_total:,.2f}",
        )
        for rank, entry in enumerate(comparison.ranked, start=1)
    ]
    emit(
        "[E8] hybrid marketplace: same request priced on three providers:\n"
        + render_table(
            ("rank", "provider", "best option", "U_s", "total/mo"), rows
        )
    )

    assert len(comparison.ranked) == 3
    assert comparison.spread > 0.0
    # Every placement meets the SLA or pays the penalty; totals ranked.
    totals = [entry.monthly_total for entry in comparison.ranked]
    assert totals == sorted(totals)
