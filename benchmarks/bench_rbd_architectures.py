"""E8b — future work: multi-path architectures via block diagrams.

The paper's §V names multi-pathing among the unmodeled redundancies.
The RBD extension composes parallel serving paths; this bench compares
architectures with the same hardware *rearranged* and asserts the
expected dominance ordering.
"""

from __future__ import annotations

import pytest

from repro.availability.rbd import block_availability, parallel_gain
from repro.cli.formatting import render_table
from repro.topology.blocks import leaf, parallel, serial
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec


def _cluster(name: str, layer: Layer, p: float) -> ClusterSpec:
    return ClusterSpec(name, layer, NodeSpec("n", p, 5.0), total_nodes=1)


def test_architecture_comparison(benchmark, emit):
    edge = _cluster("edge", Layer.NETWORK, 0.006)
    app1 = _cluster("app-1", Layer.COMPUTE, 0.008)
    app2 = _cluster("app-2", Layer.COMPUTE, 0.008)
    db1 = _cluster("db-1", Layer.STORAGE, 0.012)
    db2 = _cluster("db-2", Layer.STORAGE, 0.012)

    architectures = {
        "serial chain (all 5 in series)": serial(
            leaf(edge), leaf(app1), leaf(db1), leaf(app2), leaf(db2)
        ),
        "dual path (app+db pairs in parallel)": serial(
            leaf(edge),
            parallel(serial(leaf(app1), leaf(db1)), serial(leaf(app2), leaf(db2))),
        ),
        "component-level parallel (apps || and dbs ||)": serial(
            leaf(edge),
            parallel(leaf(app1), leaf(app2)),
            parallel(leaf(db1), leaf(db2)),
        ),
    }

    def evaluate_all():
        return {
            label: block_availability(block) for label, block in architectures.items()
        }

    results = benchmark(evaluate_all)

    rows = [
        (
            label,
            f"{availability:.6f}",
            f"{parallel_gain(architectures[label]):+.6f}",
        )
        for label, availability in results.items()
    ]
    emit(
        "[E8b] same 5 clusters, three arrangements:\n"
        + render_table(("architecture", "availability", "parallel gain"), rows)
    )

    chain = results["serial chain (all 5 in series)"]
    dual = results["dual path (app+db pairs in parallel)"]
    component = results["component-level parallel (apps || and dbs ||)"]

    # Standard RBD result: component-level redundancy dominates
    # path-level redundancy, which dominates the chain.
    assert chain < dual < component
    # The chain wastes the duplicate hardware entirely: it is *less*
    # available than the 3-cluster single path would be.
    single_path = block_availability(serial(leaf(edge), leaf(app1), leaf(db1)))
    assert chain < single_path
    # Cross-check against exhaustive state enumeration on the dual-path
    # diagram (5 independent binary components -> 32 states).
    def exhaustive_dual():
        total = 0.0
        clusters = [edge, app1, db1, app2, db2]
        for mask in range(32):
            up = [(mask >> i) & 1 == 1 for i in range(5)]
            probability = 1.0
            for i, cluster in enumerate(clusters):
                p_up = 1.0 - cluster.node.down_probability
                probability *= p_up if up[i] else (1.0 - p_up)
            path_a = up[1] and up[2]
            path_b = up[3] and up[4]
            if up[0] and (path_a or path_b):
                total += probability
        return total

    assert dual == pytest.approx(exhaustive_dual(), rel=1e-12)
