"""E1 — Figures 3-9: the eight case-study solution options.

Regenerates the per-option rows (HA configuration, U_s, C_HA, expected
penalty, TCO) the paper shows across Figures 3-9, and asserts the
paper-stated shape: 8 options, #1-#4 slip the 98% SLA, #5-#8 meet it.
"""

from __future__ import annotations

from repro.broker.reports import render_option_table
from repro.optimizer.brute_force import brute_force_optimize
from repro.workloads.case_study import case_study_problem


def test_fig3to9_option_table(benchmark, emit):
    result = benchmark(lambda: brute_force_optimize(case_study_problem()))

    emit(render_option_table(
        result, title="[E1] Figures 3-9 — case-study solution options:"
    ))

    assert result.space_size == 8
    assert len(result.options) == 8

    # Options #1-#4 slip the SLA; #5-#8 meet it (paper text, §III).
    for option in result.options:
        if option.option_id <= 4:
            assert not option.meets_sla, option.label
        else:
            assert option.meets_sla, option.label

    # The option clustering pattern matches the figures.
    assert result.option(1).clustered_components == ()
    assert result.option(2).clustered_components == ("network",)
    assert result.option(3).clustered_components == ("storage",)
    assert result.option(4).clustered_components == ("compute",)
    assert result.option(5).clustered_components == ("storage", "network")
    assert result.option(6).clustered_components == ("compute", "network")
    assert result.option(7).clustered_components == ("compute", "storage")
    assert result.option(8).clustered_components == (
        "compute", "storage", "network",
    )

    # SLA-meeting options pay no expected penalty (Eq. 5 second line).
    for option_id in (5, 6, 7, 8):
        assert result.option(option_id).tco.expected_penalty == 0.0
