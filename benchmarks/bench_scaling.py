"""E4 — §III-C complexity: O(k^n) enumeration and what pruning saves.

The paper notes the technique is exponential but that real systems keep
``n`` under 10.  This bench sweeps ``n`` (at k=2) and ``k`` (at n=3),
recording evaluation counts for brute force vs the pruned search, and
benchmarks the largest brute-force configuration.
"""

from __future__ import annotations

from repro.cli.formatting import render_table
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize
from repro.workloads.generators import random_problem


def test_scaling_in_cluster_count(benchmark, emit):
    rows = []
    for n in range(2, 9):
        problem = random_problem(100 + n, clusters=n, choices_per_layer=1)
        brute = brute_force_optimize(problem)
        pruned = pruned_optimize(problem)
        assert brute.space_size == 2**n
        assert brute.evaluations == 2**n
        assert pruned.evaluations <= brute.evaluations
        rows.append(
            (n, 2**n, brute.evaluations, pruned.evaluations, pruned.pruned)
        )

    emit(
        "[E4] scaling in n (k=2 per cluster):\n"
        + render_table(
            ("n", "k^n", "brute evals", "pruned evals", "clipped"), rows
        )
    )

    # Wall-clock the largest configuration.
    largest = random_problem(108, clusters=8, choices_per_layer=1)
    result = benchmark(lambda: brute_force_optimize(largest))
    assert result.evaluations == 256


def test_scaling_in_choice_count(benchmark, emit):
    rows = []
    for k_extra in (1, 2, 3):
        problem = random_problem(
            200 + k_extra, clusters=3, choices_per_layer=k_extra
        )
        brute = brute_force_optimize(problem)
        pruned = pruned_optimize(problem)
        rows.append(
            (
                f"{k_extra + 1}^3",
                brute.space_size,
                brute.evaluations,
                pruned.evaluations,
            )
        )
        # Network offers at most 2 distinct technologies, so the space
        # is (k+1)^2 * min(k+1, 3) rather than a perfect cube.
        assert brute.space_size == (k_extra + 1) ** 2 * min(k_extra + 1, 3)

    emit(
        "[E4] scaling in k (n=3 clusters):\n"
        + render_table(("space", "k^n", "brute evals", "pruned evals"), rows)
    )

    widest = random_problem(203, clusters=3, choices_per_layer=3)
    result = benchmark(lambda: pruned_optimize(widest))
    assert result.evaluations + result.pruned == result.space_size
