"""E3 — §III-C: the pruned search clips supersets without losing the optimum.

The paper's example: after evaluating option #5 (which meets the SLA),
option #8 is clipped from the search tree.  This bench measures both
searches on the case study, asserts they agree, and checks the pruning
behaviour on a batch of random problems.
"""

from __future__ import annotations

import pytest

from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize
from repro.workloads.case_study import case_study_problem
from repro.workloads.generators import random_problem


def test_pruned_search_case_study(benchmark, emit):
    result = benchmark(lambda: pruned_optimize(case_study_problem()))
    reference = brute_force_optimize(case_study_problem())

    evaluated = sorted(option.option_id for option in result.options)
    emit(
        "[E3] §III-C pruning on the case study:\n"
        f"  evaluated options: {evaluated}\n"
        f"  pruned without evaluation: #8 (superset of SLA-meeting #5)\n"
        f"  optimum agrees with brute force: "
        f"#{result.best.option_id} @ ${result.best.tco.total:,.2f}/mo"
    )

    assert evaluated == [1, 2, 3, 4, 5, 6, 7]
    assert result.pruned == 1
    assert result.best.tco.total == pytest.approx(reference.best.tco.total)


def test_branch_and_bound_case_study(benchmark, emit):
    result = benchmark(lambda: branch_and_bound_optimize(case_study_problem()))
    reference = brute_force_optimize(case_study_problem())

    emit(
        "[E3] branch-and-bound extension on the case study:\n"
        f"  evaluated {result.evaluations}/{result.space_size} "
        f"({result.pruned} leaves bounded away)\n"
        f"  optimum: #{result.best.option_id} @ ${result.best.tco.total:,.2f}/mo"
    )

    assert result.best.tco.total == pytest.approx(reference.best.tco.total)
    assert result.pruned > 0


def test_pruning_preserves_optimum_across_workloads(benchmark, emit):
    """Agreement + work saved over a batch of 20 random problems."""

    def run_batch():
        saved = 0
        total = 0
        for seed in range(20):
            problem = random_problem(seed, clusters=4, choices_per_layer=2)
            brute = brute_force_optimize(problem)
            pruned = pruned_optimize(problem)
            assert pruned.best.tco.total == pytest.approx(brute.best.tco.total)
            saved += pruned.pruned
            total += pruned.space_size
        return saved, total

    saved, total = benchmark(run_batch)
    emit(
        "[E3] pruning over 20 random 4-cluster problems: "
        f"{saved} of {total} candidate evaluations avoided, optimum "
        "identical to brute force in every case"
    )
    assert saved > 0
