"""A2 — ablation: node-independence (§IV construct validity).

Eq. 2 assumes independent node failures.  Zone-level events (power,
ToR switch, control plane) break that assumption.  This bench runs the
case-study base system under increasingly aggressive zone processes and
compares three estimators: naive Eq. 2, the zone-aware analytic model,
and the merged-timeline Monte Carlo simulation.
"""

from __future__ import annotations

import pytest

from repro.availability.model import evaluate_availability
from repro.cli.formatting import render_table
from repro.simulation.correlated import (
    ZoneOutageSpec,
    correlated_monte_carlo,
    zone_aware_uptime,
)
from repro.workloads.case_study import case_study_base_system


def test_zone_outage_ablation(benchmark, emit):
    system = case_study_base_system()
    naive = evaluate_availability(system).uptime_probability

    scenarios = {
        "none": {},
        "mild (1/yr x 1h, network)": {
            "network": ZoneOutageSpec(1.0, 60.0),
        },
        "moderate (3/yr x 2h, net+compute)": {
            "network": ZoneOutageSpec(3.0, 120.0),
            "compute": ZoneOutageSpec(3.0, 120.0),
        },
        "severe (6/yr x 8h, all)": {
            "network": ZoneOutageSpec(6.0, 480.0),
            "compute": ZoneOutageSpec(6.0, 480.0),
            "storage": ZoneOutageSpec(6.0, 480.0),
        },
    }

    def run_all():
        outcomes = {}
        for label, zones in scenarios.items():
            runs = correlated_monte_carlo(
                system, zones, replications=30, seed=hash(label) % 10_000
            )
            simulated = sum(run.availability for run in runs) / len(runs)
            outcomes[label] = (zone_aware_uptime(system, zones), simulated)
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (analytic, simulated) in outcomes.items():
        rows.append(
            (
                label,
                f"{naive:.6f}",
                f"{analytic:.6f}",
                f"{simulated:.6f}",
                f"{naive - analytic:+.2e}",
            )
        )
    emit(
        "[A2] zone-event ablation on the bare case-study system:\n"
        + render_table(
            ("zone scenario", "naive Eq. 2", "zone-aware", "simulated",
             "Eq. 2 optimism"),
            rows,
        )
    )

    # Without zones the three estimators coincide.
    analytic_none, simulated_none = outcomes["none"]
    assert analytic_none == pytest.approx(naive, abs=1e-12)
    assert simulated_none == pytest.approx(naive, abs=0.01)

    # With zones the naive model is optimistic (measured against the
    # deterministic zone-aware model — mild scenarios sit below Monte
    # Carlo noise), and the zone-aware model tracks the simulation.
    for label, (analytic, simulated) in outcomes.items():
        if label == "none":
            continue
        assert naive > analytic
        assert analytic == pytest.approx(simulated, abs=0.01)

    # Optimism grows with zone severity.
    gaps = [naive - analytic for analytic, _ in outcomes.values()]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 0.01  # severe scenario costs > 1% availability
