"""E10 — BrokerSession warm-cache vs cold-cache request latency.

PR 1's engine removed re-evaluation *within* a request; the v2
:class:`~repro.broker.api.BrokerSession` removes it *across* requests:
engines are cached by (provider, base-system signature, contract,
rate-card fingerprint), so a repeated request skips the n*k per-cluster
precompute and answers every candidate from the result cache.

This bench measures a cold session serving a request for the first time
against a warm session re-serving it, verifies the acceptance criterion
(zero new per-(cluster, technology) term computations on the warm path,
bit-identical reports), and reports batched throughput over the
``recommend_many`` worker pool.
"""

from __future__ import annotations

import time

from repro.broker.api import EngineCache
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cloud.providers import all_providers
from repro.sla.contract import Contract


def observed_broker(years: float = 3.0, seed: int = 23) -> BrokerService:
    """A broker with synthetic telemetry over all three providers."""
    broker = BrokerService(all_providers())
    broker.observe_all(years=years, seed=seed)
    return broker


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_cache_latency_vs_cold(benchmark, emit):
    """Cold vs warm request latency through one session."""
    broker = observed_broker()
    request = three_tier_request(Contract.linear(98.0, 100.0))
    with broker.session() as session:
        cold_report, cold_seconds = _timed(lambda: session.recommend(request))
        terms_after_cold = session.engine_cache.cluster_term_computations()
        warm_report, warm_seconds = _timed(lambda: session.recommend(request))

        # Acceptance: the warm path computes zero new cluster terms and
        # reproduces the cold report bit-for-bit.
        assert (
            session.engine_cache.cluster_term_computations() == terms_after_cold
        )
        assert warm_report.describe() == cold_report.describe()

        benchmark(lambda: session.recommend(request))
    emit(
        "[E10] session request latency (3 providers, pruned search):\n"
        f"  cold (build engines): {cold_seconds * 1e3:8.2f} ms\n"
        f"  warm (cached engines): {warm_seconds * 1e3:8.2f} ms\n"
        f"  speedup: {cold_seconds / warm_seconds:5.1f}x; "
        f"{session.engine_cache.stats.describe()}"
    )


def test_batched_throughput_matches_sequential(emit):
    """recommend_many over the worker pool: identical, and amortized."""
    broker = observed_broker()
    requests = [
        three_tier_request(Contract.linear(sla, penalty))
        for sla, penalty in [
            (98.0, 100.0), (98.0, 100.0), (99.0, 100.0), (98.0, 250.0),
            (98.0, 100.0), (99.0, 250.0), (98.0, 500.0), (98.0, 100.0),
        ]
    ]
    with broker.session(max_workers=4) as session:
        batched, batch_seconds = _timed(
            lambda: session.recommend_many(requests)
        )
        batch_stats = session.engine_cache.stats
    with broker.session() as session:
        sequential, seq_seconds = _timed(
            lambda: tuple(session.recommend(request) for request in requests)
        )
    assert [report.describe() for report in batched] == [
        report.describe() for report in sequential
    ]
    emit(
        f"[E10] batch of {len(requests)} requests:\n"
        f"  sequential session: {seq_seconds * 1e3:8.2f} ms\n"
        f"  recommend_many(4 workers): {batch_seconds * 1e3:8.2f} ms\n"
        f"  cache across batch: {batch_stats.describe()}"
    )


def _smoke() -> int:
    """Fast CI guard: warm cache reuse + bit-identical batched reports."""
    broker = observed_broker(years=1.0, seed=7)
    request = three_tier_request(Contract.linear(98.0, 100.0))
    with broker.session() as session:
        cold, cold_seconds = _timed(lambda: session.recommend(request))
        terms = session.engine_cache.cluster_term_computations()
        warm, warm_seconds = _timed(lambda: session.recommend(request))
        assert session.engine_cache.cluster_term_computations() == terms
        assert warm.describe() == cold.describe()
        batched = session.recommend_many([request] * 4)
        assert all(
            report.describe() == cold.describe() for report in batched
        )
        stats = session.engine_cache.stats
    print(
        f"[smoke] cold {cold_seconds * 1e3:.1f} ms -> warm "
        f"{warm_seconds * 1e3:.1f} ms; {stats.describe()}"
    )
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast correctness smoke instead of pytest-benchmark",
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run via pytest for full benchmarks, or pass --smoke")
    raise SystemExit(_smoke())
