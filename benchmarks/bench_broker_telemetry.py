"""E5 — §II-C / §IV: broker telemetry converges to ground truth.

The paper argues the broker's vantage point lets it maintain P/f/t
values, and that short-term skews "smooth out" over the long term.
This bench observes the SoftLayer-like provider over growing horizons
and reports the estimate error per component class.
"""

from __future__ import annotations

from repro.broker.service import BrokerService
from repro.cli.formatting import render_table
from repro.cloud.providers import metalcloud


def _mean_abs_error(years: float, seeds=(1, 2, 3)) -> dict[str, float]:
    """Mean |P-hat - P| per component kind across observation seeds."""
    truth = metalcloud().reliability
    totals = {"vm": 0.0, "volume": 0.0, "gateway": 0.0}
    for seed in seeds:
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=years, seed=seed)
        for kind in totals:
            estimate = broker.knowledge_base.estimate("metalcloud", kind)
            totals[kind] += abs(
                estimate.down_probability - truth.triple(kind)[0]
            )
    return {kind: total / len(seeds) for kind, total in totals.items()}


def test_telemetry_convergence(benchmark, emit):
    horizons = (0.5, 2.0, 8.0, 32.0)
    errors = {years: _mean_abs_error(years) for years in horizons}

    rows = [
        (
            f"{years:g} yr",
            f"{errors[years]['vm']:.2e}",
            f"{errors[years]['volume']:.2e}",
            f"{errors[years]['gateway']:.2e}",
        )
        for years in horizons
    ]
    emit(
        "[E5] broker telemetry: mean |P-hat - P| vs observation horizon "
        "(3 seeds):\n"
        + render_table(("horizon", "vm", "volume", "gateway"), rows)
    )

    # Long-term estimates must beat short-term ones on every component.
    for kind in ("vm", "volume", "gateway"):
        assert errors[horizons[-1]][kind] < errors[horizons[0]][kind]

    # Benchmark one full observe cycle at a moderate horizon.
    def observe_once():
        broker = BrokerService((metalcloud(),))
        return broker.observe_provider("metalcloud", years=4.0, seed=9)

    ingested = benchmark(observe_once)
    assert ingested > 0


def test_failover_estimates_match_rate_card_reality(benchmark, emit):
    """t-hat lands within 10% of each provider's true takeover latency."""

    def estimate_t():
        broker = BrokerService((metalcloud(),))
        broker.observe_provider("metalcloud", years=10.0, seed=13)
        return {
            kind: broker.knowledge_base.estimate("metalcloud", kind).failover_minutes
            for kind in ("vm", "volume", "gateway")
        }

    estimates = benchmark(estimate_t)
    truth = metalcloud().reliability
    rows = [
        (kind, f"{truth.triple(kind)[2]:.2f}", f"{estimates[kind]:.2f}")
        for kind in ("vm", "volume", "gateway")
    ]
    emit(
        "[E5] failover-time estimates after 10 observed years:\n"
        + render_table(("component", "true t (min)", "estimated t-hat"), rows)
    )
    for kind in ("vm", "volume", "gateway"):
        true_t = truth.triple(kind)[2]
        assert abs(estimates[kind] - true_t) / true_t < 0.10
