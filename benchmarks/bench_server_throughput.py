"""E11/E13 — broker server throughput: wire requests, ingestion, megabatch.

Three sweeps over the :mod:`repro.server` serving layer:

1. **Requests/sec vs session worker count** — a fleet of client threads
   drives warm ``POST /v2/recommend`` calls through a live asyncio
   server; the engine cache means each request is pure serving work.
2. **Ingest throughput vs shard count** — a simulation-generated JSONL
   trace (wide cross-cloud keyspace, so hash partitioning balances)
   through the sharded pipeline, thread vs process backends.  Shard
   workers parse their own lines, so the process backend turns JSONL
   decoding into true parallelism on multi-core hosts; the table
   records ``os.cpu_count()`` because on a single core every sweep is
   necessarily flat.
3. **Megabatch vs per-request vector serving** (``--megabatch``; E13) —
   the same concurrent vector brute-force traffic through a plain
   session and through a megabatch-enabled one, asserting the reports
   stay identical and recording both requests/sec figures plus the
   stacker's batch statistics.
4. **Tracing overhead** (``--trace``; E15) — warm request throughput
   through an untraced server (twice, bounding run-to-run jitter) and
   through a ``trace=True`` server with a traceparent-stamping client,
   asserting the traced server actually recorded span trees and that
   reports stay identical either way.
5. **Hardening overhead** (``--hardened``; E16) — the same warm request
   sweep through an open server (twice) and through the full guard
   stack — bearer auth, a non-binding rate limit and idempotency-key
   replay — asserting the replay table really filled and that reports
   stay identical either way.
6. **Gateway worker scaling** (``--workers N ...``; E17) — a warm sweep
   over eight distinct contracts through the in-process server and
   through a multi-process gateway at each requested worker count,
   asserting byte-identical recommendations everywhere and (on hosts
   with 4+ cores) that partitioned workers actually scale.

``--json PATH`` writes whichever legs ran as a machine-readable
artifact (e.g. ``BENCH_E13.json``, ``BENCH_E15.json``) for CI trend
tracking.

Correctness is asserted alongside the timing: wire reports are
bit-identical to a direct session, and sharded ingestion reproduces
single-store estimates exactly at every shard count.
"""

from __future__ import annotations

import json
import os
import random
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone

from repro.broker.envelope import RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.broker.telemetry import TelemetryStore
from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.cloud.providers import all_providers
from repro.server import ServerClient, start_in_thread
from repro.server.ingest import ShardedIngestor, records_to_jsonl
from repro.sla.contract import Contract


def observed_broker(years: float = 1.0, seed: int = 23) -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=years, seed=seed)
    return broker


def cross_cloud_trace(lines: int, providers: int = 16, seed: int = 1) -> str:
    """A JSONL telemetry trace over a wide (provider, kind) keyspace."""
    rng = random.Random(seed)
    names = [f"cloud-{index:02d}" for index in range(providers)]
    kinds = ("vm", "volume", "gateway", "lb")
    cycle = (
        ResourceEventKind.FAILURE,
        ResourceEventKind.REPAIR,
        ResourceEventKind.FAILOVER,
    )
    records = [
        ResourceEvent(
            float(index),
            names[index % providers],
            kinds[(index // providers) % len(kinds)],
            f"r-{index % 64}",
            cycle[index % 3],
            rng.random() * 50.0,
        )
        for index in range(lines)
    ]
    return records_to_jsonl(records)


def ingest_reference(text: str) -> TelemetryStore:
    store = TelemetryStore()
    with ShardedIngestor(store, num_shards=1) as ingestor:
        ingestor.submit_jsonl(text)
    return store


def _drive_requests(client: ServerClient, envelope, total: int, fleet: int):
    with ThreadPoolExecutor(max_workers=fleet) as pool:
        start = time.perf_counter()
        futures = [
            pool.submit(client.recommend, envelope) for _ in range(total)
        ]
        reports = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
    return reports, elapsed


def test_request_throughput_vs_workers(emit):
    """Warm requests/sec through the wire, 1 vs 4 session workers."""
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="bench")
    total, fleet = 32, 8
    rows = []
    for max_workers in (1, 4):
        broker = observed_broker()
        with broker.session() as session:
            expected = session.recommend_envelope(envelope)
        with start_in_thread(broker, max_workers=max_workers) as handle:
            client = ServerClient(handle.host, handle.port)
            client.recommend(envelope)  # warm every provider engine
            reports, elapsed = _drive_requests(client, envelope, total, fleet)
        # engine_stats audit warm vs cold serving; the recommendation
        # itself must be identical.
        want = {k: v for k, v in expected.best.to_dict().items()
                if k != "engine_stats"}
        for report in reports:
            got = {k: v for k, v in report.best.to_dict().items()
                   if k != "engine_stats"}
            assert got == want
        rows.append((max_workers, total / elapsed))
    table = "\n".join(
        f"  {workers} session worker(s): {rate:8.1f} req/s"
        for workers, rate in rows
    )
    emit(
        f"[E11] warm /v2/recommend throughput ({fleet} client threads, "
        f"{total} requests, {os.cpu_count()} cpu):\n{table}"
    )


def test_ingest_throughput_vs_shards(emit):
    """Sharded JSONL ingestion, thread vs process backends."""
    text = cross_cloud_trace(lines=60_000)
    lines = text.count("\n")
    reference = ingest_reference(text)
    rows = []
    for backend, shard_counts in (
        ("thread", (1, 4)),
        ("process", (1, 2, 4, 8)),
    ):
        for shards in shard_counts:
            serving = TelemetryStore()
            with ShardedIngestor(
                serving, num_shards=shards, backend=backend
            ) as ingestor:
                start = time.perf_counter()
                ingestor.submit_jsonl(text)
                ingestor.flush()
                elapsed = time.perf_counter() - start
            assert serving.snapshot() == reference.snapshot()
            rows.append((backend, shards, lines / elapsed))
    table = "\n".join(
        f"  {backend:<8} shards={shards}: {rate:9,.0f} lines/s"
        for backend, shards, rate in rows
    )
    emit(
        f"[E11] sharded ingest throughput ({lines:,}-line trace, 64 keys, "
        f"{os.cpu_count()} cpu):\n{table}\n"
        "  (process shards parse their own lines; scaling tracks core count)"
    )


def _write_json(path: str, payload: dict) -> None:
    """Write one benchmark artifact (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _megabatch_comparison(
    emit=print, json_path: str | None = None, fleet: int = 4, rounds: int = 3
) -> int:
    """E13 megabatch leg — concurrent vector traffic, stacked vs not.

    ``fleet * rounds`` brute-force vector requests (brute-force streams
    candidate blocks through the backend, the path the stacker hooks;
    the default pruned strategy never reaches the vector kernel) run
    through a plain session and then through a megabatch session against
    the same broker.  Reports must be identical; the emitted table and
    JSON artifact record both requests/sec figures and the stacker's
    batch statistics.
    """
    from repro.optimizer.engine import _import_numpy
    from repro.optimizer.megabatch import MegabatchConfig

    if _import_numpy() is None:
        emit(
            "[E13] megabatch leg SKIPPED (numpy not installed; "
            "pip install .[vector])"
        )
        if json_path:
            _write_json(json_path, {
                "experiment": "E13",
                "generated": datetime.now(timezone.utc).isoformat(),
                "skipped": "numpy not installed",
            })
        return 0

    broker = observed_broker()
    # Each round is one *cold* contract served to the whole fleet at
    # once: the fleet shares an engine (so concurrent sweeps can stack)
    # while distinct contracts across rounds keep real vector work in
    # play instead of engine-result-cache hits.
    request_rounds = [
        [
            three_tier_request(
                Contract.linear(98.0, 100.0 + 25.0 * round_index),
                backend="vector",
                strategy="brute-force",
                extended_catalog=True,
            )
            for _ in range(fleet)
        ]
        for round_index in range(rounds)
    ]

    def drive(session):
        reports = []
        with ThreadPoolExecutor(max_workers=fleet) as pool:
            start = time.perf_counter()
            for request_round in request_rounds:
                futures = [
                    pool.submit(session.recommend, request)
                    for request in request_round
                ]
                reports.extend(future.result() for future in futures)
            elapsed = time.perf_counter() - start
        return reports, elapsed

    with broker.session() as plain:
        baseline, plain_seconds = drive(plain)
    with broker.session(
        megabatch=MegabatchConfig(window_seconds=0.01)
    ) as stacked:
        reports, stacked_seconds = drive(stacked)
        stats = stacked.metrics()["megabatch"]

    for expected, actual in zip(baseline, reports):
        assert (
            expected.best.result.best.tco.total_with_base
            == actual.best.result.best.tco.total_with_base
        )
        assert expected.best.result.options == actual.best.result.options
    assert stats is not None and stats["spans"] >= 1

    total = fleet * rounds
    legs = [
        {
            "mode": "per-request",
            "requests": total,
            "seconds": plain_seconds,
            "requests_per_s": total / plain_seconds,
        },
        {
            "mode": "megabatch",
            "requests": total,
            "seconds": stacked_seconds,
            "requests_per_s": total / stacked_seconds,
            "stacker": stats,
        },
    ]
    emit(
        f"[E13] megabatch vs per-request vector serving "
        f"({fleet} client threads, {total} requests, {os.cpu_count()} cpu):\n"
        + "\n".join(
            f"  {leg['mode']:<12} {leg['seconds']:6.2f} s   "
            f"{leg['requests_per_s']:6.1f} req/s"
            for leg in legs
        )
        + f"\n  speedup {plain_seconds / stacked_seconds:.2f}x; stacker "
        f"{stats['batches']} batches / {stats['spans']} spans / "
        f"{stats['rows']:,} rows (max {stats['max_spans_in_batch']} "
        "spans/batch); reports identical"
    )
    if json_path:
        _write_json(json_path, {
            "experiment": "E13",
            "generated": datetime.now(timezone.utc).isoformat(),
            "cores": os.cpu_count(),
            "client_threads": fleet,
            "legs": legs,
            "speedup_megabatch_over_per_request": (
                plain_seconds / stacked_seconds
            ),
        })
        emit(f"  wrote {json_path}")
    return 0


def test_megabatch_vs_per_request_smoke(emit):
    """Stacked serving returns identical reports (fast; one round)."""
    _megabatch_comparison(emit=emit, fleet=2, rounds=1)


def _trace_overhead(
    emit=print, json_path: str | None = None, fleet: int = 8, total: int = 48
) -> int:
    """E15 tracing overhead leg — untraced x2 vs traced serving.

    Three identical warm ``POST /v2/recommend`` sweeps: two through an
    untraced server (their spread bounds run-to-run jitter — tracing
    left disabled must hide inside it, since the trace-capable code is
    in the hot path either way) and one through a ``trace=True`` server
    driven by a traceparent-stamping client.  The traced leg's relative
    slowdown is the *enabled* overhead the table and JSON artifact
    report.  Alongside the timing we assert the observability claims:
    the traced server recorded one span tree per request (request /
    parse / serialize phases present, retrievable via ``/v2/traces``)
    and the recommendation payload is identical in every leg.
    """
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="bench-e15")

    def serve(trace: bool):
        with start_in_thread(observed_broker(), trace=trace) as handle:
            client = ServerClient(handle.host, handle.port, trace=trace)
            client.recommend(envelope)  # warm every provider engine
            reports, elapsed = _drive_requests(client, envelope, total, fleet)
            tracing = None
            if trace:
                listing = client.traces(limit=total + 8)
                assert listing["traces"], "traced server recorded no traces"
                spans = client.trace_spans(client.last_trace_id)
                names = {span.name for span in spans}
                assert {"request", "parse", "serialize"} <= names, names
                tracing = {
                    "traces_recorded": len(listing["traces"]),
                    "dropped": listing["dropped"],
                    "spans_in_last_trace": len(spans),
                }
            return reports, elapsed, tracing

    legs = []
    want = None
    for mode, trace in (
        ("untraced-a", False), ("untraced-b", False), ("traced", True)
    ):
        reports, elapsed, tracing = serve(trace)
        stripped = [
            {k: v for k, v in report.best.to_dict().items()
             if k != "engine_stats"}
            for report in reports
        ]
        if want is None:
            want = stripped[0]
        assert all(got == want for got in stripped), f"{mode} diverged"
        leg = {
            "mode": mode,
            "requests": total,
            "seconds": elapsed,
            "requests_per_s": total / elapsed,
        }
        if tracing is not None:
            leg["tracing"] = tracing
        legs.append(leg)

    rate_a, rate_b, rate_traced = (leg["requests_per_s"] for leg in legs)
    jitter = abs(rate_a - rate_b) / max(rate_a, rate_b)
    baseline = (rate_a + rate_b) / 2.0
    enabled_overhead = max(0.0, 1.0 - rate_traced / baseline)
    emit(
        f"[E15] tracing overhead ({fleet} client threads, {total} requests "
        f"per leg, {os.cpu_count()} cpu):\n"
        + "\n".join(
            f"  {leg['mode']:<12} {leg['seconds']:6.2f} s   "
            f"{leg['requests_per_s']:8.1f} req/s"
            for leg in legs
        )
        + f"\n  untraced jitter {jitter:.1%}; enabled overhead "
        f"{enabled_overhead:.1%} vs untraced mean "
        f"({legs[2]['tracing']['traces_recorded']} traces recorded, "
        "reports identical)"
    )
    if json_path:
        _write_json(json_path, {
            "experiment": "E15",
            "generated": datetime.now(timezone.utc).isoformat(),
            "cores": os.cpu_count(),
            "client_threads": fleet,
            "requests_per_leg": total,
            "legs": legs,
            "untraced_jitter": jitter,
            "enabled_overhead_vs_untraced_mean": enabled_overhead,
        })
        emit(f"  wrote {json_path}")
    return 0


def test_trace_overhead_smoke(emit):
    """Traced serving records span trees, reports identical (fast)."""
    _trace_overhead(emit=emit, fleet=2, total=6)


def _hardening_overhead(
    emit=print, json_path: str | None = None, fleet: int = 8, total: int = 48
) -> int:
    """E16 hardening overhead leg — open serving vs the full guard stack.

    Three identical warm ``POST /v2/recommend`` sweeps: two through an
    open server with an unkeyed client (their spread bounds run-to-run
    jitter) and one through a hardened server — bearer auth, a
    non-binding rate limit, and a key-stamping client, so every request
    pays the auth check, a token-bucket debit and a replay-table claim/
    commit.  Alongside the timing we assert the hardening actually
    engaged (the replay table holds one entry per keyed request) and
    that the recommendation payload is identical in every leg.
    """
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="bench-e16")
    token = "bench-e16-token"

    def serve(hardened: bool):
        kwargs = {}
        if hardened:
            kwargs = {
                "auth_token": token,
                "rate_limit": 1e6,  # every request pays the bucket, none 429
                "idempotency_capacity": total * 2,
            }
        with start_in_thread(observed_broker(), **kwargs) as handle:
            client = ServerClient(
                handle.host,
                handle.port,
                auth_token=token if hardened else None,
                idempotency=hardened,
            )
            client.recommend(envelope)  # warm every provider engine
            reports, elapsed = _drive_requests(client, envelope, total, fleet)
            stored = len(handle.server.idempotency)
            if hardened:
                assert stored >= total, (
                    f"replay table holds {stored} entries for {total} "
                    "keyed requests — hardening did not engage"
                )
            return reports, elapsed, stored

    legs = []
    want = None
    for mode, hardened in (
        ("open-a", False), ("open-b", False), ("hardened", True)
    ):
        reports, elapsed, stored = serve(hardened)
        stripped = [
            {k: v for k, v in report.best.to_dict().items()
             if k != "engine_stats"}
            for report in reports
        ]
        if want is None:
            want = stripped[0]
        assert all(got == want for got in stripped), f"{mode} diverged"
        legs.append({
            "mode": mode,
            "requests": total,
            "seconds": elapsed,
            "requests_per_s": total / elapsed,
            "replay_entries": stored,
        })

    rate_a, rate_b, rate_hardened = (leg["requests_per_s"] for leg in legs)
    jitter = abs(rate_a - rate_b) / max(rate_a, rate_b)
    baseline = (rate_a + rate_b) / 2.0
    overhead = max(0.0, 1.0 - rate_hardened / baseline)
    emit(
        f"[E16] hardening overhead ({fleet} client threads, {total} requests "
        f"per leg, {os.cpu_count()} cpu):\n"
        + "\n".join(
            f"  {leg['mode']:<10} {leg['seconds']:6.2f} s   "
            f"{leg['requests_per_s']:8.1f} req/s"
            for leg in legs
        )
        + f"\n  open jitter {jitter:.1%}; auth+rate-limit+replay overhead "
        f"{overhead:.1%} vs open mean ({legs[2]['replay_entries']} replay "
        "entries stored, reports identical)"
    )
    if json_path:
        _write_json(json_path, {
            "experiment": "E16",
            "generated": datetime.now(timezone.utc).isoformat(),
            "cores": os.cpu_count(),
            "client_threads": fleet,
            "requests_per_leg": total,
            "legs": legs,
            "open_jitter": jitter,
            "overhead_vs_open_mean": overhead,
        })
        emit(f"  wrote {json_path}")
    return 0


def test_hardening_overhead_smoke(emit):
    """The guard stack engages and reports stay identical (fast)."""
    _hardening_overhead(emit=emit, fleet=2, total=6)


def _worker_scaling(
    emit=print,
    json_path: str | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    fleet: int = 8,
    total: int = 48,
) -> int:
    """E17 worker scaling leg — in-process serving vs the gateway fleet.

    One warm ``POST /v2/recommend`` sweep over eight distinct contracts
    (so content routing actually spreads requests across partitions)
    through the in-process server, then through a gateway at each
    requested worker count — twin brokers every time, so the
    recommendation payloads must be identical across every leg.  The
    scaling assertions only engage on a genuinely multi-core host
    (``os.cpu_count() >= 4``): the whole point of the fleet is to put
    independent evaluation work on independent cores, and on one core
    the gateway can only add dispatch overhead.
    """
    contracts = [
        Contract.linear(98.0, 100.0 + 25.0 * index) for index in range(8)
    ]
    envelopes = [
        RecommendEnvelope(
            three_tier_request(contract), request_id=f"bench-e17-{index}"
        )
        for index, contract in enumerate(contracts)
    ]

    def drive(client):
        for envelope in envelopes:  # warm every partition's engines
            client.recommend(envelope)
        with ThreadPoolExecutor(max_workers=fleet) as pool:
            start = time.perf_counter()
            futures = [
                pool.submit(client.recommend, envelopes[index % len(envelopes)])
                for index in range(total)
            ]
            reports = [future.result() for future in futures]
            elapsed = time.perf_counter() - start
        stripped = [
            {k: v for k, v in report.best.to_dict().items()
             if k != "engine_stats"}
            for report in reports
        ]
        return stripped, elapsed

    legs = []
    baseline = None
    for workers in (0, *worker_counts):
        with start_in_thread(observed_broker(), workers=workers) as handle:
            client = ServerClient(handle.host, handle.port)
            stripped, elapsed = drive(client)
        mode = "in-process" if workers == 0 else f"gateway-{workers}"
        if baseline is None:
            baseline = stripped
        else:
            assert stripped == baseline, f"{mode} diverged from in-process"
        legs.append({
            "mode": mode,
            "workers": workers,
            "requests": total,
            "seconds": elapsed,
            "requests_per_s": total / elapsed,
        })

    base_rate = legs[0]["requests_per_s"]
    ratios = {
        leg["workers"]: leg["requests_per_s"] / base_rate for leg in legs[1:]
    }
    cores = os.cpu_count() or 1
    if cores >= 4:
        if 1 in ratios:
            assert ratios[1] >= 0.9, (
                f"one-worker gateway ran at {ratios[1]:.2f}x the in-process "
                "server — dispatch overhead exceeds the 10% budget"
            )
        if 4 in ratios:
            assert ratios[4] >= 2.0, (
                f"four-worker gateway ran at {ratios[4]:.2f}x the in-process "
                "server on a multi-core host — partitioning is not scaling"
            )
    emit(
        f"[E17] gateway worker scaling ({fleet} client threads, {total} "
        f"requests per leg, {len(envelopes)} contracts, {cores} cpu):\n"
        + "\n".join(
            f"  {leg['mode']:<12} {leg['seconds']:6.2f} s   "
            f"{leg['requests_per_s']:8.1f} req/s"
            + (
                f"   ({ratios[leg['workers']]:.2f}x in-process)"
                if leg["workers"] in ratios else ""
            )
            for leg in legs
        )
        + "\n  reports identical across every leg"
        + ("" if cores >= 4 else "; scaling asserts skipped on <4 cores")
    )
    if json_path:
        _write_json(json_path, {
            "experiment": "E17",
            "generated": datetime.now(timezone.utc).isoformat(),
            "cores": cores,
            "client_threads": fleet,
            "requests_per_leg": total,
            "legs": legs,
            "speedup_vs_in_process": {
                str(workers): ratio for workers, ratio in ratios.items()
            },
            "scaling_asserts_engaged": cores >= 4,
        })
        emit(f"  wrote {json_path}")
    return 0


def test_worker_scaling_smoke(emit):
    """A one-worker gateway answers byte-identically (fast)."""
    _worker_scaling(emit=emit, worker_counts=(1,), fleet=2, total=8)


def _smoke() -> int:
    """Fast CI guard: wire fidelity + sharded-ingest exactness."""
    # 1. Wire report identical to a direct session on a twin broker.
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="smoke")
    with observed_broker(seed=7).session() as session:
        expected = session.recommend_envelope(envelope).to_json()
    with start_in_thread(observed_broker(seed=7)) as handle:
        client = ServerClient(handle.host, handle.port)
        got = client.recommend(envelope).to_json()
        assert got == expected, "wire report diverged from direct session"
        samples = client.metrics()
        assert ("repro_engine_cache_misses_total", ()) in samples

    # 2. Sharded ingestion == single store, thread and process backends.
    text = cross_cloud_trace(lines=4_000)
    reference = ingest_reference(text)
    rates = []
    for backend, shards in (("thread", 4), ("process", 2)):
        serving = TelemetryStore()
        with ShardedIngestor(
            serving, num_shards=shards, backend=backend
        ) as ingestor:
            start = time.perf_counter()
            ingestor.submit_jsonl(text)
            ingestor.flush()
            elapsed = time.perf_counter() - start
        assert serving.snapshot() == reference.snapshot(), backend
        rates.append(f"{backend}x{shards} {4_000 / elapsed:,.0f} lines/s")
    print(f"[smoke] wire report bit-identical; ingest {'; '.join(rates)}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast correctness smoke instead of pytest-benchmark",
    )
    parser.add_argument(
        "--megabatch", action="store_true",
        help="race megabatch vs per-request vector serving (E13)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="measure tracing overhead: untraced x2 vs traced (E15)",
    )
    parser.add_argument(
        "--hardened", action="store_true",
        help="measure auth+rate-limit+replay overhead: open x2 vs "
        "hardened (E16)",
    )
    parser.add_argument(
        "--workers", nargs="+", type=int, metavar="N", default=None,
        help="measure gateway scaling at these worker counts vs the "
        "in-process server (E17), e.g. --workers 1 2 4",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="with --megabatch, --trace, --hardened or --workers, also "
        "write the timings as a JSON artifact (e.g. BENCH_E17.json)",
    )
    args = parser.parse_args()
    if sum(
        (args.megabatch, args.trace, args.hardened, args.workers is not None)
    ) > 1:
        parser.error(
            "--megabatch, --trace, --hardened and --workers are separate legs"
        )
    if args.megabatch:
        raise SystemExit(_megabatch_comparison(json_path=args.json))
    if args.trace:
        raise SystemExit(_trace_overhead(json_path=args.json))
    if args.hardened:
        raise SystemExit(_hardening_overhead(json_path=args.json))
    if args.workers is not None:
        if any(count < 1 for count in args.workers):
            parser.error("--workers counts must be >= 1")
        raise SystemExit(
            _worker_scaling(
                json_path=args.json, worker_counts=tuple(args.workers)
            )
        )
    if args.json:
        parser.error(
            "--json requires --megabatch, --trace, --hardened or --workers"
        )
    if not args.smoke:
        parser.error("run via pytest for full benchmarks, or pass --smoke")
    raise SystemExit(_smoke())
