"""E11 — broker server throughput: wire requests and sharded ingestion.

Two sweeps over the :mod:`repro.server` serving layer:

1. **Requests/sec vs session worker count** — a fleet of client threads
   drives warm ``POST /v2/recommend`` calls through a live asyncio
   server; the engine cache means each request is pure serving work.
2. **Ingest throughput vs shard count** — a simulation-generated JSONL
   trace (wide cross-cloud keyspace, so hash partitioning balances)
   through the sharded pipeline, thread vs process backends.  Shard
   workers parse their own lines, so the process backend turns JSONL
   decoding into true parallelism on multi-core hosts; the table
   records ``os.cpu_count()`` because on a single core every sweep is
   necessarily flat.

Correctness is asserted alongside the timing: wire reports are
bit-identical to a direct session, and sharded ingestion reproduces
single-store estimates exactly at every shard count.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ThreadPoolExecutor

from repro.broker.envelope import RecommendEnvelope
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.broker.telemetry import TelemetryStore
from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.cloud.providers import all_providers
from repro.server import ServerClient, start_in_thread
from repro.server.ingest import ShardedIngestor, records_to_jsonl
from repro.sla.contract import Contract


def observed_broker(years: float = 1.0, seed: int = 23) -> BrokerService:
    broker = BrokerService(all_providers())
    broker.observe_all(years=years, seed=seed)
    return broker


def cross_cloud_trace(lines: int, providers: int = 16, seed: int = 1) -> str:
    """A JSONL telemetry trace over a wide (provider, kind) keyspace."""
    rng = random.Random(seed)
    names = [f"cloud-{index:02d}" for index in range(providers)]
    kinds = ("vm", "volume", "gateway", "lb")
    cycle = (
        ResourceEventKind.FAILURE,
        ResourceEventKind.REPAIR,
        ResourceEventKind.FAILOVER,
    )
    records = [
        ResourceEvent(
            float(index),
            names[index % providers],
            kinds[(index // providers) % len(kinds)],
            f"r-{index % 64}",
            cycle[index % 3],
            rng.random() * 50.0,
        )
        for index in range(lines)
    ]
    return records_to_jsonl(records)


def ingest_reference(text: str) -> TelemetryStore:
    store = TelemetryStore()
    with ShardedIngestor(store, num_shards=1) as ingestor:
        ingestor.submit_jsonl(text)
    return store


def _drive_requests(client: ServerClient, envelope, total: int, fleet: int):
    with ThreadPoolExecutor(max_workers=fleet) as pool:
        start = time.perf_counter()
        futures = [
            pool.submit(client.recommend, envelope) for _ in range(total)
        ]
        reports = [future.result() for future in futures]
        elapsed = time.perf_counter() - start
    return reports, elapsed


def test_request_throughput_vs_workers(emit):
    """Warm requests/sec through the wire, 1 vs 4 session workers."""
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="bench")
    total, fleet = 32, 8
    rows = []
    for max_workers in (1, 4):
        broker = observed_broker()
        with broker.session() as session:
            expected = session.recommend_envelope(envelope)
        with start_in_thread(broker, max_workers=max_workers) as handle:
            client = ServerClient(handle.host, handle.port)
            client.recommend(envelope)  # warm every provider engine
            reports, elapsed = _drive_requests(client, envelope, total, fleet)
        # engine_stats audit warm vs cold serving; the recommendation
        # itself must be identical.
        want = {k: v for k, v in expected.best.to_dict().items()
                if k != "engine_stats"}
        for report in reports:
            got = {k: v for k, v in report.best.to_dict().items()
                   if k != "engine_stats"}
            assert got == want
        rows.append((max_workers, total / elapsed))
    table = "\n".join(
        f"  {workers} session worker(s): {rate:8.1f} req/s"
        for workers, rate in rows
    )
    emit(
        f"[E11] warm /v2/recommend throughput ({fleet} client threads, "
        f"{total} requests, {os.cpu_count()} cpu):\n{table}"
    )


def test_ingest_throughput_vs_shards(emit):
    """Sharded JSONL ingestion, thread vs process backends."""
    text = cross_cloud_trace(lines=60_000)
    lines = text.count("\n")
    reference = ingest_reference(text)
    rows = []
    for backend, shard_counts in (
        ("thread", (1, 4)),
        ("process", (1, 2, 4, 8)),
    ):
        for shards in shard_counts:
            serving = TelemetryStore()
            with ShardedIngestor(
                serving, num_shards=shards, backend=backend
            ) as ingestor:
                start = time.perf_counter()
                ingestor.submit_jsonl(text)
                ingestor.flush()
                elapsed = time.perf_counter() - start
            assert serving.snapshot() == reference.snapshot()
            rows.append((backend, shards, lines / elapsed))
    table = "\n".join(
        f"  {backend:<8} shards={shards}: {rate:9,.0f} lines/s"
        for backend, shards, rate in rows
    )
    emit(
        f"[E11] sharded ingest throughput ({lines:,}-line trace, 64 keys, "
        f"{os.cpu_count()} cpu):\n{table}\n"
        "  (process shards parse their own lines; scaling tracks core count)"
    )


def _smoke() -> int:
    """Fast CI guard: wire fidelity + sharded-ingest exactness."""
    # 1. Wire report identical to a direct session on a twin broker.
    request = three_tier_request(Contract.linear(98.0, 100.0))
    envelope = RecommendEnvelope(request, request_id="smoke")
    with observed_broker(seed=7).session() as session:
        expected = session.recommend_envelope(envelope).to_json()
    with start_in_thread(observed_broker(seed=7)) as handle:
        client = ServerClient(handle.host, handle.port)
        got = client.recommend(envelope).to_json()
        assert got == expected, "wire report diverged from direct session"
        samples = client.metrics()
        assert ("repro_engine_cache_misses_total", ()) in samples

    # 2. Sharded ingestion == single store, thread and process backends.
    text = cross_cloud_trace(lines=4_000)
    reference = ingest_reference(text)
    rates = []
    for backend, shards in (("thread", 4), ("process", 2)):
        serving = TelemetryStore()
        with ShardedIngestor(
            serving, num_shards=shards, backend=backend
        ) as ingestor:
            start = time.perf_counter()
            ingestor.submit_jsonl(text)
            ingestor.flush()
            elapsed = time.perf_counter() - start
        assert serving.snapshot() == reference.snapshot(), backend
        rates.append(f"{backend}x{shards} {4_000 / elapsed:,.0f} lines/s")
    print(f"[smoke] wire report bit-identical; ingest {'; '.join(rates)}")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast correctness smoke instead of pytest-benchmark",
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.error("run via pytest for full benchmarks, or pass --smoke")
    raise SystemExit(_smoke())
