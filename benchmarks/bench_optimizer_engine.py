"""E9/E12/E13/E14 — the EvaluationEngine vs legacy, and backend vs backend.

The seed implementation rebuilt a full :class:`SystemTopology` and
re-ran the entire availability + TCO model for every one of the ``k^n``
candidates — in every strategy, separately.  The engine precomputes
``n * k`` per-(cluster, technology) factor sets once, evaluates each
candidate with an O(n) recombination, and memoizes finished options so
searches restarted over the same problem never evaluate twice.

This bench measures wall-clock and evaluations/sec across space sizes,
and verifies the acceptance criterion: on a 4-cluster x 4-technology
space (256 candidates) the engine performs at least 3x fewer
full-topology evaluations than the legacy path while producing
bit-identical results, with cache hits reported across strategy
restarts.

The ``--compare-backends`` mode (E12, extended to four backends as E13,
then to cross-request megabatching as E14) races the serial, thread,
process and vector evaluation backends over an extended >= 100k-candidate
catalog: distilled brute-force sweeps with the result cache off,
asserting all backends agree bit-identically and — on machines with
>= 2 cores — that the process backend beats the GIL-bound thread backend
wall-clock, plus (when numpy is installed) that the vector backend beats
serial even on one core.  Without numpy the vector leg is *skipped* with
a clear notice (a degraded-to-serial timing row would be noise, not
signal).  The E14 megabatch leg then drives concurrent same-problem
sweeps twice — each on its own vector engine, then all stacked through a
:class:`~repro.optimizer.megabatch.MegabatchStacker` on one shared
engine — asserting stacked results stay bit-identical.  Combine with
``--smoke`` for the fast CI variant (small catalog, equivalence checks
only, no timing assertions); ``--json PATH`` writes the measured rows as
a machine-readable artifact (see BENCH_E14.json).
"""

from __future__ import annotations

import json
import os
import threading
import time
from datetime import datetime, timezone

from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1, RAID10
from repro.catalog.registry import TechnologyRegistry
from repro.catalog.sds import SDSReplication
from repro.cost.rates import LaborRate
from repro.optimizer.advisor import advise_upgrades
from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import brute_force_optimize, evaluate_candidate
from repro.optimizer.engine import ENGINE_BACKENDS, EvaluationEngine
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.result import OptimizationResult
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.workloads.case_study import case_study_problem
from repro.workloads.generators import random_problem


def four_by_four_problem() -> OptimizationProblem:
    """A 4-cluster space with k=4 choices per cluster (4^4 = 256).

    Alternating compute/storage layers so each cluster draws from a
    catalog of three technologies plus ``none``.
    """
    registry = TechnologyRegistry()
    registry.register(HypervisorHA(
        standby_nodes=1, failover_minutes=10.0,
        monthly_license_per_node=12.5, monthly_labor_hours=4.0,
    ))
    registry.register(HypervisorHA(
        standby_nodes=2, failover_minutes=8.0,
        monthly_license_per_node=20.0, monthly_labor_hours=5.0,
    ))
    registry.register(OSCluster(
        standby_nodes=1, failover_minutes=18.0,
        monthly_support_per_node=9.0, monthly_labor_hours=6.0,
    ))
    registry.register(RAID1(
        failover_minutes=1.0, monthly_controller_cost=30.0,
        monthly_labor_hours=2.0,
    ))
    registry.register(RAID10(
        failover_minutes=1.0, monthly_controller_cost=55.0,
        monthly_labor_hours=2.5,
    ))
    registry.register(SDSReplication(
        replica_count=3, failover_minutes=0.5,
        monthly_software_cost=80.0, monthly_labor_hours=3.0,
    ))
    compute = NodeSpec("host", 0.0025, 6.0, monthly_cost=330.0)
    volume = NodeSpec("volume", 0.015, 5.0, monthly_cost=170.0)
    system = (
        TopologyBuilder("four-by-four")
        .compute("web-compute", compute, nodes=3)
        .storage("web-storage", volume, nodes=1)
        .compute("app-compute", compute, nodes=2)
        .storage("app-storage", volume, nodes=1)
        .build()
    )
    return OptimizationProblem(
        base_system=system,
        registry=registry,
        contract=Contract.linear(98.0, 100.0),
        labor_rate=LaborRate(30.0),
    )


def _legacy_brute_force(problem):
    """The seed evaluation path: full topology + full model per candidate."""
    space = problem.space()
    return [
        evaluate_candidate(problem, space, option_id, indices)
        for option_id, indices in enumerate(
            space.candidates_in_paper_order(), start=1
        )
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_engine_wall_clock_across_space_sizes(benchmark, emit):
    """Wall-clock and evaluations/sec: legacy path vs cached engine."""
    cases = [
        ("case study 2^3", case_study_problem()),
        ("random 3^4 x1", random_problem(11, clusters=4, choices_per_layer=3)),
        ("4-cluster 4^4", four_by_four_problem()),
    ]
    rows = []
    for label, problem in cases:
        legacy_options, legacy_seconds = _timed(lambda p=problem: _legacy_brute_force(p))
        engine = EvaluationEngine(problem)
        engine_result, engine_seconds = _timed(
            lambda p=problem, e=engine: brute_force_optimize(p, engine=e)
        )
        count = len(legacy_options)
        assert engine_result.evaluations == count
        assert engine_result.best.tco.total == min(
            option.tco.total for option in legacy_options
        )
        rows.append(
            f"  {label:<16} n={count:>4}: "
            f"legacy {count / legacy_seconds:>10.0f} evals/s "
            f"({legacy_seconds * 1e3:7.2f} ms)  "
            f"engine {count / engine_seconds:>10.0f} evals/s "
            f"({engine_seconds * 1e3:7.2f} ms)  "
            f"speedup {legacy_seconds / engine_seconds:5.1f}x"
        )

    fresh = four_by_four_problem()
    benchmark(lambda: brute_force_optimize(fresh, engine=EvaluationEngine(fresh)))
    emit("[E9] candidate evaluation throughput:\n" + "\n".join(rows))


def test_engine_avoids_full_topology_evaluations(emit):
    """Acceptance: >= 3x fewer full-topology evaluations on 4^4 space."""
    problem = four_by_four_problem()

    # Legacy accounting: every candidate evaluation in every search ran
    # the full topology + availability + TCO pipeline.
    legacy_counts = {
        "brute-force": brute_force_optimize(problem).evaluations,
        "pruned": pruned_optimize(problem).evaluations,
        "branch-and-bound": branch_and_bound_optimize(problem).evaluations,
    }
    legacy_full = sum(legacy_counts.values())

    # Engine accounting: one shared engine serves all three searches
    # plus an advisor what-if sweep; full-topology evaluations stay at
    # zero and restarts are pure cache hits.
    shared = EvaluationEngine(problem)
    results = {
        "brute-force": brute_force_optimize(problem, engine=shared),
        "pruned": pruned_optimize(problem, engine=shared),
        "branch-and-bound": branch_and_bound_optimize(problem, engine=shared),
    }
    current = ("none", "raid-1", "none", "raid-1")
    for migration_cost in (0.0, 500.0, 5000.0):
        advise_upgrades(
            problem, current, migration_cost=migration_cost, engine=shared
        )
    stats = shared.stats

    for name, result in results.items():
        assert result.best.tco.total == results["brute-force"].best.tco.total, name

    # The engine's only cluster-level model computations are the n*k
    # precomputed factor sets; candidate evaluation never rebuilds and
    # re-evaluates a topology.
    engine_full = stats.topology_evaluations + stats.cluster_term_computations
    assert stats.topology_evaluations == 0
    assert stats.incremental_combines == 256
    assert stats.cache_hits > 0
    assert legacy_full >= 3 * engine_full, (legacy_full, engine_full)

    emit(
        "[E9] full-topology evaluations on the 4-cluster x 4-technology "
        "space (256 candidates):\n"
        f"  legacy (per-strategy re-evaluation): {legacy_full} "
        f"({', '.join(f'{k}={v}' for k, v in legacy_counts.items())})\n"
        f"  engine (shared cache): {stats.topology_evaluations} full + "
        f"{stats.cluster_term_computations} per-cluster term precomputes\n"
        f"  => {legacy_full / engine_full:.1f}x fewer; "
        f"{stats.describe()}"
    )


def test_parallel_chunked_evaluation_matches(emit):
    """parallel=True produces the identical option table, in order."""
    problem = four_by_four_problem()
    sequential = brute_force_optimize(problem)
    engine = EvaluationEngine(problem, parallel=True, chunk_size=32)
    parallel = brute_force_optimize(problem, engine=engine)
    assert [option.tco.total for option in parallel.options] == [
        option.tco.total for option in sequential.options
    ]
    emit(
        "[E9] parallel chunked evaluation: 256/256 options bit-identical "
        "to sequential order"
    )


def extended_catalog_problem(clusters: int = 9) -> OptimizationProblem:
    """The E12 extended catalog: ``clusters`` layers, k=4 each.

    Nine clusters at the generator's maximum of three technologies per
    layer (plus ``none``) give ``4^9 = 262,144`` candidates — past the
    100k bar the process-backend acceptance criterion sets, and deep
    enough (n=9, within the paper's n<=10 bound) that the O(n^2)
    failover recombination dominates per-candidate cost.
    """
    return random_problem(2024, clusters=clusters, choices_per_layer=3)


def _distilled_sweep(engine: EvaluationEngine) -> OptimizationResult:
    """One O(1)-memory brute-force sweep in the *streaming* shape.

    ``from_stream`` over ``evaluate_all`` assembles every candidate's
    option — the serving path's shape, and the one megabatch stacking
    amortizes across requests.  The backend-comparison legs use
    :meth:`EvaluationEngine.sweep` instead, which lets bulk-ranking
    backends skip per-candidate assembly entirely.
    """
    return OptimizationResult.from_stream(
        engine.evaluate_all(),
        space_size=engine.space.size,
        strategy="brute-force",
        keep_options=False,
    )


def _megabatch_race(
    problem, reference: OptimizationResult, threads: int, window: float
) -> dict:
    """E14 megabatch leg: concurrent same-problem sweeps, stacked vs not.

    ``threads`` concurrent "requests" sweep the same vector-backed
    problem twice: first each on its own engine (per-request vector
    passes, the pre-megabatch serving shape), then all sharing ONE
    engine whose block evaluation is stacked through a
    :class:`MegabatchStacker` — the broker's megabatch serving shape.
    Every sweep's distillation must match the serial reference
    bit-identically; the returned dict carries both wall-clocks.
    """
    from repro.optimizer.megabatch import MegabatchConfig, MegabatchStacker

    def run_concurrent(engine_for_thread) -> tuple[list, float]:
        out: list = [None] * threads
        workers = [
            threading.Thread(
                target=lambda i=i: out.__setitem__(
                    i, _distilled_sweep(engine_for_thread(i))
                )
            )
            for i in range(threads)
        ]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        return out, time.perf_counter() - start

    engines = [
        EvaluationEngine(problem, cache=False, backend="vector", chunk_size=4096)
        for _ in range(threads)
    ]
    try:
        per_request, per_request_seconds = run_concurrent(
            lambda i: engines[i]
        )
    finally:
        for engine in engines:
            engine.close()

    shared = EvaluationEngine(
        problem, cache=False, backend="vector", chunk_size=4096
    )
    stacker = MegabatchStacker(MegabatchConfig(window_seconds=window))
    shared.enable_megabatch(stacker)
    for _ in range(threads):
        stacker.join(shared.uid)
    try:
        stacked, stacked_seconds = run_concurrent(lambda i: shared)
    finally:
        for _ in range(threads):
            stacker.leave(shared.uid)
        shared.disable_megabatch()
        shared.close()

    for result in (*per_request, *stacked):
        assert result.evaluations == reference.evaluations
        assert result.best.option_id == reference.best.option_id
        assert result.best.tco.total == reference.best.tco.total

    total = threads * reference.evaluations
    return {
        "threads": threads,
        "window_seconds": window,
        "per_request_seconds": per_request_seconds,
        "per_request_candidates_per_s": total / per_request_seconds,
        "megabatch_seconds": stacked_seconds,
        "megabatch_candidates_per_s": total / stacked_seconds,
        "speedup_over_per_request": per_request_seconds / stacked_seconds,
        "stacker": stacker.stats.to_dict(),
    }


def _compare_backends(smoke: bool, emit=print, json_path: str | None = None) -> int:
    """E14 (extends E12/E13) — race the evaluation backends + megabatch.

    Distilled sweeps (``keep_options=False``) with per-engine result
    caches off, so every backend performs the full ``k^n`` recombination
    work and memory stays O(1).  Backends race through
    :meth:`EvaluationEngine.sweep`, so the vector leg uses the
    block-distilled ranking pass (argmin over whole blocks, winners-only
    assembly) while serial/thread/process stream per candidate — each
    backend's best honest path.  Asserts all backends return the same
    evaluations count and a bit-identical best option; outside smoke
    mode, also asserts the process backend beats the thread backend on
    >= 2 cores and — with numpy installed — that the vector backend
    beats serial regardless of core count (it vectorizes the combine,
    not the pool).  Without numpy the vector leg (and the megabatch leg,
    which is vector-only) is skipped with a notice instead of timing a
    silently degraded serial engine.  With numpy, the E14 megabatch leg
    additionally races concurrent per-request vector sweeps against the
    same load stacked through one shared engine.
    """
    from repro.optimizer.engine import _import_numpy

    cores = os.cpu_count() or 1
    has_numpy = _import_numpy() is not None
    problem = (
        random_problem(2024, clusters=5, choices_per_layer=3)
        if smoke
        else extended_catalog_problem()
    )
    timings: dict[str, float] = {}
    results: dict[str, OptimizationResult] = {}
    skipped: list[str] = []
    rows = []
    for backend in ENGINE_BACKENDS:
        if backend == "vector" and not has_numpy:
            skipped.append(backend)
            rows.append(
                f"  {backend:<8}  SKIPPED (numpy not installed; "
                "pip install .[vector])"
            )
            continue
        with EvaluationEngine(
            problem, cache=False, backend=backend, chunk_size=4096
        ) as engine:
            # Each backend's best honest path through one API call:
            # sweep() is from_stream for serial/thread/process and the
            # block-distilled ranking pass for vector.
            result, seconds = _timed(
                lambda e=engine: e.sweep(keep_options=False)
            )
        timings[backend] = seconds
        results[backend] = result
        rows.append(
            f"  {backend:<8} {seconds:8.2f} s   "
            f"{result.evaluations / seconds:>10,.0f} evals/s   "
            f"best {result.best.label}"
        )

    reference = results["serial"]
    for backend, result in results.items():
        assert result.evaluations == reference.evaluations, backend
        assert result.best.option_id == reference.best.option_id, backend
        assert result.best.tco.total == reference.best.tco.total, backend
        assert result.best.availability.uptime_probability == (
            reference.best.availability.uptime_probability
        ), backend

    speedups = {
        "process_over_thread": timings["thread"] / timings["process"],
    }
    verdict = (
        f"process/thread speedup {speedups['process_over_thread']:.2f}x"
    )
    if has_numpy:
        speedups["vector_over_serial"] = (
            timings["serial"] / timings["vector"]
        )
        verdict += (
            f", vector/serial speedup "
            f"{speedups['vector_over_serial']:.2f}x"
        )
    verdict += f" on {cores} core(s)"
    if not has_numpy:
        verdict += " (vector leg skipped: numpy not installed)"

    megabatch = None
    if has_numpy:
        megabatch = _megabatch_race(
            problem,
            reference,
            threads=2 if smoke else 4,
            window=0.005 if smoke else 0.02,
        )
        rows.append(
            f"  megabatch x{megabatch['threads']} concurrent sweeps: "
            f"per-request {megabatch['per_request_seconds']:.2f} s "
            f"({megabatch['per_request_candidates_per_s']:,.0f} cand/s)  "
            f"stacked {megabatch['megabatch_seconds']:.2f} s "
            f"({megabatch['megabatch_candidates_per_s']:,.0f} cand/s)  "
            f"speedup {megabatch['speedup_over_per_request']:.2f}x"
        )

    emit(
        f"[E14] backend comparison, {reference.evaluations:,}-candidate "
        f"catalog ({'smoke' if smoke else 'extended'}):\n"
        + "\n".join(rows)
        + f"\n  {verdict}"
    )
    if not smoke and cores >= 2:
        assert timings["process"] < timings["thread"], (
            "acceptance: ProcessBackend must beat ThreadBackend on "
            f">= 2 cores; got {timings}"
        )
    if not smoke and has_numpy:
        assert timings["vector"] < timings["serial"], (
            "acceptance: VectorBackend must beat SerialBackend when "
            f"numpy is installed; got {timings}"
        )

    if json_path:
        payload = {
            "experiment": "E14",
            "generated": datetime.now(timezone.utc).isoformat(),
            "smoke": smoke,
            "cores": cores,
            "candidates": reference.evaluations,
            "backends": [
                {
                    "backend": backend,
                    "seconds": timings[backend],
                    "candidates_per_s": (
                        results[backend].evaluations / timings[backend]
                    ),
                }
                for backend in timings
            ],
            "skipped": skipped,
            "speedups": speedups,
            "megabatch": megabatch,
        }
        _write_json(json_path, payload)
        emit(f"  wrote {json_path}")
    return 0


def _write_json(path: str, payload: dict) -> None:
    """Write one benchmark artifact (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_backend_comparison_smoke(emit):
    """Cross-backend agreement on the small catalog (fast; E12 smoke)."""
    _compare_backends(smoke=True, emit=emit)


def _smoke() -> int:
    """Fast CI guard: engine correctness + zero full-topology evals."""
    problem = four_by_four_problem()
    engine = EvaluationEngine(problem)
    result, seconds = _timed(lambda: brute_force_optimize(problem, engine=engine))
    pruned_optimize(problem, engine=engine)
    assert engine.stats.topology_evaluations == 0
    assert engine.stats.incremental_combines == 256
    assert engine.stats.cache_hits > 0
    assert all(not option.system_is_materialized for option in result.options)
    print(
        f"[smoke] 4^4 space: {result.evaluations} evaluations in "
        f"{seconds * 1e3:.1f} ms; {engine.stats.describe()}"
    )
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fast correctness smoke instead of pytest-benchmark",
    )
    parser.add_argument(
        "--compare-backends", action="store_true",
        help="race serial/thread/process/vector backends plus the "
        "megabatch leg (E14); with --smoke, a small-catalog equivalence "
        "check without timing assertions",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="with --compare-backends, also write the timings as a JSON "
        "artifact (e.g. BENCH_E14.json)",
    )
    args = parser.parse_args()
    if args.compare_backends:
        raise SystemExit(
            _compare_backends(smoke=args.smoke, json_path=args.json)
        )
    if args.json:
        parser.error("--json requires --compare-backends")
    if not args.smoke:
        parser.error("run via pytest for full benchmarks, or pass --smoke")
    raise SystemExit(_smoke())
