"""E5b — when is the broker's database good enough to commit?

§IV worries about skew in the broker's estimates.  Combining the
telemetry standard errors with delta-method propagation answers the
operational question: after N observed years, how confident is the
broker that its recommended option really beats the runner-up?
"""

from __future__ import annotations

import pytest

from repro.availability.uncertainty import (
    propagate_uptime_uncertainty,
    recommendation_confidence,
    tco_band,
)
from repro.broker.request import three_tier_request
from repro.broker.service import BrokerService
from repro.cli.formatting import render_table
from repro.cloud.providers import metalcloud
from repro.sla.contract import Contract

_CONTRACT = Contract.linear(98.0, 100.0)


def _confidence_after(years: float, seed: int) -> tuple[float, str]:
    """(confidence best beats runner-up, best label) after observation."""
    broker = BrokerService((metalcloud(),))
    broker.observe_provider("metalcloud", years=years, seed=seed)
    report = broker.recommend(three_tier_request(_CONTRACT))
    result = report.for_provider("metalcloud").result

    kb = broker.knowledge_base
    uncertainties = {
        "compute": kb.estimate("metalcloud", "vm").input_uncertainty(),
        "storage": kb.estimate("metalcloud", "volume").input_uncertainty(),
        "network": kb.estimate("metalcloud", "gateway").input_uncertainty(),
    }

    ranked = sorted(result.options, key=lambda option: option.tco.total)
    best, runner_up = ranked[0], ranked[1]

    def sigma(option):
        uncertainty = propagate_uptime_uncertainty(option.system, uncertainties)
        band = tco_band(option.tco.ha_cost, _CONTRACT, uncertainty)
        # Treat the 95% band as ±2 sigma.
        return band.spread / 4.0

    confidence = recommendation_confidence(
        best.tco.total, sigma(best), runner_up.tco.total, sigma(runner_up)
    )
    return confidence, best.label


def test_recommendation_confidence_grows_with_telemetry(benchmark, emit):
    horizons = (0.5, 2.0, 8.0, 32.0)
    seeds = (3, 5, 7)

    def sweep():
        outcome = {}
        for years in horizons:
            values = [_confidence_after(years, seed)[0] for seed in seeds]
            outcome[years] = sum(values) / len(values)
        return outcome

    mean_confidence = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (f"{years:g} yr", f"{mean_confidence[years] * 100:.1f}%")
        for years in horizons
    ]
    emit(
        "[E5b] mean confidence that the recommended option beats the "
        "runner-up (3 seeds):\n"
        + render_table(("observed horizon", "Pr[best < runner-up]"), rows)
    )

    # Confidence is always better than a coin flip and high when mature.
    for years in horizons:
        assert mean_confidence[years] >= 0.5
    assert mean_confidence[32.0] >= 0.9
    assert mean_confidence[32.0] >= mean_confidence[0.5]
