"""The simulated cloud provider: provisioning lifecycle + reliability.

A :class:`CloudProvider` behaves like a thin IaaS driver: you provision
VMs, volumes and gateways against its catalog, resources move through a
small state machine (``REQUESTED -> RUNNING -> (FAILED <-> RUNNING) ->
DELETED``), and capacity is bounded per region.  The provider also
carries its ground-truth :class:`ProviderReliability` — the ``P/f/t``
values the fault injector draws from and the broker's telemetry tries to
re-estimate (experiment E5 measures how well it converges).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cloud.instance_types import GatewayType, InstanceType, VolumeType
from repro.cloud.pricing import RateCard
from repro.errors import CloudError, ProvisioningError, ResourceNotFoundError


class ResourceState(str, enum.Enum):
    """Lifecycle states of a provisioned resource."""

    REQUESTED = "requested"
    RUNNING = "running"
    FAILED = "failed"
    DELETED = "deleted"


class ResourceKind(str, enum.Enum):
    """What a resource is (mirrors the three IaaS layers)."""

    VM = "vm"
    VOLUME = "volume"
    GATEWAY = "gateway"


@dataclass
class Resource:
    """One provisioned resource."""

    resource_id: str
    kind: ResourceKind
    sku_name: str
    region: str
    monthly_price: float
    state: ResourceState = ResourceState.REQUESTED
    tags: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        """E.g. ``vm-7 (bm.medium, dal10): running``."""
        return (
            f"{self.resource_id} ({self.sku_name}, {self.region}): "
            f"{self.state.value}"
        )


@dataclass(frozen=True)
class ProviderReliability:
    """Ground-truth reliability of a provider's component classes.

    Maps component kind (``"vm"``, ``"volume"``, ``"gateway"``) to the
    triple the paper's broker maintains: steady-state down probability
    ``P``, failures/year ``f``, and the observed failover minutes ``t``
    of the provider's native HA constructs.
    """

    down_probability: dict[str, float]
    failures_per_year: dict[str, float]
    failover_minutes: dict[str, float]

    def triple(self, kind: str) -> tuple[float, float, float]:
        """``(P, f, t)`` for a component kind."""
        try:
            return (
                self.down_probability[kind],
                self.failures_per_year[kind],
                self.failover_minutes[kind],
            )
        except KeyError as exc:
            raise CloudError(
                f"provider has no reliability data for component {kind!r}; "
                f"known: {sorted(self.down_probability)}"
            ) from exc


class CloudProvider:
    """An in-process IaaS endpoint with a catalog and capacity limits."""

    def __init__(
        self,
        name: str,
        regions: tuple[str, ...],
        rate_card: RateCard,
        reliability: ProviderReliability,
        capacity_per_region: int = 1000,
    ) -> None:
        if not name:
            raise CloudError("provider name must be non-empty")
        if not regions:
            raise CloudError(f"provider {name!r} must have at least one region")
        if capacity_per_region < 1:
            raise CloudError(
                f"capacity_per_region must be >= 1, got {capacity_per_region!r}"
            )
        self.name = name
        self.regions = regions
        self.rate_card = rate_card
        self.reliability = reliability
        self.capacity_per_region = capacity_per_region
        self._resources: dict[str, Resource] = {}
        self._ids = itertools.count(1)

    # -- provisioning -----------------------------------------------------

    def provision_vm(self, flavor: str, region: str | None = None, **tags: str) -> Resource:
        """Provision a compute instance of the named flavor."""
        sku: InstanceType = self.rate_card.instance_type(flavor)
        return self._provision(ResourceKind.VM, sku.name, sku.monthly_price, region, tags)

    def provision_volume(self, volume_type: str, region: str | None = None, **tags: str) -> Resource:
        """Provision a block-storage volume of the named SKU."""
        sku: VolumeType = self.rate_card.volume_type(volume_type)
        return self._provision(ResourceKind.VOLUME, sku.name, sku.monthly_price, region, tags)

    def provision_gateway(self, gateway_type: str, region: str | None = None, **tags: str) -> Resource:
        """Provision a network gateway of the named SKU."""
        sku: GatewayType = self.rate_card.gateway_type(gateway_type)
        return self._provision(ResourceKind.GATEWAY, sku.name, sku.monthly_price, region, tags)

    def deprovision(self, resource_id: str) -> None:
        """Delete a resource; deleting twice is an error."""
        resource = self.get(resource_id)
        if resource.state is ResourceState.DELETED:
            raise CloudError(f"resource {resource_id!r} is already deleted")
        resource.state = ResourceState.DELETED

    # -- lookups ----------------------------------------------------------

    def get(self, resource_id: str) -> Resource:
        """Fetch a resource by id (including deleted ones)."""
        try:
            return self._resources[resource_id]
        except KeyError as exc:
            raise ResourceNotFoundError(
                f"provider {self.name!r} has no resource {resource_id!r}"
            ) from exc

    def list_resources(
        self,
        kind: ResourceKind | None = None,
        state: ResourceState | None = None,
    ) -> tuple[Resource, ...]:
        """All resources, optionally filtered by kind and/or state."""
        found = []
        for resource in self._resources.values():
            if kind is not None and resource.kind is not kind:
                continue
            if state is not None and resource.state is not state:
                continue
            found.append(resource)
        return tuple(found)

    def monthly_spend(self) -> float:
        """Total monthly price of all live (non-deleted) resources."""
        return sum(
            resource.monthly_price
            for resource in self._resources.values()
            if resource.state is not ResourceState.DELETED
        )

    # -- failure injection hooks (used by FaultInjector) -------------------

    def mark_failed(self, resource_id: str) -> None:
        """Transition a running resource to FAILED."""
        resource = self.get(resource_id)
        if resource.state is not ResourceState.RUNNING:
            raise CloudError(
                f"cannot fail resource {resource_id!r} in state "
                f"{resource.state.value!r}"
            )
        resource.state = ResourceState.FAILED

    def mark_repaired(self, resource_id: str) -> None:
        """Transition a failed resource back to RUNNING."""
        resource = self.get(resource_id)
        if resource.state is not ResourceState.FAILED:
            raise CloudError(
                f"cannot repair resource {resource_id!r} in state "
                f"{resource.state.value!r}"
            )
        resource.state = ResourceState.RUNNING

    # -- internals ----------------------------------------------------------

    def _provision(
        self,
        kind: ResourceKind,
        sku_name: str,
        monthly_price: float,
        region: str | None,
        tags: dict[str, str],
    ) -> Resource:
        region = region or self.regions[0]
        if region not in self.regions:
            raise ProvisioningError(
                f"provider {self.name!r} has no region {region!r}; "
                f"available: {list(self.regions)}"
            )
        live_in_region = sum(
            1
            for resource in self._resources.values()
            if resource.region == region
            and resource.state is not ResourceState.DELETED
        )
        if live_in_region >= self.capacity_per_region:
            raise ProvisioningError(
                f"region {region!r} of provider {self.name!r} is at "
                f"capacity ({self.capacity_per_region} resources)"
            )
        resource = Resource(
            resource_id=f"{self.name}-{kind.value}-{next(self._ids)}",
            kind=kind,
            sku_name=sku_name,
            region=region,
            monthly_price=monthly_price,
            tags=dict(tags),
        )
        resource.state = ResourceState.RUNNING
        self._resources[resource.resource_id] = resource
        return resource
