"""Deploying a topology onto simulated providers.

``deploy_system`` provisions one resource per topology node on a single
provider; ``hybrid_deploy`` spreads clusters across providers (the
paper's hybrid-cloud setting).  The returned :class:`Deployment` tracks
what was provisioned where, can price itself, and tears down cleanly.

SKU selection: each cluster may name its SKU explicitly via
``cluster.metadata["sku"]``; otherwise the middle entry of the
provider's catalog for that layer is used (a deliberate, documented
default — catalogs are ordered small to large).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cloud.provider import CloudProvider, Resource, ResourceState
from repro.errors import CloudError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.system import SystemTopology


@dataclass
class Deployment:
    """A provisioned instantiation of a topology."""

    system: SystemTopology
    placements: dict[str, CloudProvider]
    resources: dict[str, list[Resource]] = field(default_factory=dict)

    @property
    def monthly_infra_cost(self) -> float:
        """Total monthly price of all live resources."""
        return sum(
            resource.monthly_price
            for cluster_resources in self.resources.values()
            for resource in cluster_resources
            if resource.state is not ResourceState.DELETED
        )

    def provider_for(self, cluster_name: str) -> CloudProvider:
        """The provider hosting a given cluster."""
        try:
            return self.placements[cluster_name]
        except KeyError as exc:
            raise CloudError(
                f"no placement recorded for cluster {cluster_name!r}"
            ) from exc

    def cluster_resources(self, cluster_name: str) -> tuple[Resource, ...]:
        """Resources provisioned for a cluster."""
        try:
            return tuple(self.resources[cluster_name])
        except KeyError as exc:
            raise CloudError(
                f"no resources recorded for cluster {cluster_name!r}"
            ) from exc

    def all_resources(self) -> tuple[Resource, ...]:
        """Every provisioned resource across all clusters."""
        return tuple(
            resource
            for cluster_resources in self.resources.values()
            for resource in cluster_resources
        )

    def teardown(self) -> int:
        """Deprovision every live resource; returns how many."""
        deleted = 0
        for cluster_name, cluster_resources in self.resources.items():
            provider = self.provider_for(cluster_name)
            for resource in cluster_resources:
                if resource.state is not ResourceState.DELETED:
                    provider.deprovision(resource.resource_id)
                    deleted += 1
        return deleted

    def describe(self) -> str:
        """Multi-line placement summary."""
        lines = [
            f"Deployment of {self.system.name!r}: "
            f"${self.monthly_infra_cost:,.2f}/month"
        ]
        for cluster in self.system.clusters:
            provider = self.provider_for(cluster.name)
            count = len(self.resources.get(cluster.name, []))
            lines.append(
                f"  {cluster.name}: {count} resources on {provider.name}"
            )
        return "\n".join(lines)


def default_sku(provider: CloudProvider, layer: Layer) -> str:
    """The middle catalog entry for a layer (catalogs go small->large)."""
    card = provider.rate_card
    if layer is Layer.COMPUTE or layer is Layer.OTHER:
        catalog = card.instance_types
    elif layer is Layer.STORAGE:
        catalog = card.volume_types
    elif layer is Layer.NETWORK:
        catalog = card.gateway_types
    else:  # pragma: no cover - exhaustive enum guard
        raise CloudError(f"unknown layer {layer!r}")
    return catalog[len(catalog) // 2].name


def _provision_cluster(
    provider: CloudProvider, cluster: ClusterSpec, region: str | None
) -> list[Resource]:
    sku = cluster.metadata.get("sku") or default_sku(provider, cluster.layer)
    resources = []
    for index in range(cluster.total_nodes):
        tags = {"cluster": cluster.name, "node_index": str(index)}
        if cluster.layer is Layer.STORAGE:
            resource = provider.provision_volume(sku, region, **tags)
        elif cluster.layer is Layer.NETWORK:
            resource = provider.provision_gateway(sku, region, **tags)
        else:
            resource = provider.provision_vm(sku, region, **tags)
        resources.append(resource)
    return resources


def deploy_system(
    system: SystemTopology,
    provider: CloudProvider,
    region: str | None = None,
) -> Deployment:
    """Provision every node of ``system`` on one provider."""
    deployment = Deployment(
        system=system,
        placements={cluster.name: provider for cluster in system.clusters},
    )
    for cluster in system.clusters:
        deployment.resources[cluster.name] = _provision_cluster(
            provider, cluster, region
        )
    return deployment


def hybrid_deploy(
    system: SystemTopology,
    placements: Mapping[str, CloudProvider],
) -> Deployment:
    """Provision each cluster on its own provider (hybrid cloud).

    ``placements`` must cover every cluster of the system.
    """
    missing = set(system.cluster_names) - set(placements)
    if missing:
        raise CloudError(
            f"placements missing for clusters: {sorted(missing)}"
        )
    deployment = Deployment(system=system, placements=dict(placements))
    for cluster in system.clusters:
        provider = placements[cluster.name]
        deployment.resources[cluster.name] = _provision_cluster(
            provider, cluster, None
        )
    return deployment
