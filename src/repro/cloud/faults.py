"""Fault injection: synthesizing the broker's observation history.

The paper's broker learns ``P_i``, ``f_i`` and ``t_i`` "by virtue of its
vantage point above clouds ... across customers spanning a long
timeline" (§II-C).  Offline we generate that timeline: the injector
replays each provider's ground-truth reliability over simulated months
or years of fleet operation, emitting the :class:`ResourceEvent` stream
a real broker would have collected from monitoring hooks.

Experiment E5 feeds these streams into
:class:`~repro.broker.telemetry.TelemetryStore` and measures how fast
the estimates converge to the ground truth.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.cloud.provider import CloudProvider, Resource
from repro.errors import CloudError
from repro.rng import make_rng
from repro.simulation.processes import NodeProcess
from repro.topology.node import NodeSpec


class FaultInjector:
    """Generates failure/repair/failover event streams for one provider."""

    def __init__(self, provider: CloudProvider, seed: int | random.Random | None = None) -> None:
        self.provider = provider
        self._rng = make_rng(seed)

    def inject(
        self,
        resources: Iterable[Resource],
        horizon_minutes: float,
        ha_protected: bool = True,
    ) -> list[ResourceEvent]:
        """Simulate ``horizon_minutes`` of operation for ``resources``.

        Every resource alternates exponential up/down periods drawn from
        the provider's ground truth for its component kind.  When
        ``ha_protected`` is true, each failure additionally produces a
        FAILOVER observation whose duration is the provider's takeover
        latency with ±20% jitter — the broker's source for ``t̂``.

        Returns the merged event stream sorted by time.
        """
        if horizon_minutes <= 0.0:
            raise CloudError(
                f"horizon_minutes must be > 0, got {horizon_minutes!r}"
            )
        events: list[ResourceEvent] = []
        for resource in resources:
            kind = resource.kind.value
            down_p, failures, failover_t = self.provider.reliability.triple(kind)
            process = NodeProcess.from_spec(
                NodeSpec(
                    kind=kind,
                    down_probability=down_p,
                    failures_per_year=failures,
                )
            )
            clock = process.sample_up_duration(self._rng)
            while clock < horizon_minutes:
                outage = process.sample_down_duration(self._rng)
                events.append(
                    ResourceEvent(
                        time_minutes=clock,
                        provider=self.provider.name,
                        component_kind=kind,
                        resource_id=resource.resource_id,
                        kind=ResourceEventKind.FAILURE,
                    )
                )
                repair_time = min(clock + outage, horizon_minutes)
                events.append(
                    ResourceEvent(
                        time_minutes=repair_time,
                        provider=self.provider.name,
                        component_kind=kind,
                        resource_id=resource.resource_id,
                        kind=ResourceEventKind.REPAIR,
                        duration_minutes=repair_time - clock,
                    )
                )
                if ha_protected:
                    jitter = self._rng.uniform(0.8, 1.2)
                    events.append(
                        ResourceEvent(
                            time_minutes=clock,
                            provider=self.provider.name,
                            component_kind=kind,
                            resource_id=resource.resource_id,
                            kind=ResourceEventKind.FAILOVER,
                            duration_minutes=failover_t * jitter,
                        )
                    )
                clock = clock + outage + process.sample_up_duration(self._rng)
        events.sort(key=lambda event: (event.time_minutes, event.resource_id, event.kind.value))
        return events
