"""The three built-in synthetic providers.

``metalcloud`` reproduces the case study's environment: its reliability
triples and HA add-on prices are exactly the calibrated case-study
numbers, so a broker estimating from metalcloud telemetry should land on
the paper's option table.  ``stratus`` (premium) and ``cumulus``
(budget) bracket it from above and below, giving the marketplace
experiments a real trade-off to explore.
"""

from __future__ import annotations

from repro.cloud.instance_types import GatewayType, InstanceType, VolumeType
from repro.cloud.pricing import RateCard
from repro.cloud.provider import CloudProvider, ProviderReliability


def metalcloud() -> CloudProvider:
    """SoftLayer-like baseline provider (the case-study environment)."""
    rate_card = RateCard(
        instance_types=(
            InstanceType("bm.small", vcpus=4, memory_gb=32.0, monthly_price=190.0),
            InstanceType("bm.medium", vcpus=8, memory_gb=64.0, monthly_price=330.0),
            InstanceType("bm.large", vcpus=16, memory_gb=128.0, monthly_price=560.0),
        ),
        volume_types=(
            VolumeType("ssd.250", size_gb=250, iops=6000, monthly_price=110.0),
            VolumeType("ssd.500", size_gb=500, iops=8000, monthly_price=170.0),
            VolumeType("ssd.1000", size_gb=1000, iops=10000, monthly_price=290.0),
        ),
        gateway_types=(
            GatewayType("gw.1g", throughput_gbps=1.0, monthly_price=190.0),
            GatewayType("gw.10g", throughput_gbps=10.0, monthly_price=420.0),
        ),
        ha_addons={
            "hypervisor-license-per-node": 12.5,
            "raid-controller": 30.0,
            "gateway-vip": 30.0,
            "bgp-circuit": 260.0,
            "sds-software": 90.0,
            "multipath-port": 45.0,
        },
        ha_labor_hours={
            "hypervisor": 4.0,
            "os-cluster": 6.0,
            "raid": 2.0,
            "sds": 5.0,
            "multipath": 1.0,
            "gateway": 2.0,
            "bgp": 3.0,
        },
        labor_rate_per_hour=30.0,
    )
    reliability = ProviderReliability(
        down_probability={"vm": 0.0025, "volume": 0.015, "gateway": 0.01425},
        failures_per_year={"vm": 6.0, "volume": 5.0, "gateway": 4.0},
        failover_minutes={"vm": 10.0, "volume": 1.0, "gateway": 2.0},
    )
    return CloudProvider(
        name="metalcloud",
        regions=("dal10", "ams01", "che01"),
        rate_card=rate_card,
        reliability=reliability,
    )


def stratus() -> CloudProvider:
    """Premium provider: ~35% pricier, roughly twice as reliable."""
    rate_card = RateCard(
        instance_types=(
            InstanceType("c.small", vcpus=4, memory_gb=32.0, monthly_price=260.0),
            InstanceType("c.medium", vcpus=8, memory_gb=64.0, monthly_price=450.0),
            InstanceType("c.large", vcpus=16, memory_gb=128.0, monthly_price=760.0),
        ),
        volume_types=(
            VolumeType("prm.250", size_gb=250, iops=12000, monthly_price=150.0),
            VolumeType("prm.500", size_gb=500, iops=16000, monthly_price=230.0),
            VolumeType("prm.1000", size_gb=1000, iops=20000, monthly_price=390.0),
        ),
        gateway_types=(
            GatewayType("edge.1g", throughput_gbps=1.0, monthly_price=260.0),
            GatewayType("edge.10g", throughput_gbps=10.0, monthly_price=540.0),
        ),
        ha_addons={
            "hypervisor-license-per-node": 18.0,
            "raid-controller": 42.0,
            "gateway-vip": 40.0,
            "bgp-circuit": 330.0,
            "sds-software": 120.0,
            "multipath-port": 60.0,
        },
        ha_labor_hours={
            "hypervisor": 3.0,
            "os-cluster": 5.0,
            "raid": 1.5,
            "sds": 4.0,
            "multipath": 1.0,
            "gateway": 1.5,
            "bgp": 2.5,
        },
        labor_rate_per_hour=38.0,
    )
    reliability = ProviderReliability(
        down_probability={"vm": 0.0012, "volume": 0.007, "gateway": 0.006},
        failures_per_year={"vm": 3.0, "volume": 2.5, "gateway": 2.0},
        failover_minutes={"vm": 6.0, "volume": 0.5, "gateway": 1.0},
    )
    return CloudProvider(
        name="stratus",
        regions=("us-east", "eu-west"),
        rate_card=rate_card,
        reliability=reliability,
    )


def cumulus() -> CloudProvider:
    """Budget provider: ~30% cheaper, noticeably flakier."""
    rate_card = RateCard(
        instance_types=(
            InstanceType("b.small", vcpus=4, memory_gb=32.0, monthly_price=130.0),
            InstanceType("b.medium", vcpus=8, memory_gb=64.0, monthly_price=230.0),
            InstanceType("b.large", vcpus=16, memory_gb=128.0, monthly_price=400.0),
        ),
        volume_types=(
            VolumeType("std.250", size_gb=250, iops=3000, monthly_price=75.0),
            VolumeType("std.500", size_gb=500, iops=4000, monthly_price=120.0),
            VolumeType("std.1000", size_gb=1000, iops=5000, monthly_price=200.0),
        ),
        gateway_types=(
            GatewayType("net.1g", throughput_gbps=1.0, monthly_price=130.0),
            GatewayType("net.10g", throughput_gbps=10.0, monthly_price=300.0),
        ),
        ha_addons={
            "hypervisor-license-per-node": 9.0,
            "raid-controller": 22.0,
            "gateway-vip": 20.0,
            "bgp-circuit": 190.0,
            "sds-software": 65.0,
            "multipath-port": 32.0,
        },
        ha_labor_hours={
            "hypervisor": 5.0,
            "os-cluster": 8.0,
            "raid": 2.5,
            "sds": 6.0,
            "multipath": 1.5,
            "gateway": 2.5,
            "bgp": 4.0,
        },
        labor_rate_per_hour=24.0,
    )
    reliability = ProviderReliability(
        down_probability={"vm": 0.005, "volume": 0.025, "gateway": 0.022},
        failures_per_year={"vm": 10.0, "volume": 8.0, "gateway": 6.0},
        failover_minutes={"vm": 15.0, "volume": 2.0, "gateway": 4.0},
    )
    return CloudProvider(
        name="cumulus",
        regions=("central-1",),
        rate_card=rate_card,
        reliability=reliability,
    )


def all_providers() -> tuple[CloudProvider, ...]:
    """Fresh instances of all three built-in providers."""
    return (metalcloud(), stratus(), cumulus())
