"""Rate cards: everything a provider charges for.

A provider's rate card covers its SKU catalogs plus the add-on prices
the HA catalog needs (licenses, RAID controllers, floating VIPs, second
circuits) and a labor-rate factor reflecting the provider's managed-
service market.  The broker reads these to build provider-specific
:class:`~repro.catalog.registry.TechnologyRegistry` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.instance_types import GatewayType, InstanceType, VolumeType
from repro.errors import CloudError


@dataclass(frozen=True)
class RateCard:
    """One provider's complete price list.

    ``ha_addons`` maps add-on keys (``"hypervisor-license-per-node"``,
    ``"raid-controller"``, ``"gateway-vip"``, ``"bgp-circuit"``,
    ``"sds-software"``, ``"multipath-port"``) to dollars/month, and
    ``ha_labor_hours`` maps technology groups (``"hypervisor"``,
    ``"raid"``, ``"gateway"``, ...) to sustainment hours/month.
    """

    instance_types: tuple[InstanceType, ...]
    volume_types: tuple[VolumeType, ...]
    gateway_types: tuple[GatewayType, ...]
    ha_addons: dict[str, float] = field(default_factory=dict)
    ha_labor_hours: dict[str, float] = field(default_factory=dict)
    labor_rate_per_hour: float = 30.0

    def instance_type(self, name: str) -> InstanceType:
        """Look up a compute flavor by name."""
        return _lookup(self.instance_types, name, "instance type")

    def volume_type(self, name: str) -> VolumeType:
        """Look up a volume SKU by name."""
        return _lookup(self.volume_types, name, "volume type")

    def gateway_type(self, name: str) -> GatewayType:
        """Look up a gateway SKU by name."""
        return _lookup(self.gateway_types, name, "gateway type")

    def addon(self, key: str, default: float | None = None) -> float:
        """Price of an HA add-on; raises unless a default is supplied."""
        if key in self.ha_addons:
            return self.ha_addons[key]
        if default is not None:
            return default
        raise CloudError(
            f"rate card has no HA addon {key!r}; "
            f"known: {sorted(self.ha_addons)}"
        )

    def labor_hours(self, group: str, default: float = 0.0) -> float:
        """Monthly sustainment hours for a technology group."""
        return self.ha_labor_hours.get(group, default)


def _lookup(catalog: tuple, name: str, what: str):
    for sku in catalog:
        if sku.name == name:
            return sku
    raise CloudError(
        f"unknown {what} {name!r}; available: {[sku.name for sku in catalog]}"
    )
