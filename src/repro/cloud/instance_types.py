"""Provider catalogs: instance, volume and gateway types.

Each type is a priced SKU; providers expose catalogs of them and the
deployment layer matches topology node kinds onto SKUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True, slots=True)
class InstanceType:
    """A compute flavor, e.g. ``bm.medium`` with 8 vCPUs / 64 GB."""

    name: str
    vcpus: int
    memory_gb: float
    monthly_price: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("InstanceType.name must be non-empty")
        if self.vcpus < 1:
            raise ValidationError(f"vcpus must be >= 1, got {self.vcpus!r}")
        if self.memory_gb <= 0.0:
            raise ValidationError(f"memory_gb must be > 0, got {self.memory_gb!r}")
        if self.monthly_price < 0.0:
            raise ValidationError(
                f"monthly_price must be >= 0, got {self.monthly_price!r}"
            )


@dataclass(frozen=True, slots=True)
class VolumeType:
    """A block-storage SKU, e.g. ``ssd.500`` — 500 GB at some IOPS."""

    name: str
    size_gb: int
    iops: int
    monthly_price: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("VolumeType.name must be non-empty")
        if self.size_gb < 1:
            raise ValidationError(f"size_gb must be >= 1, got {self.size_gb!r}")
        if self.iops < 1:
            raise ValidationError(f"iops must be >= 1, got {self.iops!r}")
        if self.monthly_price < 0.0:
            raise ValidationError(
                f"monthly_price must be >= 0, got {self.monthly_price!r}"
            )


@dataclass(frozen=True, slots=True)
class GatewayType:
    """A network gateway SKU, e.g. ``gw.1g`` — 1 Gbps throughput."""

    name: str
    throughput_gbps: float
    monthly_price: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("GatewayType.name must be non-empty")
        if self.throughput_gbps <= 0.0:
            raise ValidationError(
                f"throughput_gbps must be > 0, got {self.throughput_gbps!r}"
            )
        if self.monthly_price < 0.0:
            raise ValidationError(
                f"monthly_price must be >= 0, got {self.monthly_price!r}"
            )
