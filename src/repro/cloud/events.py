"""Resource-level events emitted by the fault injector.

These are the broker's raw observations: a component of some kind, on
some provider, failed at a time and came back after a duration — or a
cluster-level failover completed in so many minutes.  Telemetry
aggregates streams of these into ``(P̂, f̂, t̂)`` estimates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError


class ResourceEventKind(str, enum.Enum):
    """What the broker observed."""

    FAILURE = "failure"
    REPAIR = "repair"
    FAILOVER = "failover"


@dataclass(frozen=True, slots=True)
class ResourceEvent:
    """One observation in a provider's event stream.

    ``duration_minutes`` carries the outage length for ``REPAIR`` events
    (time the component was down) and the takeover latency for
    ``FAILOVER`` events; it is 0 for ``FAILURE`` events (the repair
    event closes the outage).
    """

    time_minutes: float
    provider: str
    component_kind: str
    resource_id: str
    kind: ResourceEventKind
    duration_minutes: float = 0.0

    def __post_init__(self) -> None:
        if self.time_minutes < 0.0:
            raise ValidationError(
                f"time_minutes must be >= 0, got {self.time_minutes!r}"
            )
        if self.duration_minutes < 0.0:
            raise ValidationError(
                f"duration_minutes must be >= 0, got {self.duration_minutes!r}"
            )

    def describe(self) -> str:
        """E.g. ``[t=41.2m] metalcloud volume failure vol-3``."""
        extra = (
            f" ({self.duration_minutes:.1f}m)" if self.duration_minutes else ""
        )
        return (
            f"[t={self.time_minutes:.1f}m] {self.provider} "
            f"{self.component_kind} {self.kind.value} {self.resource_id}{extra}"
        )
