"""Simulated multi-provider IaaS substrate.

The paper's framework runs inside a *hybrid cloud broker*: an entity
that provisions onto several clouds and observes their reliability and
prices.  With no live clouds available offline, this package provides an
in-process substitute with the same shape a libcloud/boto driver would
have: providers with instance catalogs and rate cards, a provisioning
lifecycle, deployments of topologies onto providers, and a fault
injector that generates the failure events the broker's telemetry
consumes (DESIGN.md §2 documents the substitution).

Three synthetic providers ship built in:

- ``metalcloud`` — bare-metal heavy, modeled on the case study's
  SoftLayer environment (baseline prices and reliability);
- ``stratus``   — premium: pricier, more reliable, faster failover;
- ``cumulus``   — budget: cheaper, less reliable, slower recovery.
"""

from repro.cloud.deployment import Deployment, deploy_system, hybrid_deploy
from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.cloud.faults import FaultInjector
from repro.cloud.instance_types import GatewayType, InstanceType, VolumeType
from repro.cloud.pricing import RateCard
from repro.cloud.provider import CloudProvider, ProviderReliability, Resource, ResourceState
from repro.cloud.providers import all_providers, cumulus, metalcloud, stratus

__all__ = [
    "CloudProvider",
    "Deployment",
    "FaultInjector",
    "GatewayType",
    "InstanceType",
    "ProviderReliability",
    "RateCard",
    "Resource",
    "ResourceEvent",
    "ResourceEventKind",
    "ResourceState",
    "VolumeType",
    "all_providers",
    "cumulus",
    "deploy_system",
    "hybrid_deploy",
    "metalcloud",
    "stratus",
]
