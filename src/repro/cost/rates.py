"""Labor rates used to price HA sustainment effort.

The paper's case study prices labor at $30/hour.  Clusters carry labor
*hours*; the rate converts hours to dollars so that the same topology can
be priced in different labor markets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True, slots=True)
class LaborRate:
    """Hourly labor rate in dollars."""

    dollars_per_hour: float

    def __post_init__(self) -> None:
        if self.dollars_per_hour < 0.0:
            raise ValidationError(
                f"dollars_per_hour must be >= 0, got {self.dollars_per_hour!r}"
            )

    def monthly_cost(self, hours_per_month: float) -> float:
        """Dollars/month for the given monthly labor hours."""
        if hours_per_month < 0.0:
            raise ValidationError(
                f"hours_per_month must be >= 0, got {hours_per_month!r}"
            )
        return self.dollars_per_hour * hours_per_month

    def monthly_cost_vector(self, hours_per_month):
        """Vectorized :meth:`monthly_cost` over a float64 hours array."""
        if hours_per_month.size and bool((hours_per_month < 0.0).any()):
            worst = float(hours_per_month.min())
            raise ValidationError(
                f"hours_per_month must be >= 0, got {worst!r}"
            )
        return self.dollars_per_hour * hours_per_month

    def describe(self) -> str:
        """E.g. ``$30.00/hour labor``."""
        return f"${self.dollars_per_hour:,.2f}/hour labor"


#: The paper's case-study labor rate.
CASE_STUDY_LABOR_RATE = LaborRate(30.0)
