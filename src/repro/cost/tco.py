"""Total cost of ownership (paper Eq. 5).

    TCO_i = C_HA + max(0, (U_SLA/100 - U_s)) * delta/(12*60) * S_P

where ``C_HA`` is the monthly cost to implement and sustain the HA
construct (infrastructure + labor) and the second term is the expected
monthly slippage penalty.  :class:`TCOBreakdown` keeps the components
itemized so reports can show *why* an option costs what it does.

Like the availability model, Eq. 5 decomposes into per-cluster terms
(HA infrastructure dollars, HA labor hours, base node dollars) summed
over the chain.  :func:`cluster_cost_terms` extracts one cluster's
share and :func:`tco_from_terms` recombines cached shares — the float
operations match :func:`compute_tco` exactly, so the optimizer's
evaluation engine can price candidates from per-(cluster, technology)
caches with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.model import evaluate_availability
from repro.cost.rates import LaborRate
from repro.sla.contract import Contract
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology
from repro.units import format_money


@dataclass(frozen=True)
class TCOBreakdown:
    """Itemized monthly cost of one HA-enabled system option.

    Attributes
    ----------
    ha_infra_cost:
        Incremental HA infrastructure dollars/month (extra nodes,
        licenses, replication links) summed over clusters.
    ha_labor_cost:
        HA sustainment labor dollars/month.
    expected_penalty:
        Expected SLA slippage penalty dollars/month (0 when the SLA is
        met in expectation).
    base_infra_cost:
        Dollars/month for the base (pre-HA) node fleet.  Recorded for
        completeness; *not* part of Eq. 5's TCO, which compares HA
        deltas over a fixed base architecture.
    uptime_probability:
        The ``U_s`` used to price the penalty.
    slippage_hours:
        Expected monthly slippage hours behind ``expected_penalty``.
    """

    ha_infra_cost: float
    ha_labor_cost: float
    expected_penalty: float
    base_infra_cost: float
    uptime_probability: float
    slippage_hours: float

    @property
    def ha_cost(self) -> float:
        """``C_HA``: infrastructure plus labor, dollars/month."""
        return self.ha_infra_cost + self.ha_labor_cost

    @property
    def total(self) -> float:
        """Eq. 5 TCO: ``C_HA`` plus expected penalty, dollars/month."""
        return self.ha_cost + self.expected_penalty

    @property
    def total_with_base(self) -> float:
        """TCO including the base node fleet (for absolute budgeting)."""
        return self.total + self.base_infra_cost

    def describe(self) -> str:
        """One-line summary used in option tables."""
        return (
            f"C_HA={format_money(self.ha_cost)} "
            f"(infra {format_money(self.ha_infra_cost)} + "
            f"labor {format_money(self.ha_labor_cost)}), "
            f"penalty={format_money(self.expected_penalty)}, "
            f"TCO={format_money(self.total)}"
        )


def monthly_ha_cost(system: SystemTopology, labor_rate: LaborRate) -> tuple[float, float]:
    """Return ``(infra, labor)`` dollars/month of the system's HA.

    Sums each cluster's incremental HA infrastructure cost and prices
    its sustainment hours at ``labor_rate``.
    """
    infra = sum(cluster.monthly_ha_infra_cost for cluster in system.clusters)
    labor_hours = sum(cluster.monthly_ha_labor_hours for cluster in system.clusters)
    return infra, labor_rate.monthly_cost(labor_hours)


@dataclass(frozen=True, slots=True)
class ClusterCostTerms:
    """One cluster's share of the Eq. 5 cost decomposition."""

    ha_infra_cost: float
    ha_labor_hours: float
    base_infra_cost: float


def cluster_cost_terms(cluster: ClusterSpec) -> ClusterCostTerms:
    """Extract one cluster's cost factors (cacheable per spec).

    Coerced to ``float`` at this single construction point: cluster
    specs built with int dollar amounts would otherwise flow int
    arithmetic through the scalar paths while the vector evaluation
    backend's float64 columns produce floats — breaking the backends'
    bit-identity contract on the way out.
    """
    return ClusterCostTerms(
        ha_infra_cost=float(cluster.monthly_ha_infra_cost),
        ha_labor_hours=float(cluster.monthly_ha_labor_hours),
        base_infra_cost=float(cluster.monthly_node_cost),
    )


def tco_values_from_terms(
    terms: tuple[ClusterCostTerms, ...],
    uptime_probability: float,
    contract: Contract,
    labor_rate: LaborRate,
) -> tuple[float, float, float, float, float, float]:
    """The bare Eq. 5 float math, as :class:`TCOBreakdown` field values.

    Returns the breakdown's six fields in declaration order, so
    ``TCOBreakdown(*values)`` reconstructs it exactly.  Split out so
    evaluation-backend workers can ship plain floats across the process
    boundary; :func:`tco_from_terms` composes the two, keeping every
    path bit-identical.
    """
    slippage_hours = contract.expected_slippage_hours(uptime_probability)
    penalty = contract.penalty.monthly_penalty(slippage_hours)
    infra = sum(term.ha_infra_cost for term in terms)
    labor_hours = sum(term.ha_labor_hours for term in terms)
    return (
        infra,
        labor_rate.monthly_cost(labor_hours),
        penalty,
        sum(term.base_infra_cost for term in terms),
        uptime_probability,
        slippage_hours,
    )


def tco_from_terms(
    terms: tuple[ClusterCostTerms, ...],
    uptime_probability: float,
    contract: Contract,
    labor_rate: LaborRate,
) -> TCOBreakdown:
    """Price Eq. 5 from cached per-cluster cost terms and a known uptime.

    Sums the per-cluster shares in chain order — the same operations
    :func:`compute_tco` performs on the assembled topology, so results
    are bit-identical.
    """
    return TCOBreakdown(
        *tco_values_from_terms(terms, uptime_probability, contract, labor_rate)
    )


def assemble_breakdown(
    values: tuple[float, float, float, float, float, float],
) -> TCOBreakdown:
    """Hot-path ``TCOBreakdown(*values)`` for sweep evaluation.

    The frozen ``__init__`` routes each of the six fields through
    ``object.__setattr__``; candidate sweeps build one breakdown per
    evaluated option, so this assembles the instance dict directly —
    same stored state, same eq/hash/repr, one C call instead of six.
    ``values`` must be in field declaration order, exactly as
    :func:`tco_values_from_terms` returns them.
    """
    tco = object.__new__(TCOBreakdown)
    store = tco.__dict__
    (
        store["ha_infra_cost"],
        store["ha_labor_cost"],
        store["expected_penalty"],
        store["base_infra_cost"],
        store["uptime_probability"],
        store["slippage_hours"],
    ) = values
    return tco


def compute_tco(
    system: SystemTopology,
    contract: Contract,
    labor_rate: LaborRate,
) -> TCOBreakdown:
    """Evaluate Eq. 5 for one candidate system.

    Runs the availability model (Eq. 1-4), converts the uptime shortfall
    into expected slippage hours, prices them with the contract's penalty
    clause, and returns the itemized breakdown.
    """
    report = evaluate_availability(system)
    terms = tuple(cluster_cost_terms(cluster) for cluster in system.clusters)
    return tco_from_terms(terms, report.uptime_probability, contract, labor_rate)
