"""Cost model: ``C_HA`` decomposition and Eq. 5 TCO.

``C_HA`` is the monthly cost of engineering and sustaining HA —
incremental infrastructure plus labor.  The TCO of a candidate option
adds the expected slippage penalty from the contract.
"""

from repro.cost.rates import LaborRate
from repro.cost.tco import TCOBreakdown, compute_tco, monthly_ha_cost

__all__ = [
    "LaborRate",
    "TCOBreakdown",
    "compute_tco",
    "monthly_ha_cost",
]
