"""Cluster specification: ``K_i`` nodes with k-redundancy.

A cluster ``C_i`` in the paper's model (§II-A) is described by:

- ``K_i`` — total nodes (``total_nodes``);
- ``K̂_i`` — maximum simultaneous node failures the HA infrastructure can
  tolerate (``standby_tolerance``); ``K_i - K̂_i`` nodes are active;
- ``t_i`` — failover time in minutes (``failover_minutes``): detection +
  standby bring-up + takeover;
- the node class, and the incremental cost of the HA machinery.

A cluster with ``standby_tolerance == 0`` has *no* HA: any node failure is
a breakdown, there are no failover events, so ``failover_minutes`` must be
zero (this encodes the model semantics fixed in DESIGN.md §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ValidationError
from repro.topology.node import NodeSpec


class Layer(str, enum.Enum):
    """Architectural layer a cluster belongs to.

    The paper's case study uses the three classic IaaS layers; ``OTHER``
    accommodates middleware/application tiers in extended scenarios.
    """

    COMPUTE = "compute"
    STORAGE = "storage"
    NETWORK = "network"
    OTHER = "other"


#: The broker's component-kind vocabulary per layer (used to key
#: telemetry: compute nodes are "vm"s, storage nodes "volume"s, ...).
COMPONENT_KIND_BY_LAYER = {
    Layer.COMPUTE: "vm",
    Layer.STORAGE: "volume",
    Layer.NETWORK: "gateway",
    Layer.OTHER: "vm",
}


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """One cluster in the serial chain.

    Parameters
    ----------
    name:
        Unique name within the system, e.g. ``"compute"``.
    layer:
        Which architectural layer this cluster implements.
    node:
        The node class all ``total_nodes`` members share.
    total_nodes:
        ``K_i`` (>= 1).
    standby_tolerance:
        ``K̂_i`` — tolerated simultaneous node failures (0 <= K̂ < K).
    failover_minutes:
        ``t_i`` — outage minutes per failover transaction.  Must be 0
        when ``standby_tolerance`` is 0 (no HA, no failover).
    ha_technology:
        Informational label of the HA construct (``"none"``,
        ``"vmware-esx-n+1"``, ``"raid-1"``, ...).
    monthly_ha_infra_cost:
        Incremental infrastructure dollars/month to engineer the HA
        (extra nodes, licenses, replication links).
    monthly_ha_labor_hours:
        Labor hours/month to deploy and sustain the HA; priced by the
        cost model using a labor rate.
    """

    name: str
    layer: Layer
    node: NodeSpec
    total_nodes: int
    standby_tolerance: int = 0
    failover_minutes: float = 0.0
    ha_technology: str = "none"
    monthly_ha_infra_cost: float = 0.0
    monthly_ha_labor_hours: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("ClusterSpec.name must be a non-empty string")
        if not isinstance(self.layer, Layer):
            raise ValidationError(f"layer must be a Layer, got {self.layer!r}")
        if self.total_nodes < 1:
            raise ValidationError(
                f"total_nodes must be >= 1, got {self.total_nodes!r}"
            )
        if not 0 <= self.standby_tolerance < self.total_nodes:
            raise ValidationError(
                "standby_tolerance must satisfy 0 <= K-hat < K, got "
                f"K-hat={self.standby_tolerance!r} with K={self.total_nodes!r}"
            )
        if self.failover_minutes < 0.0:
            raise ValidationError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )
        if self.standby_tolerance == 0 and self.failover_minutes != 0.0:
            raise ValidationError(
                f"cluster {self.name!r} has no standby (K-hat=0) so it cannot "
                "have a failover time; set failover_minutes=0"
            )
        if self.monthly_ha_infra_cost < 0.0:
            raise ValidationError(
                f"monthly_ha_infra_cost must be >= 0, got {self.monthly_ha_infra_cost!r}"
            )
        if self.monthly_ha_labor_hours < 0.0:
            raise ValidationError(
                f"monthly_ha_labor_hours must be >= 0, got {self.monthly_ha_labor_hours!r}"
            )

    @property
    def active_nodes(self) -> int:
        """``K_i - K̂_i``: nodes serving traffic at any instant."""
        return self.total_nodes - self.standby_tolerance

    @property
    def has_ha(self) -> bool:
        """True when the cluster tolerates at least one node failure."""
        return self.standby_tolerance > 0

    @property
    def monthly_node_cost(self) -> float:
        """Base infrastructure dollars/month for all ``K_i`` nodes."""
        return self.total_nodes * self.node.monthly_cost

    def describe(self) -> str:
        """One-line human description, e.g. ``compute: 3+1 vmware-esx``."""
        shape = f"{self.active_nodes}+{self.standby_tolerance}"
        return f"{self.name}: {shape} {self.ha_technology}"

    def with_ha(
        self,
        standby_tolerance: int,
        failover_minutes: float,
        ha_technology: str,
        monthly_ha_infra_cost: float = 0.0,
        monthly_ha_labor_hours: float = 0.0,
        extra_nodes: int = 0,
    ) -> "ClusterSpec":
        """Return a copy with an HA construct applied.

        ``extra_nodes`` adds standby hardware on top of the current node
        count (e.g. turning a 3-node active set into a 3+1 cluster).
        """
        return replace(
            self,
            total_nodes=self.total_nodes + extra_nodes,
            standby_tolerance=standby_tolerance,
            failover_minutes=failover_minutes,
            ha_technology=ha_technology,
            monthly_ha_infra_cost=monthly_ha_infra_cost,
            monthly_ha_labor_hours=monthly_ha_labor_hours,
        )

    def without_ha(self) -> "ClusterSpec":
        """Return the bare (no-HA) version keeping only the active nodes."""
        return replace(
            self,
            total_nodes=self.active_nodes,
            standby_tolerance=0,
            failover_minutes=0.0,
            ha_technology="none",
            monthly_ha_infra_cost=0.0,
            monthly_ha_labor_hours=0.0,
        )
