"""Fluent builder for :class:`~repro.topology.system.SystemTopology`.

The builder exists for the common case — assembling a serial chain layer
by layer — without forcing callers through nested dataclass constructors:

>>> from repro.topology import TopologyBuilder, NodeSpec
>>> system = (
...     TopologyBuilder("three-tier")
...     .compute("compute", NodeSpec("host", 0.004, 6.0, 400.0), nodes=3)
...     .storage("storage", NodeSpec("disk", 0.01, 4.0, 120.0), nodes=1)
...     .network("network", NodeSpec("gateway", 0.005, 3.0, 150.0), nodes=1)
...     .build()
... )
>>> len(system)
3
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology


class TopologyBuilder:
    """Accumulates clusters and produces an immutable topology.

    Each ``add_*`` method appends a *bare* (no-HA) cluster by default;
    pass ``standby_tolerance``/``failover_minutes`` to start from an
    HA-enabled configuration instead.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise TopologyError("topology name must be a non-empty string")
        self._name = name
        self._clusters: list[ClusterSpec] = []

    def add_cluster(
        self,
        name: str,
        layer: Layer,
        node: NodeSpec,
        nodes: int,
        standby_tolerance: int = 0,
        failover_minutes: float = 0.0,
        ha_technology: str = "none",
        monthly_ha_infra_cost: float = 0.0,
        monthly_ha_labor_hours: float = 0.0,
    ) -> "TopologyBuilder":
        """Append a cluster to the serial chain; returns ``self``."""
        self._clusters.append(
            ClusterSpec(
                name=name,
                layer=layer,
                node=node,
                total_nodes=nodes,
                standby_tolerance=standby_tolerance,
                failover_minutes=failover_minutes,
                ha_technology=ha_technology,
                monthly_ha_infra_cost=monthly_ha_infra_cost,
                monthly_ha_labor_hours=monthly_ha_labor_hours,
            )
        )
        return self

    def compute(self, name: str, node: NodeSpec, nodes: int, **kwargs) -> "TopologyBuilder":
        """Append a compute-layer cluster."""
        return self.add_cluster(name, Layer.COMPUTE, node, nodes, **kwargs)

    def storage(self, name: str, node: NodeSpec, nodes: int, **kwargs) -> "TopologyBuilder":
        """Append a storage-layer cluster."""
        return self.add_cluster(name, Layer.STORAGE, node, nodes, **kwargs)

    def network(self, name: str, node: NodeSpec, nodes: int, **kwargs) -> "TopologyBuilder":
        """Append a network-layer cluster."""
        return self.add_cluster(name, Layer.NETWORK, node, nodes, **kwargs)

    def other(self, name: str, node: NodeSpec, nodes: int, **kwargs) -> "TopologyBuilder":
        """Append a cluster outside the three classic IaaS layers."""
        return self.add_cluster(name, Layer.OTHER, node, nodes, **kwargs)

    def build(self) -> SystemTopology:
        """Produce the immutable :class:`SystemTopology`."""
        return SystemTopology(name=self._name, clusters=tuple(self._clusters))
