"""Node specification: the per-node reliability and cost inputs.

The availability model consumes two reliability numbers per node class:

- ``down_probability`` — the paper's ``P_i``: steady-state probability
  that a node is down, i.e. ``MTTR / (MTBF + MTTR)``.
- ``failures_per_year`` — the paper's ``f_i``: average failures one node
  experiences per year, i.e. one failure per ``MTBF + MTTR`` cycle.

These can be supplied directly (as a broker would, from telemetry) or
derived from MTBF/MTTR via :meth:`NodeSpec.from_mtbf_mttr`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError
from repro.units import HOURS_PER_YEAR


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """One node class inside a cluster.

    Parameters
    ----------
    kind:
        Human-readable component class, e.g. ``"esx-host"`` or
        ``"sata-disk"``.  Used by the broker's knowledge base as the key
        for telemetry lookups.
    down_probability:
        ``P_i`` — steady-state probability the node is down (0 <= P < 1).
    failures_per_year:
        ``f_i`` — expected failures per node per year (>= 0).
    monthly_cost:
        Infrastructure price of one node per month, in dollars.  The
        *base* deployment cost; HA cost deltas live on the cluster.
    """

    kind: str
    down_probability: float
    failures_per_year: float
    monthly_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValidationError("NodeSpec.kind must be a non-empty string")
        if not 0.0 <= self.down_probability < 1.0:
            raise ValidationError(
                f"down_probability must be in [0, 1), got {self.down_probability!r}"
            )
        if self.failures_per_year < 0.0:
            raise ValidationError(
                f"failures_per_year must be >= 0, got {self.failures_per_year!r}"
            )
        if self.monthly_cost < 0.0:
            raise ValidationError(
                f"monthly_cost must be >= 0, got {self.monthly_cost!r}"
            )

    @classmethod
    def from_mtbf_mttr(
        cls,
        kind: str,
        mtbf_hours: float,
        mttr_hours: float,
        monthly_cost: float = 0.0,
    ) -> "NodeSpec":
        """Build a spec from mean-time-between-failures / -to-repair.

        ``P = MTTR / (MTBF + MTTR)`` and ``f = hours-per-year / (MTBF +
        MTTR)`` (one failure per full up/down cycle).
        """
        if mtbf_hours <= 0.0:
            raise ValidationError(f"mtbf_hours must be > 0, got {mtbf_hours!r}")
        if mttr_hours < 0.0:
            raise ValidationError(f"mttr_hours must be >= 0, got {mttr_hours!r}")
        cycle = mtbf_hours + mttr_hours
        return cls(
            kind=kind,
            down_probability=mttr_hours / cycle,
            failures_per_year=HOURS_PER_YEAR / cycle,
            monthly_cost=monthly_cost,
        )

    @property
    def up_probability(self) -> float:
        """``1 - P_i``: steady-state probability the node is up."""
        return 1.0 - self.down_probability

    @property
    def mtbf_hours(self) -> float:
        """Implied MTBF in hours (infinite if the node never fails)."""
        if self.failures_per_year == 0.0:
            return float("inf")
        cycle = HOURS_PER_YEAR / self.failures_per_year
        return cycle * (1.0 - self.down_probability)

    @property
    def mttr_hours(self) -> float:
        """Implied MTTR in hours (0 if the node never fails)."""
        if self.failures_per_year == 0.0:
            return 0.0
        cycle = HOURS_PER_YEAR / self.failures_per_year
        return cycle * self.down_probability

    def with_cost(self, monthly_cost: float) -> "NodeSpec":
        """Return a copy priced at ``monthly_cost`` dollars per month."""
        return replace(self, monthly_cost=monthly_cost)
