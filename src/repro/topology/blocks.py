"""Reliability block diagrams: composition beyond the serial chain.

The paper models a system as a *serial* combination of clusters
(Figure 1).  Real architectures also contain parallel paths — an
active/active pair of middleware stacks, dual independent network
spines — where the system survives as long as *one* branch is up.
This module adds the standard reliability-block-diagram (RBD) algebra:

- :class:`ClusterBlock` — a leaf wrapping one cluster;
- :class:`SerialBlock` — up iff *every* child is up (the paper's chain);
- :class:`ParallelBlock` — up iff *any* child is up.

Blocks compose arbitrarily.  The availability math lives in
:mod:`repro.availability.rbd`; a plain chain converts via
:func:`system_to_block` and evaluates to exactly the paper's
``1 - B_s`` (verified by property tests).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

from repro.errors import TopologyError
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology


class Block(abc.ABC):
    """One node of a reliability block diagram."""

    @abc.abstractmethod
    def iter_clusters(self) -> Iterator[ClusterSpec]:
        """Yield every leaf cluster in the diagram (depth first)."""

    @abc.abstractmethod
    def describe(self, indent: int = 0) -> str:
        """Indented tree rendering."""

    def cluster_names(self) -> tuple[str, ...]:
        """Names of all leaf clusters, depth first."""
        return tuple(cluster.name for cluster in self.iter_clusters())

    def validate_unique_names(self) -> None:
        """Reject diagrams reusing a cluster name in two leaves."""
        names = list(self.cluster_names())
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise TopologyError(
                f"block diagram reuses cluster names: {sorted(duplicates)}"
            )


@dataclass(frozen=True)
class ClusterBlock(Block):
    """A leaf: one k-redundant cluster."""

    cluster: ClusterSpec

    def iter_clusters(self) -> Iterator[ClusterSpec]:
        yield self.cluster

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"- {self.cluster.describe()}"


@dataclass(frozen=True)
class SerialBlock(Block):
    """Up iff every child is up (the paper's serial combination)."""

    children: tuple[Block, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 1:
            raise TopologyError("SerialBlock needs at least one child")

    def iter_clusters(self) -> Iterator[ClusterSpec]:
        for child in self.children:
            yield from child.iter_clusters()

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "serial:"]
        lines.extend(child.describe(indent + 2) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class ParallelBlock(Block):
    """Up iff at least one child is up (redundant branches).

    Branches are assumed to fail independently — the same assumption
    Eq. 2 makes for nodes; the zone-outage ablation (A2) quantifies the
    cost of that assumption when it breaks.
    """

    children: tuple[Block, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise TopologyError(
                "ParallelBlock needs at least two children; a single "
                "branch is just that branch"
            )

    def iter_clusters(self) -> Iterator[ClusterSpec]:
        for child in self.children:
            yield from child.iter_clusters()

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + "parallel:"]
        lines.extend(child.describe(indent + 2) for child in self.children)
        return "\n".join(lines)


def serial(*children: Block) -> SerialBlock:
    """Convenience constructor: ``serial(a, b, c)``."""
    return SerialBlock(children=tuple(children))


def parallel(*children: Block) -> ParallelBlock:
    """Convenience constructor: ``parallel(a, b)``."""
    return ParallelBlock(children=tuple(children))


def leaf(cluster: ClusterSpec) -> ClusterBlock:
    """Convenience constructor for a leaf block."""
    return ClusterBlock(cluster=cluster)


def system_to_block(system: SystemTopology) -> SerialBlock:
    """The paper's chain as an RBD: a serial block of leaves."""
    return SerialBlock(
        children=tuple(ClusterBlock(cluster) for cluster in system.clusters)
    )
