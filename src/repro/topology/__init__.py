"""System topology substrate.

The paper models a cloud-hosted system ``S`` as a *serial combination* of
``n`` clusters, each built from identical nodes with k-redundancy
(Figure 1).  This package provides the value objects for that model:

- :class:`~repro.topology.node.NodeSpec` — a node class with its
  steady-state down probability ``P_i``, failure rate ``f_i`` and cost.
- :class:`~repro.topology.cluster.ClusterSpec` — ``K_i`` nodes of one
  class, tolerating up to ``K̂_i`` failures with failover time ``t_i``.
- :class:`~repro.topology.system.SystemTopology` — the serial chain.
- :class:`~repro.topology.builder.TopologyBuilder` — fluent construction.
- :mod:`~repro.topology.serialization` — dict/JSON round-tripping.
"""

from repro.topology.blocks import (
    Block,
    ClusterBlock,
    ParallelBlock,
    SerialBlock,
    leaf,
    parallel,
    serial,
    system_to_block,
)
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.serialization import (
    system_from_dict,
    system_from_json,
    system_to_dict,
    system_to_json,
)
from repro.topology.system import SystemTopology

__all__ = [
    "Block",
    "ClusterBlock",
    "ClusterSpec",
    "Layer",
    "NodeSpec",
    "ParallelBlock",
    "SerialBlock",
    "SystemTopology",
    "TopologyBuilder",
    "leaf",
    "parallel",
    "serial",
    "system_to_block",
    "system_from_dict",
    "system_from_json",
    "system_to_dict",
    "system_to_json",
]
