"""System topology: the serial combination of clusters (paper Figure 1).

The system is up only when *every* cluster is up; it is additionally down
during any single cluster's failover window.  This module holds only the
structure — the math lives in :mod:`repro.availability`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.errors import TopologyError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True, slots=True)
class SystemTopology:
    """A cloud-hosted system ``S``: an ordered serial chain of clusters.

    Cluster order is preserved for presentation but has no effect on the
    availability math (serial composition is commutative).
    """

    name: str
    clusters: tuple[ClusterSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("SystemTopology.name must be a non-empty string")
        if not self.clusters:
            raise TopologyError(
                f"system {self.name!r} must contain at least one cluster"
            )
        names = [cluster.name for cluster in self.clusters]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise TopologyError(
                f"system {self.name!r} has duplicate cluster names: "
                f"{sorted(duplicates)}"
            )

    def __iter__(self) -> Iterator[ClusterSpec]:
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def cluster_names(self) -> tuple[str, ...]:
        """Cluster names in chain order."""
        return tuple(cluster.name for cluster in self.clusters)

    def cluster(self, name: str) -> ClusterSpec:
        """Look up a cluster by name.

        Raises :class:`TopologyError` when absent — a misspelt cluster
        name is a caller bug we want to surface loudly.
        """
        for candidate in self.clusters:
            if candidate.name == name:
                return candidate
        raise TopologyError(
            f"system {self.name!r} has no cluster named {name!r}; "
            f"available: {list(self.cluster_names)}"
        )

    def clusters_in_layer(self, layer: Layer) -> tuple[ClusterSpec, ...]:
        """All clusters implementing the given architectural layer."""
        return tuple(c for c in self.clusters if c.layer is layer)

    def replace_cluster(self, name: str, new_cluster: ClusterSpec) -> "SystemTopology":
        """Return a copy with the named cluster swapped out.

        The replacement may change the cluster's name; uniqueness is
        re-validated by the constructor.
        """
        self.cluster(name)  # raise early if absent
        new_clusters = tuple(
            new_cluster if candidate.name == name else candidate
            for candidate in self.clusters
        )
        return replace(self, clusters=new_clusters)

    def with_clusters(self, mapping: Mapping[str, ClusterSpec]) -> "SystemTopology":
        """Return a copy with several clusters swapped at once."""
        topology = self
        for name, new_cluster in mapping.items():
            topology = topology.replace_cluster(name, new_cluster)
        return topology

    def strip_ha(self) -> "SystemTopology":
        """Return the *base architecture*: every cluster without HA.

        This is the starting point the broker enumerates HA variants of.
        """
        return replace(
            self,
            clusters=tuple(cluster.without_ha() for cluster in self.clusters),
        )

    @property
    def monthly_base_infra_cost(self) -> float:
        """Dollars/month for all nodes, before HA labor/infra deltas."""
        return sum(cluster.monthly_node_cost for cluster in self.clusters)

    @property
    def ha_signature(self) -> tuple[str, ...]:
        """The HA technology applied per cluster, in chain order.

        Two topologies with equal signatures over the same base
        architecture are the same "solution option" in paper terms.
        """
        return tuple(cluster.ha_technology for cluster in self.clusters)

    def describe(self) -> str:
        """Multi-line human description of the chain."""
        lines = [f"System {self.name!r} ({len(self.clusters)} serial clusters):"]
        lines.extend(f"  - {cluster.describe()}" for cluster in self.clusters)
        return "\n".join(lines)
