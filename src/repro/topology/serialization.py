"""Dict/JSON (de)serialization for topology objects.

Used by the CLI to load base architectures from files, and by the broker
to persist recommendation requests.  The wire format is intentionally
flat and versioned so future schema changes can migrate old documents.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec, Layer
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology

#: Current wire-format version.
SCHEMA_VERSION = 1


def node_to_dict(node: NodeSpec) -> dict[str, Any]:
    """Serialize a node spec to plain JSON-safe types."""
    return {
        "kind": node.kind,
        "down_probability": node.down_probability,
        "failures_per_year": node.failures_per_year,
        "monthly_cost": node.monthly_cost,
    }


def node_from_dict(payload: Mapping[str, Any]) -> NodeSpec:
    """Deserialize a node spec; unknown keys are rejected."""
    _check_keys(payload, {"kind", "down_probability", "failures_per_year", "monthly_cost"}, "node")
    return NodeSpec(
        kind=payload["kind"],
        down_probability=float(payload["down_probability"]),
        failures_per_year=float(payload["failures_per_year"]),
        monthly_cost=float(payload.get("monthly_cost", 0.0)),
    )


def cluster_to_dict(cluster: ClusterSpec) -> dict[str, Any]:
    """Serialize a cluster spec to plain JSON-safe types."""
    return {
        "name": cluster.name,
        "layer": cluster.layer.value,
        "node": node_to_dict(cluster.node),
        "total_nodes": cluster.total_nodes,
        "standby_tolerance": cluster.standby_tolerance,
        "failover_minutes": cluster.failover_minutes,
        "ha_technology": cluster.ha_technology,
        "monthly_ha_infra_cost": cluster.monthly_ha_infra_cost,
        "monthly_ha_labor_hours": cluster.monthly_ha_labor_hours,
    }


def cluster_from_dict(payload: Mapping[str, Any]) -> ClusterSpec:
    """Deserialize a cluster spec; unknown keys are rejected."""
    allowed = {
        "name",
        "layer",
        "node",
        "total_nodes",
        "standby_tolerance",
        "failover_minutes",
        "ha_technology",
        "monthly_ha_infra_cost",
        "monthly_ha_labor_hours",
    }
    _check_keys(payload, allowed, "cluster")
    try:
        layer = Layer(payload["layer"])
    except ValueError as exc:
        raise ValidationError(
            f"unknown layer {payload['layer']!r}; expected one of "
            f"{[member.value for member in Layer]}"
        ) from exc
    return ClusterSpec(
        name=payload["name"],
        layer=layer,
        node=node_from_dict(payload["node"]),
        total_nodes=int(payload["total_nodes"]),
        standby_tolerance=int(payload.get("standby_tolerance", 0)),
        failover_minutes=float(payload.get("failover_minutes", 0.0)),
        ha_technology=payload.get("ha_technology", "none"),
        monthly_ha_infra_cost=float(payload.get("monthly_ha_infra_cost", 0.0)),
        monthly_ha_labor_hours=float(payload.get("monthly_ha_labor_hours", 0.0)),
    )


def system_to_dict(system: SystemTopology) -> dict[str, Any]:
    """Serialize a topology, embedding the schema version."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": system.name,
        "clusters": [cluster_to_dict(cluster) for cluster in system.clusters],
    }


def system_from_dict(payload: Mapping[str, Any]) -> SystemTopology:
    """Deserialize a topology; validates the schema version."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported topology schema_version {version!r}; "
            f"this library reads version {SCHEMA_VERSION}"
        )
    _check_keys(payload, {"schema_version", "name", "clusters"}, "system")
    clusters = tuple(cluster_from_dict(item) for item in payload["clusters"])
    return SystemTopology(name=payload["name"], clusters=clusters)


def system_to_json(system: SystemTopology, indent: int = 2) -> str:
    """Serialize a topology to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent, sort_keys=True)


def system_from_json(text: str) -> SystemTopology:
    """Deserialize a topology from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid topology JSON: {exc}") from exc
    return system_from_dict(payload)


def _check_keys(payload: Mapping[str, Any], allowed: set[str], what: str) -> None:
    """Reject unknown keys so typos fail loudly instead of silently."""
    unknown = set(payload) - allowed
    if unknown:
        raise ValidationError(
            f"unknown {what} keys: {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
