"""Structured JSON logging with trace-id correlation.

One log line = one JSON object, so server logs can be grepped with
``jq`` and joined against trace exports on ``trace_id``.  The formatter
reads the timestamp the logging framework already stamped
(``record.created``) rather than taking its own clock reading.
"""

from __future__ import annotations

import json
import logging
from typing import Any

__all__ = ["JsonLogFormatter", "configure_json_logging", "log_slow_request"]

#: LogRecord attributes that are plumbing, not payload.  Anything a
#: caller passes via ``extra=`` lands outside this set and is emitted.
_RESERVED = frozenset(
    logging.LogRecord(
        name="", level=0, pathname="", lineno=0,
        msg="", args=(), exc_info=None,
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON line.

    ``extra={"trace_id": ...}`` (or any other extra) surfaces as a
    top-level key, which is how server log lines correlate with spans
    in the trace store.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            payload["exc_type"] = type(record.exc_info[1]).__name__
            payload["exc_message"] = str(record.exc_info[1])
        return json.dumps(payload, sort_keys=True, default=str)


def configure_json_logging(
    name: str = "repro.server", *, level: int = logging.INFO, stream=None
) -> logging.Logger:
    """Attach a JSON-line handler to ``name`` (idempotent per logger).

    The logger does not propagate, so enabling structured server logs
    never double-prints through the root logger's handlers.
    """
    logger = logging.getLogger(name)
    logger.setLevel(level)
    logger.propagate = False
    if not any(
        isinstance(handler.formatter, JsonLogFormatter)
        for handler in logger.handlers
    ):
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        logger.addHandler(handler)
    return logger


def log_slow_request(
    logger: logging.Logger,
    *,
    route: str,
    status: int,
    seconds: float,
    threshold: float,
    trace_id: str | None = None,
) -> None:
    """Emit the slow-request line (WARNING, structured fields)."""
    logger.warning(
        "slow request",
        extra={
            "event": "slow_request",
            "route": route,
            "status": status,
            "seconds": round(seconds, 6),
            "threshold": threshold,
            "trace_id": trace_id,
        },
    )
