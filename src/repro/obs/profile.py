"""Opt-in per-request cProfile hook.

Profiling is strictly opt-in (``serve --profile-requests``) because a
cProfile run costs far more than tracing — it exists for the "this one
route is slow and the spans don't say why" escalation, not for steady
state.  The summary is a plain text table so it can ride in a
structured log field.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator

__all__ = ["maybe_profile", "profile_summary"]


@contextmanager
def maybe_profile(enabled: bool) -> Iterator[cProfile.Profile | None]:
    """Profile the block when ``enabled``; yield None (no-op) otherwise."""
    if not enabled:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def profile_summary(profiler: cProfile.Profile, *, limit: int = 12) -> str:
    """Top ``limit`` functions by cumulative time, as text."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(limit)
    return buffer.getvalue().strip()
