"""The single sanctioned time source for the repro package.

Every duration measurement and deadline computation in the package
routes through these wrappers; REP007 (``repro.analysis``) bans direct
``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()`` calls
everywhere else.  Centralising the reads buys three things:

- Auditability: ``repro lint`` can statically prove no module invents
  its own clock, the same way ``rng.py`` centralises randomness.
- Injectability: tests that need to fake time patch one module.
- Documentation: each wrapper states which clock family it belongs to,
  so a reviewer can tell a duration (monotonic) from a timestamp
  (wall) at the call site.

This module is the one file exempt from REP007, so the raw ``time``
calls below are intentional.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "perf_counter", "wall_clock"]


def monotonic() -> float:
    """Coarse monotonic seconds — deadlines, TTLs, retry windows.

    Never jumps backwards on wall-clock adjustment, so a TTL computed
    from it cannot mass-expire healthy state when NTP steps the clock.
    """
    return time.monotonic()


def perf_counter() -> float:
    """High-resolution monotonic seconds — span timings, benchmarks.

    The zero point is arbitrary and, on some platforms, per-process:
    only *differences* taken within one process are meaningful.  Spans
    that cross a process boundary must ship durations, not timestamps.
    """
    return time.perf_counter()


def wall_clock() -> float:
    """Wall-clock seconds since the epoch — display anchors only.

    Use exclusively to *label* exported records (trace start times,
    log lines); never subtract two wall readings to get a duration.
    """
    return time.time()
