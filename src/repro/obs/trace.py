"""Trace contexts, the span recorder, and the bounded trace store.

The model is deliberately small — a trace is a flat list of
:class:`SpanRecord` rows sharing a ``trace_id``; the tree structure is
recovered from ``parent_id`` at render time:

- :class:`SpanContext` is the propagation handle (``trace_id`` +
  ``span_id``).  On the wire it travels as a W3C-traceparent-style
  string (``00-<32 hex>-<16 hex>-01``) in the envelope ``trace`` field.
- :class:`Tracer` records spans against a per-instance
  :class:`contextvars.ContextVar`, so the "current span" follows each
  request even when many requests interleave on one server.  Context
  vars do **not** cross executor threads or process pools — callers
  that hop threads re-activate explicitly (:meth:`Tracer.activate`),
  and process workers ship durations back in chunk payloads which the
  parent re-parents on splice (:meth:`Tracer.record`).
- :class:`TraceStore` is a bounded ring buffer keyed by trace id:
  adding the N+1st trace evicts the least-recently-touched one, so a
  long-lived server holds a sliding window of recent requests.

Timing uses :func:`repro.obs.clock.perf_counter` (high-resolution
monotonic); each span additionally carries a wall-clock *anchor* taken
at span start, used only to label exports.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import ValidationError
from repro.obs import clock

__all__ = [
    "SpanContext",
    "SpanRecord",
    "TraceStore",
    "Tracer",
    "format_traceparent",
    "maybe_span",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "render_trace",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "summarize_traces",
]

#: W3C trace-context version emitted on the wire.  Only version 00 is
#: accepted back; the format is versioned exactly so unknown futures
#: fail loud instead of mis-parsing.
_TRACEPARENT_VERSION = "00"

#: Sampled flag — every trace we bother to stamp is sampled.
_TRACEPARENT_FLAGS = "01"

_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id() -> str:
    """Return a fresh 128-bit trace id as 32 lowercase hex digits.

    ``os.urandom`` rather than the global ``random`` module: trace ids
    must never consume (or be influenced by) the experiment RNG stream,
    and REP007 bans global-RNG calls outside ``rng.py``.
    """
    return os.urandom(16).hex()


def new_span_id() -> str:
    """Return a fresh 64-bit span id as 16 lowercase hex digits."""
    return os.urandom(8).hex()


def format_traceparent(context: "SpanContext") -> str:
    """Render ``context`` as a traceparent wire string."""
    return (
        f"{_TRACEPARENT_VERSION}-{context.trace_id}"
        f"-{context.span_id}-{_TRACEPARENT_FLAGS}"
    )


def _check_hex(value: str, width: int, what: str) -> str:
    if len(value) != width or not set(value) <= _HEX_DIGITS:
        raise ValidationError(
            f"traceparent {what} must be {width} lowercase hex digits, "
            f"got {value!r}"
        )
    if value == "0" * width:
        raise ValidationError(f"traceparent {what} must be non-zero")
    return value


def parse_traceparent(text: str) -> "SpanContext":
    """Parse a traceparent wire string into a :class:`SpanContext`.

    Raises :class:`~repro.errors.ValidationError` on malformed input.
    Callers on the serving path catch it and start a fresh root trace
    instead — per the W3C spec, an invalid incoming context is
    discarded, never propagated.
    """
    parts = text.split("-")
    if len(parts) != 4:
        raise ValidationError(
            f"traceparent must have 4 '-'-separated fields, got {text!r}"
        )
    version, trace_id, span_id, _flags = parts
    if version != _TRACEPARENT_VERSION:
        raise ValidationError(
            f"unsupported traceparent version {version!r} (expected "
            f"{_TRACEPARENT_VERSION!r})"
        )
    return SpanContext(
        trace_id=_check_hex(trace_id, 32, "trace-id"),
        span_id=_check_hex(span_id, 16, "parent-id"),
    )


@dataclass(frozen=True)
class SpanContext:
    """Propagation handle: which trace, and which span to parent to."""

    trace_id: str
    span_id: str


@dataclass
class SpanRecord:
    """One finished (or in-flight, inside ``Tracer.span``) span.

    ``start``/``end`` are :func:`repro.obs.clock.perf_counter` readings
    — meaningful only as differences within one process.  ``wall`` is a
    wall-clock anchor taken at span start, for labelling exports.
    ``attrs`` values are strings so the JSONL export stays flat.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float = 0.0
    wall: float = 0.0
    attrs: dict[str, str] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "wall": self.wall,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        try:
            return cls(
                trace_id=payload["trace_id"],
                span_id=payload["span_id"],
                parent_id=payload.get("parent_id"),
                name=payload["name"],
                start=float(payload["start"]),
                end=float(payload["end"]),
                wall=float(payload.get("wall", 0.0)),
                attrs={
                    str(key): str(value)
                    for key, value in dict(payload.get("attrs") or {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed span record: {exc}") from exc


class Tracer:
    """Low-overhead span recorder bound to an optional :class:`TraceStore`.

    One tracer serves the whole server; per-request identity lives in a
    per-instance :class:`~contextvars.ContextVar`, not in the tracer.
    Components hold ``tracer = None`` when tracing is disabled — the
    *presence* of a tracer is the enable flag, so the disabled hot path
    pays a single ``is not None`` check and nothing else.
    """

    def __init__(self, store: "TraceStore | None" = None) -> None:
        self.store = store
        #: Called with each finished SpanRecord; the metrics exporter
        #: hooks this to feed repro_span_duration_seconds{phase=...}.
        self.observer: Callable[[SpanRecord], None] | None = None
        self._current: ContextVar[SpanContext | None] = ContextVar(
            "repro_obs_span", default=None
        )

    def current(self) -> SpanContext | None:
        """The active span context on this thread/task, if any."""
        return self._current.get()

    def activate(self, context: SpanContext | None):
        """Make ``context`` current; returns a token for :meth:`restore`.

        Executor threads are reused across requests, so every activate
        must be paired with a ``try/finally`` restore or contexts leak
        from one request into the next.
        """
        return self._current.set(context)

    def restore(self, token) -> None:
        self._current.reset(token)

    def _finish(self, record: SpanRecord) -> None:
        if self.store is not None:
            self.store.add(record)
        observer = self.observer
        if observer is not None:
            observer(record)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: SpanContext | None = None,
        start: float | None = None,
        span_id: str | None = None,
        attrs: dict[str, str] | None = None,
    ) -> Iterator[SpanRecord]:
        """Record a span around a code block and make it current.

        ``parent`` defaults to the current context; with neither, the
        span roots a brand-new trace.  ``start`` may be supplied to
        back-date the span (e.g. the request span starts at parse time,
        before the tracer was consulted).  The yielded record is
        mutable — callers may set ``attrs`` entries before exit.
        """
        if parent is None:
            parent = self._current.get()
        if parent is None:
            trace_id = new_trace_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        record = SpanRecord(
            trace_id=trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent_id,
            name=name,
            start=clock.perf_counter() if start is None else start,
            wall=clock.wall_clock(),
            attrs=attrs if attrs is not None else {},
        )
        token = self._current.set(record.context)
        try:
            yield record
        finally:
            self._current.reset(token)
            record.end = clock.perf_counter()
            self._finish(record)

    def child_span(
        self, name: str, *, attrs: dict[str, str] | None = None
    ):
        """Like :meth:`span`, but a no-op when no trace is active.

        The guard for optional instrumentation points (backend chunks):
        an engine used outside any traced request must not mint stray
        root traces.
        """
        if self._current.get() is None:
            return _NO_SPAN
        return self.span(name, attrs=attrs)

    def record(
        self,
        name: str,
        *,
        parent: SpanContext,
        start: float,
        end: float,
        span_id: str | None = None,
        attrs: dict[str, str] | None = None,
    ) -> SpanRecord:
        """Record a pre-timed span without entering a context.

        Used where the timing happened elsewhere: ``parse`` (measured
        before the root span opens), ``queue_wait`` (submit→run gap),
        and worker spans spliced back from process-pool chunks.
        """
        record = SpanRecord(
            trace_id=parent.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            parent_id=parent.span_id,
            name=name,
            start=start,
            end=end,
            wall=clock.wall_clock(),
            attrs=attrs if attrs is not None else {},
        )
        self._finish(record)
        return record


#: Shared no-op context manager returned by the disabled paths.
#: nullcontext is reusable and reentrant, so one instance serves all.
_NO_SPAN = nullcontext(None)


def maybe_span(
    tracer: Tracer | None, name: str, *, attrs: dict[str, str] | None = None
):
    """``tracer.child_span`` if tracing is both enabled and active.

    The single-call guard for instrumentation sites: returns a shared
    no-op context manager when ``tracer`` is None (tracing disabled) or
    no span is current (call outside any traced request).
    """
    if tracer is None:
        return _NO_SPAN
    return tracer.child_span(name, attrs=attrs)


class TraceStore:
    """Bounded ring buffer of recent traces, keyed by trace id.

    Adding a span to a new trace beyond ``capacity`` evicts the
    least-recently-touched trace (touch = any span added).  ``dropped``
    counts evictions so operators can tell the window overflowed.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValidationError(
                f"trace store capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[SpanRecord]] = OrderedDict()

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            spans = self._traces.get(record.trace_id)
            if spans is None:
                while len(self._traces) >= self.capacity:
                    self._traces.popitem(last=False)
                    self.dropped += 1
                self._traces[record.trace_id] = [record]
            else:
                spans.append(record)
                self._traces.move_to_end(record.trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def get(self, trace_id: str) -> list[SpanRecord] | None:
        """All spans of one trace (recording order), or None."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def snapshot(self) -> list[SpanRecord]:
        """Every stored span, oldest trace first."""
        with self._lock:
            return [span for spans in self._traces.values() for span in spans]

    def summaries(
        self, *, min_duration: float = 0.0, limit: int = 50
    ) -> list[dict[str, Any]]:
        """Per-trace summaries, most recent first.

        ``min_duration`` filters on the root span's duration, so `GET
        /v2/traces?min_duration=...` surfaces only slow requests.
        """
        with self._lock:
            traces = [list(spans) for spans in self._traces.values()]
        out: list[dict[str, Any]] = []
        for spans in reversed(traces):
            root = _root_span(spans)
            if root.duration < min_duration:
                continue
            out.append(
                {
                    "trace_id": root.trace_id,
                    "name": root.name,
                    "duration_seconds": root.duration,
                    "spans": len(spans),
                    "wall_start": root.wall,
                }
            )
            if len(out) >= limit:
                break
        return out

    def export_jsonl(self) -> str:
        """Every stored span as JSON lines (one span per line)."""
        return spans_to_jsonl(self.snapshot())


def _root_span(spans: list[SpanRecord]) -> SpanRecord:
    """The trace's root: no parent, or parent never recorded here.

    A server-side trace parented to a client-stamped span id has a
    parent that was never recorded server-side; it renders as the root.
    Ties (shouldn't happen) break toward the earliest start.
    """
    recorded = {span.span_id for span in spans}
    roots = [
        span
        for span in spans
        if span.parent_id is None or span.parent_id not in recorded
    ]
    return min(roots or spans, key=lambda span: span.start)


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> list[SpanRecord]:
    spans: list[SpanRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"trace JSONL line {lineno} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ValidationError(
                f"trace JSONL line {lineno} must be an object"
            )
        spans.append(SpanRecord.from_dict(payload))
    return spans


def summarize_traces(spans: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """Group loose spans by trace id and summarise each trace.

    The offline twin of :meth:`TraceStore.summaries`, for `repro trace
    --file <export.jsonl>` listings.
    """
    by_trace: OrderedDict[str, list[SpanRecord]] = OrderedDict()
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    out = []
    for trace_spans in by_trace.values():
        root = _root_span(trace_spans)
        out.append(
            {
                "trace_id": root.trace_id,
                "name": root.name,
                "duration_seconds": root.duration,
                "spans": len(trace_spans),
                "wall_start": root.wall,
            }
        )
    return out


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000.0:.2f}ms"


def render_trace(spans: Iterable[SpanRecord]) -> str:
    """Render spans (possibly several traces) as indented span trees.

    Spans whose parent was never recorded render as roots — that is the
    normal shape for a server trace parented to a client-stamped span.
    Children sort by start time, so the tree reads chronologically.
    """
    spans = list(spans)
    if not spans:
        return "(no spans)"
    by_trace: OrderedDict[str, list[SpanRecord]] = OrderedDict()
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    blocks: list[str] = []
    for trace_id, trace_spans in by_trace.items():
        recorded = {span.span_id for span in trace_spans}
        children: dict[str | None, list[SpanRecord]] = {}
        roots: list[SpanRecord] = []
        for span in trace_spans:
            if span.parent_id is None or span.parent_id not in recorded:
                roots.append(span)
            else:
                children.setdefault(span.parent_id, []).append(span)
        roots.sort(key=lambda span: span.start)
        root = _root_span(trace_spans)
        lines = [
            f"trace {trace_id}  "
            f"({len(trace_spans)} spans, {_format_duration(root.duration)})"
        ]

        def _walk(span: SpanRecord, prefix: str, tail: bool) -> None:
            connector = "`- " if tail else "|- "
            attrs = "".join(
                f"  {key}={value}" for key, value in sorted(span.attrs.items())
            )
            lines.append(
                f"{prefix}{connector}{span.name:<16} "
                f"{_format_duration(span.duration):>10}{attrs}"
            )
            kids = sorted(
                children.get(span.span_id, ()), key=lambda s: s.start
            )
            child_prefix = prefix + ("   " if tail else "|  ")
            for index, kid in enumerate(kids):
                _walk(kid, child_prefix, index == len(kids) - 1)

        for index, span in enumerate(roots):
            _walk(span, "", index == len(roots) - 1)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
