"""Observability: tracing, structured logging, latency attribution.

The serving stack's window into *where a request's time went*.  The
package splits into small leaf modules so the hot paths can import
exactly what they need:

- :mod:`repro.obs.clock` — the single sanctioned time source.  Every
  duration measurement in the package routes through it (the REP007
  lint rule bans ad-hoc ``time.time()``/``time.monotonic()`` reads
  everywhere else).
- :mod:`repro.obs.trace` — trace contexts (W3C-traceparent-style wire
  field), the :class:`~repro.obs.trace.Tracer` span recorder, the
  bounded ring-buffer :class:`~repro.obs.trace.TraceStore`, JSONL
  export and span-tree rendering.
- :mod:`repro.obs.logging` — structured JSON logging with trace-id
  correlation and the slow-request log helper.
- :mod:`repro.obs.profile` — the opt-in per-request cProfile hook.

Tracing is **zero-cost when disabled**: components hold ``tracer =
None`` and guard every recording site with a single ``is not None``
check, so the disabled path costs one attribute load — results are
byte-identical either way.
"""

from repro.obs.trace import (
    SpanContext,
    SpanRecord,
    TraceStore,
    Tracer,
    format_traceparent,
    maybe_span,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_trace,
    spans_from_jsonl,
    spans_to_jsonl,
    summarize_traces,
)

__all__ = [
    "SpanContext",
    "SpanRecord",
    "TraceStore",
    "Tracer",
    "format_traceparent",
    "maybe_span",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "render_trace",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "summarize_traces",
]
