"""Storage I/O multipathing (paper §V future work).

Multipathing duplicates the *access path* to storage — a second HBA /
controller / fabric route — rather than the data itself.  We model the
path pair as doubling the cluster's node count with a tolerance of the
original path count and a near-instant path switch.

This is an approximation (documented in DESIGN.md): the k-redundancy
model has one node class per cluster, so the path hardware is modeled as
peer nodes of the storage cluster.  The availability effect — a second
independently failing element whose takeover is nearly free — is
preserved, which is what the optimizer compares on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class StorageMultipath(HATechnology):
    """Dual-path storage I/O for storage tiers.

    Parameters
    ----------
    failover_minutes:
        Path-switch time; multipath drivers retry in seconds, so the
        default is a small fraction of a minute.
    monthly_path_cost:
        Second HBA/fabric port cost per original node, dollars/month.
    monthly_labor_hours:
        Sustainment hours/month.
    """

    failover_minutes: float = 0.1
    monthly_path_cost: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return "storage-multipath"

    @property
    def layer(self) -> Layer | None:
        return Layer.STORAGE

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        extra = cluster.total_nodes
        infra_cost = cluster.total_nodes * self.monthly_path_cost
        return cluster.with_ha(
            standby_tolerance=extra,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=extra,
        )
