"""Network-layer redundancy: dual gateways and BGP dual circuits.

The case study clusters the network layer "via dual gateways"
(Figure 5): a second gateway in an active/standby pair with VRRP-style
takeover.  The paper's future-work list adds BGP over dual circuits —
two independent uplinks with routing convergence as the failover event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class DualGateway(HATechnology):
    """Active/standby gateway pair (VRRP-style takeover).

    Each active gateway gains a standby twin: ``K`` doubles and the
    worst-case guaranteed tolerance is the number of standby twins.
    For the common single-gateway case this is the classic 1+1 pair.
    """

    failover_minutes: float = 2.0
    monthly_vip_cost: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return "dual-gateway"

    @property
    def layer(self) -> Layer | None:
        return Layer.NETWORK

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        extra = cluster.total_nodes
        infra_cost = extra * cluster.node.monthly_cost + self.monthly_vip_cost
        return cluster.with_ha(
            standby_tolerance=extra,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=extra,
        )


@dataclass(frozen=True)
class BGPDualCircuit(HATechnology):
    """BGP over dual circuits (paper §V future work).

    A second, independently routed uplink; failover is BGP route
    convergence, typically slower than VRRP but surviving carrier-level
    faults.  Priced by the second circuit's monthly cost rather than by
    doubling the gateway hardware.
    """

    failover_minutes: float = 3.0
    monthly_circuit_cost: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return "bgp-dual-circuit"

    @property
    def layer(self) -> Layer | None:
        return Layer.NETWORK

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        extra = cluster.total_nodes
        infra_cost = self.monthly_circuit_cost
        return cluster.with_ha(
            standby_tolerance=extra,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=extra,
        )
