"""Hypervisor-level N+M clustering (VMware-ESX-style).

The paper's case study uses a VMware ESX HA solution in a 3+1
configuration: three active hosts, one standby, ``K̂ = 1``.  When an
active host dies, the HA layer restarts its VMs on the standby after a
failover latency (detection + boot + takeover).

Cost model: the standby hosts are paid for like active ones, every host
carries a per-host HA license, and sustaining the cluster takes monthly
labor hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class HypervisorHA(HATechnology):
    """N+M hypervisor clustering for compute tiers.

    Parameters
    ----------
    standby_nodes:
        ``M`` — standby hosts added to the active set (also ``K̂``).
    failover_minutes:
        Outage minutes per failover transaction (detection + VM restart
        + takeover).
    monthly_license_per_node:
        HA software license dollars/month, charged on every node.
    monthly_labor_hours:
        Sustainment hours/month for the whole cluster.
    """

    standby_nodes: int = 1
    failover_minutes: float = 10.0
    monthly_license_per_node: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.standby_nodes < 1:
            raise CatalogError(
                f"standby_nodes must be >= 1, got {self.standby_nodes!r}"
            )
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return f"hypervisor-n+{self.standby_nodes}"

    @property
    def layer(self) -> Layer | None:
        return Layer.COMPUTE

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        total_nodes = cluster.total_nodes + self.standby_nodes
        infra_cost = (
            self.standby_nodes * cluster.node.monthly_cost
            + total_nodes * self.monthly_license_per_node
        )
        return cluster.with_ha(
            standby_tolerance=self.standby_nodes,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=self.standby_nodes,
        )
