"""RAID redundancy for storage tiers.

The case study protects storage with RAID-1 (mirroring): a single volume
becomes a mirrored pair, ``K = 2``, ``K̂ = 1``.  Other common levels are
provided with *conservative* mappings onto the paper's k-redundancy
model (the model counts worst-case tolerated failures, so striped-mirror
layouts are credited only their guaranteed tolerance):

========  ==================================  =====================
Level     Nodes (from ``A`` active disks)     Tolerance ``K̂``
========  ==================================  =====================
RAID-1    ``m * A`` (m-way mirror, m >= 2)    ``m - 1``
RAID-5    ``A + 1`` (one parity disk)          1
RAID-6    ``A + 2`` (two parity disks)         2
RAID-10   ``2 * A`` (striped mirrors)          1 (guaranteed)
========  ==================================  =====================

RAID failover (degraded-mode entry) is near-instant compared to host
failover; the default reflects a brief I/O stall, and is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class _RaidBase(HATechnology):
    """Shared knobs for every RAID level."""

    failover_minutes: float = 1.0
    monthly_controller_cost: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def layer(self) -> Layer | None:
        return Layer.STORAGE

    def _apply_shape(
        self,
        cluster: ClusterSpec,
        extra_nodes: int,
        tolerance: int,
    ) -> ClusterSpec:
        """Apply a RAID shape: add disks, set tolerance, price the delta."""
        self.check_applicable(cluster)
        infra_cost = extra_nodes * cluster.node.monthly_cost + self.monthly_controller_cost
        return cluster.with_ha(
            standby_tolerance=tolerance,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=extra_nodes,
        )


@dataclass(frozen=True)
class RAID1(_RaidBase):
    """m-way mirroring (default m=2, the case-study configuration)."""

    mirror_count: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mirror_count < 2:
            raise CatalogError(
                f"mirror_count must be >= 2, got {self.mirror_count!r}"
            )

    @property
    def name(self) -> str:
        return "raid-1" if self.mirror_count == 2 else f"raid-1x{self.mirror_count}"

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        extra = (self.mirror_count - 1) * cluster.total_nodes
        return self._apply_shape(cluster, extra_nodes=extra, tolerance=self.mirror_count - 1)


@dataclass(frozen=True)
class RAID5(_RaidBase):
    """Single-parity stripe: one extra disk, tolerates one failure."""

    @property
    def name(self) -> str:
        return "raid-5"

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        return self._apply_shape(cluster, extra_nodes=1, tolerance=1)


@dataclass(frozen=True)
class RAID6(_RaidBase):
    """Double-parity stripe: two extra disks, tolerates two failures.

    Requires at least two active disks (a two-disk RAID-6 is just a
    mirror and should be modeled as RAID-1).
    """

    @property
    def name(self) -> str:
        return "raid-6"

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        if cluster.total_nodes < 2:
            raise CatalogError(
                "raid-6 requires >= 2 active disks; use raid-1 for a "
                f"single volume (cluster {cluster.name!r})"
            )
        return self._apply_shape(cluster, extra_nodes=2, tolerance=2)


@dataclass(frozen=True)
class RAID10(_RaidBase):
    """Striped mirrors: doubles the disks, guaranteed tolerance of 1.

    A lucky spread of failures can survive more, but the k-redundancy
    model credits only the worst-case guarantee.
    """

    @property
    def name(self) -> str:
        return "raid-10"

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        return self._apply_shape(
            cluster, extra_nodes=cluster.total_nodes, tolerance=1
        )
