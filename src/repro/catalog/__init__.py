"""HA technology catalog.

Each :class:`~repro.catalog.base.HATechnology` transforms a *bare*
cluster spec into an HA-enabled one — setting ``K``, ``K̂``, the failover
time and the incremental cost — exactly the quantities the availability
and TCO models consume.

The catalog covers the paper's case-study stack (hypervisor N+M
clustering, RAID-1, dual gateways) plus the §V *future work* list
implemented as extensions: OS clustering, software-defined storage /
clustered filesystems, storage multipathing and BGP dual circuits.
"""

from repro.catalog.base import HATechnology, NoHA
from repro.catalog.dr import ColdStandby, WarmStandby
from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.network import BGPDualCircuit, DualGateway
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1, RAID5, RAID6, RAID10
from repro.catalog.registry import (
    TechnologyRegistry,
    case_study_registry,
    default_registry,
    extended_registry,
)
from repro.catalog.sds import SDSReplication
from repro.catalog.multipath import StorageMultipath

__all__ = [
    "BGPDualCircuit",
    "ColdStandby",
    "DualGateway",
    "WarmStandby",
    "HATechnology",
    "HypervisorHA",
    "NoHA",
    "OSCluster",
    "RAID1",
    "RAID5",
    "RAID6",
    "RAID10",
    "SDSReplication",
    "StorageMultipath",
    "TechnologyRegistry",
    "case_study_registry",
    "default_registry",
    "extended_registry",
]
