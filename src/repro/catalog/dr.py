"""Disaster-recovery standbys: cold and warm (extension).

Between "no HA" and a fully active hypervisor cluster sit the classic
DR postures:

- **cold standby** — hardware reserved but powered down: cheap (a
  fraction of an active node's price) but slow to take over (boot +
  restore);
- **warm standby** — powered and replicating, faster takeover, priced
  between cold and hot.

Both map onto the k-redundancy model as an extra node with tolerance 1
and a long failover time; the optimizer then gets a genuine price/
recovery-time trade-off on the compute layer rather than a binary
HA-or-not choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class _StandbyBase(HATechnology):
    """Shared shape of the DR postures: one standby, slow takeover."""

    failover_minutes: float
    standby_cost_factor: float
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )
        if not 0.0 <= self.standby_cost_factor <= 1.0:
            raise CatalogError(
                "standby_cost_factor must be in [0, 1] (a fraction of the "
                f"active node price), got {self.standby_cost_factor!r}"
            )

    @property
    def layer(self) -> Layer | None:
        return Layer.COMPUTE

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        infra_cost = self.standby_cost_factor * cluster.node.monthly_cost
        return cluster.with_ha(
            standby_tolerance=1,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=1,
        )


@dataclass(frozen=True)
class ColdStandby(_StandbyBase):
    """Powered-down reserve hardware: cheapest, slowest takeover."""

    failover_minutes: float = 45.0
    standby_cost_factor: float = 0.35

    @property
    def name(self) -> str:
        return "cold-standby"


@dataclass(frozen=True)
class WarmStandby(_StandbyBase):
    """Powered, replicating standby: mid-priced, mid-speed takeover."""

    failover_minutes: float = 20.0
    standby_cost_factor: float = 0.7

    @property
    def name(self) -> str:
        return "warm-standby"
