"""Base interface for HA technologies.

An HA technology is a pure transformation on cluster specs: given the
*bare* (no-HA) cluster of active nodes, it returns the HA-enabled
cluster — more nodes, a failure tolerance ``K̂``, a failover time and a
monthly cost delta.  Keeping the transformation pure lets the optimizer
enumerate ``k^n`` variants without side effects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


class HATechnology(abc.ABC):
    """One entry in the HA catalog.

    Subclasses are frozen dataclasses whose fields are the technology's
    commercial knobs (license prices, labor hours, standby counts);
    provider-specific rate cards build instances with their own numbers.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier, e.g. ``"vmware-esx-n+1"`` or ``"raid-1"``."""

    @property
    @abc.abstractmethod
    def layer(self) -> Layer | None:
        """Layer this technology applies to; ``None`` means any layer."""

    @abc.abstractmethod
    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        """Return the HA-enabled version of a bare cluster.

        Implementations must call :meth:`check_applicable` first.
        """

    def check_applicable(self, cluster: ClusterSpec) -> None:
        """Validate the technology can be applied to this cluster.

        Raises :class:`CatalogError` when the cluster already has HA
        (technologies compose through the registry, not by stacking) or
        lives in a different layer.
        """
        if cluster.has_ha:
            raise CatalogError(
                f"{self.name} must be applied to a bare cluster; "
                f"{cluster.name!r} already has {cluster.ha_technology!r}"
            )
        if self.layer is not None and cluster.layer is not self.layer:
            raise CatalogError(
                f"{self.name} applies to {self.layer.value} clusters; "
                f"{cluster.name!r} is a {cluster.layer.value} cluster"
            )

    def describe(self) -> str:
        """Human-readable one-liner; subclasses may extend."""
        scope = self.layer.value if self.layer is not None else "any layer"
        return f"{self.name} ({scope})"


@dataclass(frozen=True)
class NoHA(HATechnology):
    """The identity choice: leave the cluster bare.

    Always present in every cluster's choice set — the paper's option #1
    (Figure 4) is the permutation choosing this everywhere.
    """

    @property
    def name(self) -> str:
        return "none"

    @property
    def layer(self) -> Layer | None:
        return None

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        if cluster.has_ha:
            raise CatalogError(
                f"NoHA must be applied to a bare cluster; "
                f"{cluster.name!r} already has {cluster.ha_technology!r}"
            )
        return cluster
