"""Technology registry: the per-layer choice sets the optimizer explores.

A registry maps each architectural layer to its list of HA choices.  The
*choice count per cluster* is the paper's ``k``; the optimizer enumerates
``k^n`` permutations drawn from the registry.

Three stock registries are provided:

- :func:`case_study_registry` — ``k = 2`` per layer (none / the
  case-study technology), reproducing the paper's 8-option space;
- :func:`default_registry` — a moderate realistic set;
- :func:`extended_registry` — includes every §V future-work technology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.base import HATechnology, NoHA
from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.multipath import StorageMultipath
from repro.catalog.network import BGPDualCircuit, DualGateway
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1, RAID5, RAID6, RAID10
from repro.catalog.sds import SDSReplication
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass
class TechnologyRegistry:
    """Mutable catalog of HA technologies, grouped by layer.

    ``NoHA`` is always implicitly the first choice for every layer, so
    an empty registry still yields one choice per cluster (the bare
    configuration).
    """

    _by_layer: dict[Layer, list[HATechnology]] = field(default_factory=dict)

    def register(self, technology: HATechnology) -> None:
        """Add a technology to its layer's choice list.

        Layer-agnostic technologies (``layer is None``) are registered
        for every layer.  Duplicate names within a layer are rejected.
        """
        layers = [technology.layer] if technology.layer is not None else list(Layer)
        for layer in layers:
            existing = self._by_layer.setdefault(layer, [])
            if any(entry.name == technology.name for entry in existing):
                raise CatalogError(
                    f"technology {technology.name!r} already registered "
                    f"for layer {layer.value!r}"
                )
            existing.append(technology)

    def choices_for_layer(self, layer: Layer) -> tuple[HATechnology, ...]:
        """All choices for a layer, ``NoHA`` first."""
        return (NoHA(), *self._by_layer.get(layer, ()))

    def choices_for_cluster(self, cluster: ClusterSpec) -> tuple[HATechnology, ...]:
        """All choices applicable to a specific (bare) cluster."""
        return self.choices_for_layer(cluster.layer)

    def lookup(self, name: str, layer: Layer) -> HATechnology:
        """Find a technology by name within a layer's choices."""
        for technology in self.choices_for_layer(layer):
            if technology.name == name:
                return technology
        raise CatalogError(
            f"no technology named {name!r} for layer {layer.value!r}; "
            f"available: {[t.name for t in self.choices_for_layer(layer)]}"
        )

    def choice_counts(self, clusters: tuple[ClusterSpec, ...]) -> tuple[int, ...]:
        """Per-cluster ``k`` values: the size of each choice set."""
        return tuple(len(self.choices_for_cluster(c)) for c in clusters)

    def describe(self) -> str:
        """Multi-line summary of the per-layer choice sets."""
        lines = ["HA technology registry:"]
        for layer in Layer:
            names = [t.name for t in self.choices_for_layer(layer)]
            lines.append(f"  {layer.value}: {', '.join(names)}")
        return "\n".join(lines)


def case_study_registry(
    hypervisor_license_per_node: float = 0.0,
    hypervisor_labor_hours: float = 0.0,
    raid_controller_cost: float = 0.0,
    raid_labor_hours: float = 0.0,
    gateway_vip_cost: float = 0.0,
    gateway_labor_hours: float = 0.0,
    hypervisor_failover_minutes: float = 10.0,
    raid_failover_minutes: float = 1.0,
    gateway_failover_minutes: float = 2.0,
) -> TechnologyRegistry:
    """The paper's §III choice set: ``k = 2`` per layer.

    Compute: VMware-style N+1 hypervisor HA.  Storage: RAID-1.
    Network: dual gateways.  Cost knobs default to zero so tests can
    exercise pure availability; the case-study workload supplies the
    calibrated prices.
    """
    registry = TechnologyRegistry()
    registry.register(
        HypervisorHA(
            standby_nodes=1,
            failover_minutes=hypervisor_failover_minutes,
            monthly_license_per_node=hypervisor_license_per_node,
            monthly_labor_hours=hypervisor_labor_hours,
        )
    )
    registry.register(
        RAID1(
            failover_minutes=raid_failover_minutes,
            monthly_controller_cost=raid_controller_cost,
            monthly_labor_hours=raid_labor_hours,
        )
    )
    registry.register(
        DualGateway(
            failover_minutes=gateway_failover_minutes,
            monthly_vip_cost=gateway_vip_cost,
            monthly_labor_hours=gateway_labor_hours,
        )
    )
    return registry


def default_registry() -> TechnologyRegistry:
    """A moderate realistic choice set (k=3 compute, k=3 storage, k=2 network)."""
    registry = TechnologyRegistry()
    registry.register(HypervisorHA(standby_nodes=1))
    registry.register(HypervisorHA(standby_nodes=2))
    registry.register(RAID1())
    registry.register(RAID10())
    registry.register(DualGateway())
    return registry


def extended_registry() -> TechnologyRegistry:
    """Every technology, including §V future work (k=6 compute, 4 storage).

    Compute: hypervisor N+1, N+2, OS clustering, warm/cold DR standby.
    Storage: RAID-1, SDS 3-replica, multipathing.  Network: dual
    gateway, BGP dual circuit.
    """
    from repro.catalog.dr import ColdStandby, WarmStandby

    registry = TechnologyRegistry()
    registry.register(HypervisorHA(standby_nodes=1))
    registry.register(HypervisorHA(standby_nodes=2))
    registry.register(OSCluster(standby_nodes=1))
    registry.register(WarmStandby())
    registry.register(ColdStandby())
    registry.register(RAID1())
    registry.register(SDSReplication(replica_count=3))
    registry.register(StorageMultipath())
    registry.register(DualGateway())
    registry.register(BGPDualCircuit())
    return registry


__all__ = [
    "TechnologyRegistry",
    "case_study_registry",
    "default_registry",
    "extended_registry",
    # re-exported for convenience when building custom registries
    "HypervisorHA",
    "OSCluster",
    "RAID1",
    "RAID5",
    "RAID6",
    "RAID10",
    "SDSReplication",
    "StorageMultipath",
    "DualGateway",
    "BGPDualCircuit",
]
