"""OS-level clustering (paper §V future work).

Pacemaker/Corosync-style active/passive clustering at the operating
system layer.  Compared to hypervisor HA it avoids per-host hypervisor
licenses but typically needs more hands-on sustainment and has a longer
takeover (service restart plus resource fencing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class OSCluster(HATechnology):
    """Active/passive OS clustering for compute tiers.

    Parameters
    ----------
    standby_nodes:
        Passive nodes added (also the tolerance ``K̂``).
    failover_minutes:
        Service restart + fencing time.
    monthly_support_per_node:
        OS cluster-stack support subscription, dollars/node/month.
    monthly_labor_hours:
        Sustainment hours/month (usually higher than hypervisor HA).
    """

    standby_nodes: int = 1
    failover_minutes: float = 15.0
    monthly_support_per_node: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.standby_nodes < 1:
            raise CatalogError(
                f"standby_nodes must be >= 1, got {self.standby_nodes!r}"
            )
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return f"os-cluster-n+{self.standby_nodes}"

    @property
    def layer(self) -> Layer | None:
        return Layer.COMPUTE

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        total_nodes = cluster.total_nodes + self.standby_nodes
        infra_cost = (
            self.standby_nodes * cluster.node.monthly_cost
            + total_nodes * self.monthly_support_per_node
        )
        return cluster.with_ha(
            standby_tolerance=self.standby_nodes,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=self.standby_nodes,
        )
