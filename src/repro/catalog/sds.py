"""Software-defined storage replication (paper §V future work).

Ceph/GlusterFS-style replicated storage: data is kept in ``replica_count``
copies across commodity disks.  Loss of up to ``replica_count - 1``
replicas is tolerated; recovery is a cluster-level rebalance with a brief
I/O degradation window modeled as the failover time.

Compared to RAID the infrastructure is cheaper per protected byte (no
dedicated controller) but sustainment labor is higher.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.base import HATechnology
from repro.errors import CatalogError
from repro.topology.cluster import ClusterSpec, Layer


@dataclass(frozen=True)
class SDSReplication(HATechnology):
    """Replicated software-defined storage / clustered filesystem.

    Parameters
    ----------
    replica_count:
        Copies of every object (>= 2); tolerance is ``replica_count - 1``.
    failover_minutes:
        I/O degradation window while the cluster remaps a failed disk.
    monthly_software_cost:
        SDS control-plane cost for the whole cluster, dollars/month.
    monthly_labor_hours:
        Sustainment hours/month (rebalances, scrub monitoring, ...).
    """

    replica_count: int = 3
    failover_minutes: float = 0.5
    monthly_software_cost: float = 0.0
    monthly_labor_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.replica_count < 2:
            raise CatalogError(
                f"replica_count must be >= 2, got {self.replica_count!r}"
            )
        if self.failover_minutes < 0.0:
            raise CatalogError(
                f"failover_minutes must be >= 0, got {self.failover_minutes!r}"
            )

    @property
    def name(self) -> str:
        return f"sds-replica-{self.replica_count}"

    @property
    def layer(self) -> Layer | None:
        return Layer.STORAGE

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        self.check_applicable(cluster)
        extra = (self.replica_count - 1) * cluster.total_nodes
        infra_cost = extra * cluster.node.monthly_cost + self.monthly_software_cost
        return cluster.with_ha(
            standby_tolerance=self.replica_count - 1,
            failover_minutes=self.failover_minutes,
            ha_technology=self.name,
            monthly_ha_infra_cost=infra_cost,
            monthly_ha_labor_hours=self.monthly_labor_hours,
            extra_nodes=extra,
        )
