"""repro — uptime-optimized cloud architecture as a brokered service.

A full reproduction of Venkateswaran & Sarkar, *"Uptime-Optimized Cloud
Architecture as a Brokered Service"* (DSN 2017): the probabilistic
availability model (Eq. 1-4), the TCO model (Eq. 5), the ``k^n`` HA
enumeration with §III-C pruning (Eq. 6), the brokered service around
them, and the substrates (HA catalog, simulated multi-cloud IaaS,
Monte Carlo failure simulator) needed to exercise everything end to end.

Quickstart::

    from repro import (
        Contract, LaborRate, OptimizationProblem, TopologyBuilder,
        NodeSpec, case_study_registry, pruned_optimize,
    )

    system = (
        TopologyBuilder("three-tier")
        .compute("compute", NodeSpec("host", 0.0025, 6.0, 330.0), nodes=3)
        .storage("storage", NodeSpec("volume", 0.015, 5.0, 170.0), nodes=1)
        .network("network", NodeSpec("gateway", 0.014, 4.0, 190.0), nodes=1)
        .build()
    )
    problem = OptimizationProblem(
        base_system=system,
        registry=case_study_registry(),
        contract=Contract.linear(98.0, 100.0),
        labor_rate=LaborRate(30.0),
    )
    result = pruned_optimize(problem)
    print(result.describe())
"""

from repro.availability import (
    AvailabilityReport,
    DowntimeBudget,
    evaluate_availability,
    sensitivity_analysis,
)
from repro.catalog import (
    BGPDualCircuit,
    DualGateway,
    HATechnology,
    HypervisorHA,
    NoHA,
    OSCluster,
    RAID1,
    RAID5,
    RAID6,
    RAID10,
    SDSReplication,
    StorageMultipath,
    TechnologyRegistry,
    case_study_registry,
    default_registry,
    extended_registry,
)
from repro.cost import LaborRate, TCOBreakdown, compute_tco
from repro.errors import ReproError, ValidationError
from repro.optimizer import (
    CandidateSpace,
    EvaluatedOption,
    OptimizationProblem,
    OptimizationResult,
    branch_and_bound_optimize,
    brute_force_optimize,
    pareto_frontier,
    pruned_optimize,
)
from repro.sla import (
    CappedPenalty,
    Contract,
    LinearPenalty,
    NoPenalty,
    PenaltyClause,
    ServiceCreditPenalty,
    TieredPenalty,
    UptimeSLA,
)
from repro.topology import (
    ClusterSpec,
    Layer,
    NodeSpec,
    SystemTopology,
    TopologyBuilder,
)

__version__ = "1.0.0"

__all__ = [
    "AvailabilityReport",
    "BGPDualCircuit",
    "CandidateSpace",
    "CappedPenalty",
    "ClusterSpec",
    "Contract",
    "DowntimeBudget",
    "DualGateway",
    "EvaluatedOption",
    "HATechnology",
    "HypervisorHA",
    "LaborRate",
    "Layer",
    "LinearPenalty",
    "NoHA",
    "NodeSpec",
    "NoPenalty",
    "OSCluster",
    "OptimizationProblem",
    "OptimizationResult",
    "PenaltyClause",
    "RAID1",
    "RAID5",
    "RAID6",
    "RAID10",
    "ReproError",
    "SDSReplication",
    "ServiceCreditPenalty",
    "StorageMultipath",
    "SystemTopology",
    "TCOBreakdown",
    "TechnologyRegistry",
    "TieredPenalty",
    "TopologyBuilder",
    "UptimeSLA",
    "ValidationError",
    "__version__",
    "branch_and_bound_optimize",
    "brute_force_optimize",
    "case_study_registry",
    "compute_tco",
    "default_registry",
    "evaluate_availability",
    "extended_registry",
    "pareto_frontier",
    "pruned_optimize",
    "sensitivity_analysis",
]
