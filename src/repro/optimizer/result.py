"""Evaluated options and optimization results.

An :class:`EvaluatedOption` is one HA permutation with its availability
report and TCO breakdown; an :class:`OptimizationResult` is the full
(or pruned) sweep plus the recommendations the paper defines:

- ``best`` — minimum TCO (Eq. 6), the broker's recommendation;
- ``min_penalty_option`` — the cheapest option whose expected penalty is
  minimal (the paper's "if the possibility of slippage penalty is to be
  minimized" alternative, option #5 in the case study).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.availability.model import AvailabilityReport
from repro.cost.tco import TCOBreakdown
from repro.errors import OptimizerError
from repro.optimizer.space import ChoiceNames
from repro.topology.system import SystemTopology
from repro.units import format_money


@dataclass(frozen=True)
class EvaluatedOption:
    """One HA permutation, fully evaluated.

    ``option_id`` is 1-based in paper order (option #1 = no HA).
    """

    option_id: int
    choice_names: ChoiceNames
    system: SystemTopology
    availability: AvailabilityReport
    tco: TCOBreakdown
    meets_sla: bool

    @property
    def clustered_components(self) -> tuple[str, ...]:
        """Names of clusters that received an HA technology."""
        return tuple(
            cluster.name
            for cluster, choice in zip(self.system.clusters, self.choice_names)
            if choice != "none"
        )

    @property
    def label(self) -> str:
        """Short human label, e.g. ``#3 HA: storage`` or ``#1 no HA``."""
        clustered = self.clustered_components
        if not clustered:
            return f"#{self.option_id} no HA"
        return f"#{self.option_id} HA: {'+'.join(clustered)}"

    def describe(self) -> str:
        """One-line row for option tables."""
        sla_mark = "meets SLA" if self.meets_sla else "slips SLA"
        return (
            f"{self.label:<40} U_s={self.tco.uptime_probability * 100:8.4f}% "
            f"C_HA={format_money(self.tco.ha_cost):>12} "
            f"penalty={format_money(self.tco.expected_penalty):>12} "
            f"TCO={format_money(self.tco.total):>12} ({sla_mark})"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one optimization sweep.

    Attributes
    ----------
    options:
        Evaluated options, in paper order.  Pruned searches omit the
        candidates they skipped.
    evaluations:
        How many candidates were actually evaluated.
    pruned:
        How many candidates were skipped by pruning (0 for brute force).
    space_size:
        Total ``k^n`` candidates in the space.
    strategy:
        Which search produced this result (``"brute-force"``,
        ``"pruned"``, ``"branch-and-bound"``).
    """

    options: tuple[EvaluatedOption, ...]
    evaluations: int
    pruned: int
    space_size: int
    strategy: str

    def __post_init__(self) -> None:
        if not self.options:
            raise OptimizerError("optimization produced no evaluated options")

    @classmethod
    def from_stream(
        cls,
        options: Iterable[EvaluatedOption],
        *,
        space_size: int,
        strategy: str,
        pruned: int = 0,
        keep_options: bool = True,
    ) -> "OptimizationResult":
        """Build a result from a lazily evaluated option stream.

        With ``keep_options=True`` this materializes the full table —
        identical to constructing the result directly.  With
        ``keep_options=False`` the stream is consumed in a single pass
        that tracks only the running recommendations, so million-
        candidate spaces never hold more than two options in memory:
        ``options`` then contains just the distilled ``best`` and
        ``min_penalty_option`` rows while ``evaluations`` still counts
        every candidate seen.
        """
        kept: list[EvaluatedOption] = []
        count = 0
        best: EvaluatedOption | None = None
        lowest_penalty = math.inf
        min_penalty: EvaluatedOption | None = None
        for option in options:
            count += 1
            if keep_options:
                kept.append(option)
                continue
            # Mirror the `best` / `min_penalty_option` tie-breaking so a
            # distilled result answers both recommendations identically.
            if best is None or (option.tco.total, option.option_id) < (
                best.tco.total,
                best.option_id,
            ):
                best = option
            penalty = option.tco.expected_penalty
            if penalty < lowest_penalty:
                lowest_penalty = penalty
                min_penalty = option
            elif penalty == lowest_penalty and (
                option.tco.ha_cost,
                option.option_id,
            ) < (min_penalty.tco.ha_cost, min_penalty.option_id):
                min_penalty = option
        if keep_options:
            stored = tuple(kept)
        elif best is None:
            stored = ()
        elif min_penalty is best:
            stored = (best,)
        else:
            stored = tuple(
                sorted((best, min_penalty), key=lambda option: option.option_id)
            )
        return cls(
            options=stored,
            evaluations=count,
            pruned=pruned,
            space_size=space_size,
            strategy=strategy,
        )

    def iter_options(self) -> Iterator[EvaluatedOption]:
        """Iterate the evaluated option table in paper order."""
        return iter(self.options)

    @property
    def best(self) -> EvaluatedOption:
        """Eq. 6: the minimum-TCO option (ties broken by option id)."""
        return min(self.options, key=lambda option: (option.tco.total, option.option_id))

    @property
    def min_penalty_option(self) -> EvaluatedOption:
        """Cheapest option among those with the lowest expected penalty.

        When any option meets the SLA this is the cheapest SLA-meeting
        option — the paper's minimum-slippage-risk recommendation.
        """
        lowest_penalty = min(option.tco.expected_penalty for option in self.options)
        eligible = [
            option
            for option in self.options
            if option.tco.expected_penalty == lowest_penalty
        ]
        return min(eligible, key=lambda option: (option.tco.ha_cost, option.option_id))

    def option(self, option_id: int) -> EvaluatedOption:
        """Look up an evaluated option by its paper-order id."""
        for candidate in self.options:
            if candidate.option_id == option_id:
                return candidate
        raise OptimizerError(
            f"option #{option_id} was not evaluated "
            f"(it may have been pruned); evaluated ids: "
            f"{[option.option_id for option in self.options]}"
        )

    def by_label(self) -> dict[str, EvaluatedOption]:
        """Evaluated options keyed by their human label."""
        return {option.label: option for option in self.options}

    def savings_vs(self, reference: EvaluatedOption) -> float:
        """Fractional TCO savings of ``best`` against a reference option.

        The paper's headline number compares the recommendation with the
        deployed ad-hoc option (#8): ``1 - TCO_best / TCO_reference``.
        """
        if reference.tco.total <= 0.0:
            raise OptimizerError(
                "cannot compute savings against a zero-cost reference"
            )
        return 1.0 - self.best.tco.total / reference.tco.total

    def describe(self) -> str:
        """Multi-line option table plus the two recommendations."""
        lines = [
            f"{self.strategy}: evaluated {self.evaluations}/{self.space_size} "
            f"candidates ({self.pruned} pruned)"
        ]
        lines.extend(option.describe() for option in self.options)
        lines.append(f"recommended (min TCO):     {self.best.label}")
        lines.append(f"recommended (min penalty): {self.min_penalty_option.label}")
        return "\n".join(lines)
