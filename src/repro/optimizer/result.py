"""Evaluated options and optimization results.

An :class:`EvaluatedOption` is one HA permutation with its availability
report and TCO breakdown; an :class:`OptimizationResult` is the full
(or pruned) sweep plus the recommendations the paper defines:

- ``best`` — minimum TCO (Eq. 6), the broker's recommendation;
- ``min_penalty_option`` — the cheapest option whose expected penalty is
  minimal (the paper's "if the possibility of slippage penalty is to be
  minimized" alternative, option #5 in the case study).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.availability.model import AvailabilityReport
from repro.cost.tco import TCOBreakdown
from repro.errors import OptimizerError
from repro.optimizer.space import ChoiceNames
from repro.topology.system import SystemTopology
from repro.units import format_money

class _LazyField:
    """Data descriptor for fields that accept a build-on-first-read factory.

    The engine's incremental path hands options a zero-argument factory
    instead of a built value; the descriptor invokes it on first read
    and caches the result in the instance dict.  ``system`` stays lazy
    so distilled/streamed sweeps that never look at a topology skip its
    construction (and validation) entirely; ``availability`` stays lazy
    so sweeps that only rank by TCO never build the per-cluster report
    objects — which is also what keeps the process evaluation backend's
    parent-side cost per candidate flat.
    """

    __slots__ = ("field_name", "expected_type")

    def __init__(self, field_name, expected_type):
        self.field_name = field_name
        self.expected_type = expected_type

    def __get__(self, option, owner=None):
        if option is None:
            return self
        value = option.__dict__[self.field_name]
        if not isinstance(value, self.expected_type):
            value = value()
            option.__dict__[self.field_name] = value
        return value

    def __set__(self, option, value):
        # Reached only via object.__setattr__ in the frozen dataclass
        # __init__; user-level assignment still raises FrozenInstanceError.
        option.__dict__[self.field_name] = value


@dataclass(frozen=True)
class EvaluatedOption:
    """One HA permutation, fully evaluated.

    ``option_id`` is 1-based in paper order (option #1 = no HA).

    ``system`` and ``availability`` may each be passed either as the
    built value or as a zero-argument factory producing one; a factory
    runs on first attribute access.  ``cluster_names`` carries the
    chain's cluster names so labels and option tables never have to
    force a lazy topology.
    """

    option_id: int
    choice_names: ChoiceNames
    system: SystemTopology = field(repr=False, compare=False)
    availability: AvailabilityReport
    tco: TCOBreakdown
    meets_sla: bool
    cluster_names: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def system_is_materialized(self) -> bool:
        """True once the topology has been built (or was passed built)."""
        return isinstance(self.__dict__["system"], SystemTopology)

    @property
    def availability_is_materialized(self) -> bool:
        """True once the availability report has been built."""
        return isinstance(self.__dict__["availability"], AvailabilityReport)

    def relabel(self, option_id: int) -> "EvaluatedOption":
        """The same option under a different paper-order id.

        Unlike :func:`dataclasses.replace`, this does not read the
        ``system`` or ``availability`` fields, so relabelling a cache
        hit keeps lazy values lazy.
        """
        if option_id == self.option_id:
            return self
        return EvaluatedOption(
            option_id=option_id,
            choice_names=self.choice_names,
            system=self.__dict__["system"],
            availability=self.__dict__["availability"],
            tco=self.tco,
            meets_sla=self.meets_sla,
            cluster_names=self.cluster_names,
        )

    @property
    def clustered_components(self) -> tuple[str, ...]:
        """Names of clusters that received an HA technology."""
        names = self.cluster_names
        if names is None:
            names = tuple(cluster.name for cluster in self.system.clusters)
        return tuple(
            name
            for name, choice in zip(names, self.choice_names)
            if choice != "none"
        )

    @property
    def label(self) -> str:
        """Short human label, e.g. ``#3 HA: storage`` or ``#1 no HA``."""
        clustered = self.clustered_components
        if not clustered:
            return f"#{self.option_id} no HA"
        return f"#{self.option_id} HA: {'+'.join(clustered)}"

    def describe(self) -> str:
        """One-line row for option tables."""
        sla_mark = "meets SLA" if self.meets_sla else "slips SLA"
        return (
            f"{self.label:<40} U_s={self.tco.uptime_probability * 100:8.4f}% "
            f"C_HA={format_money(self.tco.ha_cost):>12} "
            f"penalty={format_money(self.tco.expected_penalty):>12} "
            f"TCO={format_money(self.tco.total):>12} ({sla_mark})"
        )


# The dataclass machinery must not see the descriptors as field defaults,
# so they are attached after class creation; frozen __init__ stores through
# their __set__ via object.__setattr__.  Reading ``availability`` in a
# repr/eq materializes it transparently, so semantics are unchanged.
# ``choice_names`` is lazy for the same reason ``availability`` is: a
# distilled sweep ranks by TCO alone, so the per-candidate name-row
# gather is deferred and only ever paid by the two winning options.
EvaluatedOption.system = _LazyField("system", SystemTopology)
EvaluatedOption.availability = _LazyField("availability", AvailabilityReport)
EvaluatedOption.choice_names = _LazyField("choice_names", tuple)


def assemble_option(
    option_id: int,
    choice_names: ChoiceNames,
    system,
    availability,
    tco: TCOBreakdown,
    meets_sla: bool,
    cluster_names: tuple[str, ...] | None,
) -> EvaluatedOption:
    """Hot-path :class:`EvaluatedOption` constructor.

    The frozen ``__init__`` routes every field through
    ``object.__setattr__`` — seven C round-trips per candidate, two of
    which dispatch into the Python-level ``_LazyField.__set__``.  Sweep
    paths build 100k+ options per request, so this assembles the
    instance dict directly instead; the stored state is identical
    (plain fields and lazy factories both live in ``__dict__``, exactly
    where ``__init__`` would have put them), so eq/hash/repr/pickle and
    lazy materialization behave the same.
    """
    option = object.__new__(EvaluatedOption)
    store = option.__dict__
    store["option_id"] = option_id
    store["choice_names"] = choice_names
    store["system"] = system
    store["availability"] = availability
    store["tco"] = tco
    store["meets_sla"] = meets_sla
    store["cluster_names"] = cluster_names
    return option


class ResultAccumulator:
    """Incremental distillation of an option stream.

    The push-style twin of :meth:`OptimizationResult.from_stream`: feed
    options one at a time with :meth:`add` and call :meth:`finish` for
    the result.  This is the streaming hook the broker session uses to
    interleave progress events with a sweep — ``from_stream`` itself is
    implemented on top of it, so both paths share one set of
    ``best`` / ``min_penalty_option`` tie-breaking rules.

    With ``keep_options=False`` only the two running recommendations are
    retained, so million-candidate sweeps hold O(1) options in memory.
    """

    def __init__(
        self,
        *,
        space_size: int,
        strategy: str,
        pruned: int = 0,
        keep_options: bool = True,
    ) -> None:
        self.space_size = space_size
        self.strategy = strategy
        self.pruned = pruned
        self.keep_options = keep_options
        self.count = 0
        self._kept: list[EvaluatedOption] = []
        self._best: EvaluatedOption | None = None
        self._best_total = math.inf
        self._best_id = 0
        self._lowest_penalty = math.inf
        self._min_penalty: EvaluatedOption | None = None
        self._min_penalty_ha_cost = math.inf
        self._min_penalty_id = 0

    def add(self, option: EvaluatedOption) -> None:
        """Fold one evaluated option into the running distillation."""
        self.count += 1
        if self.keep_options:
            self._kept.append(option)
            return
        # Mirror the `best` / `min_penalty_option` tie-breaking so a
        # distilled result answers both recommendations identically.
        # The running leaders' keys are cached as scalars and the
        # lexicographic compare is spelled out: this runs once per
        # candidate over 100k+ candidate sweeps, where tuple building
        # and the `tco.total` property chain dominate the fold.
        tco = option.tco
        option_id = option.option_id
        total = (tco.ha_infra_cost + tco.ha_labor_cost) + tco.expected_penalty
        if (
            self._best is None
            or total < self._best_total
            or (total == self._best_total and option_id < self._best_id)
        ):
            self._best = option
            self._best_total = total
            self._best_id = option_id
        penalty = tco.expected_penalty
        if self._min_penalty is None or penalty < self._lowest_penalty:
            self._lowest_penalty = penalty
            self._min_penalty = option
            self._min_penalty_ha_cost = tco.ha_infra_cost + tco.ha_labor_cost
            self._min_penalty_id = option_id
        elif penalty == self._lowest_penalty:
            ha_cost = tco.ha_infra_cost + tco.ha_labor_cost
            if ha_cost < self._min_penalty_ha_cost or (
                ha_cost == self._min_penalty_ha_cost
                and option_id < self._min_penalty_id
            ):
                self._min_penalty = option
                self._min_penalty_ha_cost = ha_cost
                self._min_penalty_id = option_id

    def fold_winners(
        self, winners: Iterable[EvaluatedOption], *, evaluated: int
    ) -> None:
        """Fold a block pre-ranked by a bulk-evaluating backend.

        ``winners`` are the block's minimum-total and minimum-(penalty,
        ha-cost) candidates, selected under exactly the tie-break rules
        :meth:`add` applies — so folding just the winners leaves the
        running recommendations identical to folding every candidate,
        while ``evaluated`` keeps the count honest.  Only meaningful in
        distilled mode, where losing candidates carry no information.
        """
        if self.keep_options:
            raise OptimizerError(
                "fold_winners requires a distilled accumulator "
                "(keep_options=False)"
            )
        self.count += evaluated
        for option in winners:
            self.count -= 1
            self.add(option)

    def finish(self) -> "OptimizationResult":
        """Seal the accumulator into an :class:`OptimizationResult`."""
        if self.keep_options:
            stored = tuple(self._kept)
        elif self._best is None:
            stored = ()
        elif self._min_penalty is self._best:
            stored = (self._best,)
        else:
            stored = tuple(
                sorted(
                    (self._best, self._min_penalty),
                    key=lambda option: option.option_id,
                )
            )
        return OptimizationResult(
            options=stored,
            evaluations=self.count,
            pruned=self.pruned,
            space_size=self.space_size,
            strategy=self.strategy,
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one optimization sweep.

    Attributes
    ----------
    options:
        Evaluated options, in paper order.  Pruned searches omit the
        candidates they skipped.
    evaluations:
        How many candidates were actually evaluated.
    pruned:
        How many candidates were skipped by pruning (0 for brute force).
    space_size:
        Total ``k^n`` candidates in the space.
    strategy:
        Which search produced this result (``"brute-force"``,
        ``"pruned"``, ``"branch-and-bound"``).
    """

    options: tuple[EvaluatedOption, ...]
    evaluations: int
    pruned: int
    space_size: int
    strategy: str

    def __post_init__(self) -> None:
        if not self.options:
            raise OptimizerError("optimization produced no evaluated options")

    @classmethod
    def from_stream(
        cls,
        options: Iterable[EvaluatedOption],
        *,
        space_size: int,
        strategy: str,
        pruned: int = 0,
        keep_options: bool = True,
    ) -> "OptimizationResult":
        """Build a result from a lazily evaluated option stream.

        With ``keep_options=True`` this materializes the full table —
        identical to constructing the result directly.  With
        ``keep_options=False`` the stream is consumed in a single pass
        that tracks only the running recommendations, so million-
        candidate spaces never hold more than two options in memory:
        ``options`` then contains just the distilled ``best`` and
        ``min_penalty_option`` rows while ``evaluations`` still counts
        every candidate seen.  Callers that need to interleave work with
        the sweep (progress events, cancellation checks) can drive a
        :class:`ResultAccumulator` directly.
        """
        accumulator = ResultAccumulator(
            space_size=space_size,
            strategy=strategy,
            pruned=pruned,
            keep_options=keep_options,
        )
        add = accumulator.add
        for option in options:
            add(option)
        return accumulator.finish()

    def iter_options(self) -> Iterator[EvaluatedOption]:
        """Iterate the evaluated option table in paper order."""
        return iter(self.options)

    @property
    def best(self) -> EvaluatedOption:
        """Eq. 6: the minimum-TCO option (ties broken by option id)."""
        return min(self.options, key=lambda option: (option.tco.total, option.option_id))

    @property
    def min_penalty_option(self) -> EvaluatedOption:
        """Cheapest option among those with the lowest expected penalty.

        When any option meets the SLA this is the cheapest SLA-meeting
        option — the paper's minimum-slippage-risk recommendation.
        """
        lowest_penalty = min(option.tco.expected_penalty for option in self.options)
        eligible = [
            option
            for option in self.options
            if option.tco.expected_penalty == lowest_penalty
        ]
        return min(eligible, key=lambda option: (option.tco.ha_cost, option.option_id))

    def option(self, option_id: int) -> EvaluatedOption:
        """Look up an evaluated option by its paper-order id."""
        for candidate in self.options:
            if candidate.option_id == option_id:
                return candidate
        raise OptimizerError(
            f"option #{option_id} was not evaluated "
            f"(it may have been pruned); evaluated ids: "
            f"{[option.option_id for option in self.options]}"
        )

    def by_label(self) -> dict[str, EvaluatedOption]:
        """Evaluated options keyed by their human label."""
        return {option.label: option for option in self.options}

    def savings_vs(self, reference: EvaluatedOption) -> float:
        """Fractional TCO savings of ``best`` against a reference option.

        The paper's headline number compares the recommendation with the
        deployed ad-hoc option (#8): ``1 - TCO_best / TCO_reference``.
        """
        if reference.tco.total <= 0.0:
            raise OptimizerError(
                "cannot compute savings against a zero-cost reference"
            )
        return 1.0 - self.best.tco.total / reference.tco.total

    def describe(self) -> str:
        """Multi-line option table plus the two recommendations."""
        lines = [
            f"{self.strategy}: evaluated {self.evaluations}/{self.space_size} "
            f"candidates ({self.pruned} pruned)"
        ]
        lines.extend(option.describe() for option in self.options)
        lines.append(f"recommended (min TCO):     {self.best.label}")
        lines.append(f"recommended (min penalty): {self.min_penalty_option.label}")
        return "\n".join(lines)
