"""Branch-and-bound search (extension beyond the paper's pruning).

The paper's pruning (§III-C) only clips supersets of SLA-meeting
permutations.  This module adds an admissible lower bound usable on any
*partial* assignment, which also prunes hopeless branches that never
meet the SLA:

- cost bound: ``C_HA`` of the clusters assigned so far (remaining
  clusters can always choose ``none`` at zero cost);
- penalty bound: the system uptime can never exceed
  ``prod_i Pr[C_i up]`` (failover downtime is non-negative), so an
  optimistic uptime — assigned clusters at their actual up-probability,
  unassigned clusters at their best available choice — yields a lower
  bound on expected penalty for every completion of the branch.

Both bounds are simultaneously valid, so ``cost_so_far + penalty_lb``
never overestimates the best completion and the search is exact.

The per-(cluster, technology) facts the bounds consume (up probability,
``C_HA`` share) come straight from the shared
:class:`~repro.optimizer.engine.EvaluationEngine` profile cache, and
leaf evaluation routes through the engine too — a search restarted with
a shared engine re-derives its bounds for free and never re-evaluates a
candidate.
"""

from __future__ import annotations

import math

from repro.optimizer.engine import EvaluationEngine, engine_for
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.optimizer.space import OptimizationProblem


def branch_and_bound_optimize(
    problem: OptimizationProblem,
    *,
    engine: EvaluationEngine | None = None,
) -> OptimizationResult:
    """Exact minimum-TCO search with lower-bound pruning.

    Returns a result whose ``best`` matches brute force on TCO value.
    ``options`` contains only the fully evaluated candidates; ``pruned``
    counts the complete assignments clipped inside pruned subtrees.
    """
    engine = engine_for(problem, engine)
    space = engine.space
    choices = engine.profiles
    n = space.cluster_count

    # Suffix products of the best (largest) up-probability per cluster:
    # best_suffix[i] bounds the availability contribution of clusters i..n-1.
    best_up = [
        max(choice.availability.up_probability for choice in row)
        for row in choices
    ]
    best_suffix = [1.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        best_suffix[i] = best_up[i] * best_suffix[i + 1]

    # Candidates left below a node at depth i (product of remaining ks).
    leaves_below = [1] * (n + 1)
    for i in range(n - 1, -1, -1):
        leaves_below[i] = len(choices[i]) * leaves_below[i + 1]

    options: list[EvaluatedOption] = []
    incumbent = math.inf
    pruned_leaves = 0
    assignment: list[int] = []

    def penalty_lower_bound(up_product: float) -> float:
        """Lower-bound the penalty of any completion of the branch."""
        optimistic_uptime = min(up_product, 1.0)
        hours = problem.contract.expected_slippage_hours(optimistic_uptime)
        return problem.contract.penalty.monthly_penalty(hours)

    def descend(depth: int, cost_so_far: float, up_product: float) -> None:
        nonlocal incumbent, pruned_leaves
        if depth == n:
            indices = tuple(assignment)
            # Paper-order ids so reported options line up with the
            # other searches.
            option = engine.evaluate(space.paper_order_id(indices), indices)
            options.append(option)
            incumbent = min(incumbent, option.tco.total)
            return
        for choice in choices[depth]:
            new_cost = cost_so_far + choice.ha_cost
            new_up = up_product * choice.availability.up_probability
            bound = new_cost + penalty_lower_bound(new_up * best_suffix[depth + 1])
            if bound > incumbent:
                pruned_leaves += leaves_below[depth + 1]
                continue
            assignment.append(choice.index)
            descend(depth + 1, new_cost, new_up)
            assignment.pop()

    descend(0, 0.0, 1.0)
    options.sort(key=lambda option: option.option_id)
    return OptimizationResult(
        options=tuple(options),
        evaluations=len(options),
        pruned=pruned_leaves,
        space_size=space.size,
        strategy="branch-and-bound",
    )
