"""Cross-request megabatching for the vectorized evaluation hot path.

Concurrent broker requests that resolve to the *same* cached engine all
pay numpy dispatch separately: each request's
:class:`~repro.optimizer.engine.VectorBackend` evaluates its own
``chunk_size`` block even though the per-candidate math is identical.
The :class:`MegabatchStacker` stacks those blocks: the first caller to
arrive for an engine becomes the batch *leader*, waits a bounded window
for the engine's other registered participants, evaluates everyone's
candidate rows in **one** vector pass, and splices each caller's slice
back in submission order.

Because every vectorized operation in the combine is elementwise along
the candidate axis (see ``VectorBackend._vector_payloads``), evaluating
rows stacked from several requests produces byte-identical payloads to
evaluating each request alone — megabatching changes wall-clock cost,
never results.

Flush triggers (whichever comes first):

- every registered participant for the engine has contributed a span
  (a solo request therefore flushes immediately — no added latency
  without concurrency);
- the stacked row count reaches ``max_rows`` (a soft bound: spans
  already accepted are never split, so a flush may overshoot by at most
  one block per concurrent caller);
- the batching window expires.

Callers must pair :meth:`MegabatchStacker.join` / ``leave`` around the
request's engine use so the participant count reflects only requests
that will actually contribute spans; the broker does this while holding
its cache-entry shared lease.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.errors import OptimizerError
from repro.obs import clock
from repro.obs.trace import new_span_id


@dataclass(frozen=True)
class MegabatchConfig:
    """Tunables for one :class:`MegabatchStacker`.

    ``window_seconds`` bounds how long a leader waits for co-scheduled
    requests; ``max_rows`` bounds (softly) how many candidate rows one
    vector pass may stack.
    """

    window_seconds: float = 0.005
    max_rows: int = 65536

    def __post_init__(self) -> None:
        if self.window_seconds < 0.0:
            raise OptimizerError(
                f"window_seconds must be >= 0, got {self.window_seconds!r}"
            )
        if self.max_rows < 1:
            raise OptimizerError(
                f"max_rows must be >= 1, got {self.max_rows!r}"
            )


@dataclass
class MegabatchStats:
    """Flush accounting for one :class:`MegabatchStacker`."""

    batches: int = 0
    spans: int = 0
    rows: int = 0
    max_spans_in_batch: int = 0

    def snapshot(self) -> "MegabatchStats":
        """A point-in-time copy — stackers mutate their live stats."""
        return replace(self)

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters."""
        return {
            "batches": self.batches,
            "spans": self.spans,
            "rows": self.rows,
            "max_spans_in_batch": self.max_spans_in_batch,
        }


class _Batch:
    """One in-flight stacked evaluation for one engine uid.

    ``block_id`` (set at creation when the stacker traces) is the span
    id the leader's ``megabatch_block`` span will be recorded under;
    followers cite it in their ``megabatch_follow`` spans, so a reader
    can join follower traces to the leader block that actually ran
    their rows.
    """

    __slots__ = (
        "cond", "rows", "spans", "flushing", "done", "results", "error",
        "block_id",
    )

    def __init__(self, block_id: str | None = None) -> None:
        self.cond = threading.Condition()
        self.rows: list = []
        self.spans = 0
        self.flushing = False
        self.done = False
        self.results = None
        self.error: BaseException | None = None
        self.block_id = block_id


class MegabatchStacker:
    """Stack concurrent same-engine vector blocks into one pass.

    Thread-safe.  ``observer`` (optional, assignable) is called with the
    span count of every flushed batch — the server wires its
    ``repro_megabatch_size`` histogram through it.  ``tracer``
    (optional, assignable — the broker session attaches its own) makes
    leaders record a ``megabatch_block`` span around the stacked vector
    pass and followers a ``megabatch_follow`` span citing the leader's
    block id, so cross-request attribution survives the stacking.
    """

    def __init__(
        self,
        config: MegabatchConfig | None = None,
        observer=None,
    ) -> None:
        self.config = config or MegabatchConfig()
        self.observer = observer
        self.tracer = None
        self.stats = MegabatchStats()
        self._lock = threading.Lock()
        self._participants: dict[int, int] = {}
        self._batches: dict[int, _Batch] = {}

    # -- participant registration -------------------------------------------

    def join(self, uid: int) -> None:
        """Register one concurrent request against engine ``uid``."""
        with self._lock:
            self._participants[uid] = self._participants.get(uid, 0) + 1

    def leave(self, uid: int) -> None:
        """Deregister one request (pairs with :meth:`join`)."""
        with self._lock:
            count = self._participants.get(uid, 0) - 1
            if count <= 0:
                self._participants.pop(uid, None)
            else:
                self._participants[uid] = count

    def participants(self, uid: int) -> int:
        """Currently registered requests for ``uid``."""
        with self._lock:
            return self._participants.get(uid, 0)

    # -- stacked evaluation ---------------------------------------------------

    def evaluate(self, uid: int, evaluator, index_rows):
        """Evaluate ``index_rows`` through a (possibly shared) batch.

        ``evaluator`` maps a list of candidate index rows to a list of
        payloads, one per row, order-preserving.  Returns exactly the
        payloads for this caller's rows, in this caller's order,
        byte-identical to ``evaluator(index_rows)`` run alone.
        """
        if not index_rows:
            return []
        count = len(index_rows)
        tracer = self.tracer
        trace_ctx = tracer.current() if tracer is not None else None
        while True:
            with self._lock:
                batch = self._batches.get(uid)
                if batch is None:
                    batch = _Batch(
                        block_id=new_span_id() if tracer is not None else None
                    )
                    self._batches[uid] = batch
                    leader = True
                else:
                    leader = False
            with batch.cond:
                if batch.flushing or batch.done:
                    # Raced with the batch's flush: start over on a
                    # fresh batch (the leader has already detached this
                    # one from the map, or is about to).
                    continue
                start = len(batch.rows)
                batch.rows.extend(index_rows)
                batch.spans += 1
                if not leader:
                    wait_started = (
                        clock.perf_counter() if trace_ctx is not None else 0.0
                    )
                    batch.cond.notify_all()  # wake the leader to re-check
                    while not batch.done:
                        batch.cond.wait()
                    if batch.error is not None:
                        raise batch.error
                    results = batch.results[start : start + count]
                    if trace_ctx is not None:
                        # Followers ride the leader's pass: their span
                        # covers the wait and cites the leader's block
                        # (a span in the *leader's* trace).
                        tracer.record(
                            "megabatch_follow",
                            parent=trace_ctx,
                            start=wait_started,
                            end=clock.perf_counter(),
                            attrs={
                                "leader_block": batch.block_id or "",
                                "rows": str(count),
                            },
                        )
                    return results
                # Leader: wait out the window (or an early-flush trigger),
                # then take ownership of the stacked rows.
                deadline = clock.monotonic() + self.config.window_seconds
                while True:
                    # Lockless snapshot of the participant count: dict
                    # reads are atomic under the GIL, and taking
                    # ``self._lock`` here while holding ``batch.cond``
                    # would invert ``leave``'s lock order.
                    expected = self._participants.get(uid, 0)
                    if batch.spans >= max(expected, 1):
                        break
                    if len(batch.rows) >= self.config.max_rows:
                        break
                    remaining = deadline - clock.monotonic()
                    if remaining <= 0.0:
                        break
                    batch.cond.wait(remaining)
                batch.flushing = True
                rows = batch.rows
                spans = batch.spans
            # Condition released: detach the batch so new arrivals start
            # a fresh one, then evaluate outside every lock.
            with self._lock:
                if self._batches.get(uid) is batch:
                    del self._batches[uid]
            eval_started = clock.perf_counter() if trace_ctx is not None else 0.0
            try:
                results = evaluator(rows)
                if len(results) != len(rows):
                    raise OptimizerError(
                        f"megabatch evaluator returned {len(results)} "
                        f"payloads for {len(rows)} rows"
                    )
            except BaseException as exc:
                with batch.cond:
                    batch.error = exc
                    batch.done = True
                    batch.cond.notify_all()
                raise
            if trace_ctx is not None:
                # The leader's block span carries the batch's minted
                # span id, so followers' ``leader_block`` attrs join to
                # it across traces.
                tracer.record(
                    "megabatch_block",
                    parent=trace_ctx,
                    start=eval_started,
                    end=clock.perf_counter(),
                    span_id=batch.block_id,
                    attrs={"spans": str(spans), "rows": str(len(rows))},
                )
            with self._lock:
                self.stats.batches += 1
                self.stats.spans += spans
                self.stats.rows += len(rows)
                if spans > self.stats.max_spans_in_batch:
                    self.stats.max_spans_in_batch = spans
            observer = self.observer
            if observer is not None:
                observer(spans)
            with batch.cond:
                batch.results = results
                batch.done = True
                batch.cond.notify_all()
            return results[start : start + count]
