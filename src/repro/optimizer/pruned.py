"""The paper's §III-C superset pruning search.

The search walks permutations in order of how many components are
clustered.  Whenever a permutation meets the SLA in expectation, every
*superset extension* of it — same technologies on the same clusters,
plus HA on additional clusters — is pruned without evaluation: its
``C_HA`` can only be larger and its penalty cannot drop below zero, so
its TCO cannot beat the already-evaluated subset.  (In the case study,
after option #5 meets the SLA, option #8 is clipped.)

Correctness does not even require that more HA raises uptime: with
non-negative per-cluster HA costs,

    TCO(superset) >= C_HA(superset) >= C_HA(subset) = TCO(subset),

and the subset was evaluated earlier, so the optimum is preserved.
"""

from __future__ import annotations

from repro.optimizer.engine import EvaluationEngine, engine_for
from repro.optimizer.result import OptimizationResult
from repro.optimizer.space import ChoiceNames, OptimizationProblem


def _is_superset_extension(candidate: ChoiceNames, met: ChoiceNames) -> bool:
    """True when ``candidate`` extends ``met`` with extra clustered layers.

    Extension means: every technology ``met`` chose is chosen identically
    by ``candidate``, and ``candidate`` clusters at least one component
    that ``met`` left bare.
    """
    extends = False
    for met_choice, candidate_choice in zip(met, candidate):
        if met_choice == "none":
            if candidate_choice != "none":
                extends = True
        elif candidate_choice != met_choice:
            return False
    return extends


def pruned_optimize(
    problem: OptimizationProblem,
    *,
    engine: EvaluationEngine | None = None,
) -> OptimizationResult:
    """Run the pruned search; returns only the evaluated options.

    The result's ``best`` equals the brute-force optimum (see module
    docstring); ``pruned`` counts the skipped candidates.  Pass a shared
    ``engine`` to reuse evaluations cached by earlier searches over the
    same problem.
    """
    engine = engine_for(problem, engine)
    space = engine.space
    options = []
    sla_meeting: list[ChoiceNames] = []
    pruned_count = 0
    for option_id, indices in enumerate(space.candidates_in_paper_order(), start=1):
        names = space.choice_names(indices)
        if any(_is_superset_extension(names, met) for met in sla_meeting):
            pruned_count += 1
            continue
        option = engine.evaluate(option_id, indices)
        options.append(option)
        if option.meets_sla:
            sla_meeting.append(names)
    return OptimizationResult(
        options=tuple(options),
        evaluations=len(options),
        pruned=pruned_count,
        space_size=space.size,
        strategy="pruned",
    )
