"""The candidate space of HA-enabled system variants.

A *candidate* assigns one HA technology (possibly ``none``) to each
cluster of the base architecture: ``k^n`` permutations for ``n``
clusters with ``k`` choices each (§II-C).

Candidates are enumerated in **paper order** — by increasing number of
clustered components, matching how §III-C's pruned search walks the
space and how the paper numbers its case-study options (#1 = no HA,
#2-#4 = one layer clustered, #5-#7 = two layers, #8 = all three).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.catalog.base import HATechnology
from repro.catalog.registry import TechnologyRegistry
from repro.cost.rates import LaborRate
from repro.errors import OptimizerError
from repro.sla.contract import Contract
from repro.topology.system import SystemTopology

#: A candidate's identity: the chosen technology name per cluster,
#: in chain order, e.g. ``("none", "raid-1", "dual-gateway")``.
ChoiceNames = tuple[str, ...]


@dataclass(frozen=True)
class OptimizationProblem:
    """Everything the broker needs to optimize one customer request.

    Parameters
    ----------
    base_system:
        The base architecture.  Any existing HA is stripped: the broker
        explores variants of the *bare* topology.
    registry:
        The HA technology catalog to draw per-cluster choices from.
    contract:
        Uptime SLA plus penalty clause.
    labor_rate:
        Prices each technology's sustainment hours.
    """

    base_system: SystemTopology
    registry: TechnologyRegistry
    contract: Contract
    labor_rate: LaborRate

    @property
    def bare_system(self) -> SystemTopology:
        """The base architecture with all HA removed."""
        return self.base_system.strip_ha()

    def space(self) -> "CandidateSpace":
        """Build the candidate space for this problem."""
        return CandidateSpace(self.bare_system, self.registry)


@dataclass
class CandidateSpace:
    """The ``k^n`` candidate permutations over a bare topology."""

    bare_system: SystemTopology
    registry: TechnologyRegistry
    _choices: tuple[tuple[HATechnology, ...], ...] = field(init=False)

    def __post_init__(self) -> None:
        self._choices = tuple(
            self.registry.choices_for_cluster(cluster)
            for cluster in self.bare_system.clusters
        )
        for cluster, choices in zip(self.bare_system.clusters, self._choices):
            if not choices:
                raise OptimizerError(
                    f"cluster {cluster.name!r} has an empty choice set"
                )

    @property
    def cluster_count(self) -> int:
        """``n``: number of clusters in the chain."""
        return len(self.bare_system.clusters)

    @property
    def choice_counts(self) -> tuple[int, ...]:
        """Per-cluster ``k`` values (includes the ``none`` choice)."""
        return tuple(len(choices) for choices in self._choices)

    @property
    def size(self) -> int:
        """Total candidates: the product of the per-cluster ``k`` values."""
        return math.prod(self.choice_counts)

    def choices_for(self, cluster_index: int) -> tuple[HATechnology, ...]:
        """The choice set of the ``i``-th cluster (``none`` first)."""
        return self._choices[cluster_index]

    def candidates_in_paper_order(self) -> Iterator[tuple[int, ...]]:
        """Yield candidate index vectors ordered the paper's way.

        Primary key: number of clustered (non-``none``) components,
        ascending.  Secondary key: which components are clustered —
        later clusters in the chain first, matching the paper's #2 =
        network, #3 = storage, #4 = compute numbering.  Tertiary key:
        the per-cluster choice indices, so multiple technologies on the
        same subset enumerate deterministically.
        """
        everything = itertools.product(*(range(k) for k in self.choice_counts))

        def paper_key(indices: tuple[int, ...]) -> tuple:
            clustered = [i for i, choice in enumerate(indices) if choice != 0]
            # Negating the indices sorts "rightmost clusters first"
            # within the same subset size.
            subset_key = tuple(-i for i in sorted(clustered))
            return (len(clustered), subset_key, indices)

        return iter(sorted(everything, key=paper_key))

    def choice_names(self, indices: tuple[int, ...]) -> ChoiceNames:
        """Map an index vector to the per-cluster technology names."""
        return tuple(
            self._choices[i][choice].name for i, choice in enumerate(indices)
        )

    def instantiate(self, indices: tuple[int, ...]) -> SystemTopology:
        """Apply the chosen technologies to the bare topology."""
        if len(indices) != self.cluster_count:
            raise OptimizerError(
                f"expected {self.cluster_count} choice indices, got {len(indices)}"
            )
        clusters = []
        for i, (cluster, choice) in enumerate(zip(self.bare_system.clusters, indices)):
            technologies = self._choices[i]
            if not 0 <= choice < len(technologies):
                raise OptimizerError(
                    f"choice index {choice} out of range for cluster "
                    f"{cluster.name!r} (k={len(technologies)})"
                )
            clusters.append(technologies[choice].apply(cluster))
        return SystemTopology(
            name=self.bare_system.name,
            clusters=tuple(clusters),
        )
