"""The candidate space of HA-enabled system variants.

A *candidate* assigns one HA technology (possibly ``none``) to each
cluster of the base architecture: ``k^n`` permutations for ``n``
clusters with ``k`` choices each (§II-C).

Candidates are enumerated in **paper order** — by increasing number of
clustered components, matching how §III-C's pruned search walks the
space and how the paper numbers its case-study options (#1 = no HA,
#2-#4 = one layer clustered, #5-#7 = two layers, #8 = all three).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.catalog.base import HATechnology
from repro.catalog.registry import TechnologyRegistry
from repro.cost.rates import LaborRate
from repro.errors import OptimizerError
from repro.sla.contract import Contract
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology

#: A candidate's identity: the chosen technology name per cluster,
#: in chain order, e.g. ``("none", "raid-1", "dual-gateway")``.
ChoiceNames = tuple[str, ...]


@dataclass(frozen=True)
class OptimizationProblem:
    """Everything the broker needs to optimize one customer request.

    Parameters
    ----------
    base_system:
        The base architecture.  Any existing HA is stripped: the broker
        explores variants of the *bare* topology.
    registry:
        The HA technology catalog to draw per-cluster choices from.
    contract:
        Uptime SLA plus penalty clause.
    labor_rate:
        Prices each technology's sustainment hours.
    """

    base_system: SystemTopology
    registry: TechnologyRegistry
    contract: Contract
    labor_rate: LaborRate

    @property
    def bare_system(self) -> SystemTopology:
        """The base architecture with all HA removed."""
        return self.base_system.strip_ha()

    def space(self) -> "CandidateSpace":
        """Build the candidate space for this problem."""
        return CandidateSpace(self.bare_system, self.registry)


@dataclass
class CandidateSpace:
    """The ``k^n`` candidate permutations over a bare topology."""

    bare_system: SystemTopology
    registry: TechnologyRegistry
    _choices: tuple[tuple[HATechnology, ...], ...] = field(init=False)
    _applied: dict[tuple[int, int], ClusterSpec] = field(init=False)
    _subset_offsets: dict[tuple[int, ...], int] = field(init=False)

    def __post_init__(self) -> None:
        self._choices = tuple(
            self.registry.choices_for_cluster(cluster)
            for cluster in self.bare_system.clusters
        )
        self._applied = {}
        self._subset_offsets = {}
        for cluster, choices in zip(self.bare_system.clusters, self._choices):
            if not choices:
                raise OptimizerError(
                    f"cluster {cluster.name!r} has an empty choice set"
                )

    @property
    def cluster_count(self) -> int:
        """``n``: number of clusters in the chain."""
        return len(self.bare_system.clusters)

    @property
    def choice_counts(self) -> tuple[int, ...]:
        """Per-cluster ``k`` values (includes the ``none`` choice)."""
        return tuple(len(choices) for choices in self._choices)

    @property
    def size(self) -> int:
        """Total candidates: the product of the per-cluster ``k`` values."""
        return math.prod(self.choice_counts)

    def choices_for(self, cluster_index: int) -> tuple[HATechnology, ...]:
        """The choice set of the ``i``-th cluster (``none`` first)."""
        return self._choices[cluster_index]

    def _subsets_in_paper_order(self, size: int) -> list[tuple[int, ...]]:
        """Clustered-position subsets of one size, rightmost-first."""
        # Negating the positions sorts "rightmost clusters first"
        # within the same subset size.
        return sorted(
            itertools.combinations(range(self.cluster_count), size),
            key=lambda subset: tuple(-i for i in subset),
        )

    def candidates_in_paper_order(self) -> Iterator[tuple[int, ...]]:
        """Yield candidate index vectors ordered the paper's way.

        Primary key: number of clustered (non-``none``) components,
        ascending.  Secondary key: which components are clustered —
        later clusters in the chain first, matching the paper's #2 =
        network, #3 = storage, #4 = compute numbering.  Tertiary key:
        the per-cluster choice indices, so multiple technologies on the
        same subset enumerate deterministically.

        The enumeration is lazy — candidates are generated directly in
        paper order rather than materializing and sorting all ``k^n``
        vectors, so streaming sweeps over huge spaces stay O(n) memory.
        """
        counts = self.choice_counts
        for size in range(self.cluster_count + 1):
            for subset in self._subsets_in_paper_order(size):
                axes = tuple(
                    range(1, counts[i]) if i in subset else range(0, 1)
                    for i in range(self.cluster_count)
                )
                yield from itertools.product(*axes)

    def paper_order_id(self, indices: tuple[int, ...]) -> int:
        """The 1-based paper-order id of one candidate, in O(n).

        Computed arithmetically from memoized per-subset offsets —
        callers that label sparse candidate sets (the advisor, the
        branch-and-bound leaves) never have to enumerate the space.
        """
        if len(indices) != self.cluster_count:
            raise OptimizerError(
                f"expected {self.cluster_count} choice indices, got {len(indices)}"
            )
        counts = self.choice_counts
        for i, choice in enumerate(indices):
            if not 0 <= choice < counts[i]:
                raise OptimizerError(
                    f"choice index {choice} out of range for cluster "
                    f"{self.bare_system.clusters[i].name!r} (k={counts[i]})"
                )
        if not self._subset_offsets:
            next_id = 1
            for size in range(self.cluster_count + 1):
                for subset in self._subsets_in_paper_order(size):
                    width = math.prod(counts[i] - 1 for i in subset)
                    if width:
                        self._subset_offsets[subset] = next_id
                        next_id += width
        clustered = tuple(i for i, choice in enumerate(indices) if choice != 0)
        rank = 0
        for position in clustered:
            rank = rank * (counts[position] - 1) + (indices[position] - 1)
        return self._subset_offsets[clustered] + rank

    def choice_names(self, indices: tuple[int, ...]) -> ChoiceNames:
        """Map an index vector to the per-cluster technology names."""
        return tuple(
            self._choices[i][choice].name for i, choice in enumerate(indices)
        )

    def applied_cluster(self, cluster_index: int, choice_index: int) -> ClusterSpec:
        """The ``i``-th cluster with one technology applied, memoized.

        HA technologies are pure transformations, so each of the ``n*k``
        (cluster, choice) pairings is applied at most once per space; the
        evaluation engine assembles every candidate from these shared
        specs instead of re-applying technologies ``k^n`` times.
        """
        key = (cluster_index, choice_index)
        applied = self._applied.get(key)
        if applied is None:
            cluster = self.bare_system.clusters[cluster_index]
            technologies = self._choices[cluster_index]
            if not 0 <= choice_index < len(technologies):
                raise OptimizerError(
                    f"choice index {choice_index} out of range for cluster "
                    f"{cluster.name!r} (k={len(technologies)})"
                )
            applied = technologies[choice_index].apply(cluster)
            self._applied[key] = applied
        return applied

    def instantiate(self, indices: tuple[int, ...]) -> SystemTopology:
        """Apply the chosen technologies to the bare topology."""
        if len(indices) != self.cluster_count:
            raise OptimizerError(
                f"expected {self.cluster_count} choice indices, got {len(indices)}"
            )
        return SystemTopology(
            name=self.bare_system.name,
            clusters=tuple(
                self.applied_cluster(i, choice)
                for i, choice in enumerate(indices)
            ),
        )
