"""The brokered optimization: enumerate ``k^n`` HA variants, pick min TCO.

- :class:`~repro.optimizer.space.OptimizationProblem` — inputs: base
  architecture, technology registry, contract, labor rate.
- :class:`~repro.optimizer.space.CandidateSpace` — the ``k^n`` candidate
  permutations, ordered the way the paper numbers its options.
- :mod:`~repro.optimizer.engine` — the shared, cached, incremental
  candidate evaluation engine every strategy routes through.
- :mod:`~repro.optimizer.brute_force` — exhaustive evaluation (Eq. 6).
- :mod:`~repro.optimizer.pruned` — the paper's §III-C superset pruning.
- :mod:`~repro.optimizer.branch_bound` — an admissible branch-and-bound
  extension with availability-based lower bounds.
- :mod:`~repro.optimizer.pareto` — cost/uptime Pareto frontier.
"""

from repro.optimizer.advisor import UpgradeAdvice, UpgradeMove, advise_upgrades
from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.constraints import (
    ConstrainedResult,
    constrained_optimize,
    is_feasible,
)
from repro.optimizer.engine import ChoiceProfile, EngineStats, EvaluationEngine
from repro.optimizer.brute_force import brute_force_optimize, iter_brute_force
from repro.optimizer.pareto import pareto_frontier
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.optimizer.space import CandidateSpace, OptimizationProblem

__all__ = [
    "CandidateSpace",
    "ChoiceProfile",
    "EngineStats",
    "EvaluatedOption",
    "EvaluationEngine",
    "OptimizationProblem",
    "OptimizationResult",
    "ConstrainedResult",
    "iter_brute_force",
    "UpgradeAdvice",
    "UpgradeMove",
    "advise_upgrades",
    "constrained_optimize",
    "is_feasible",
    "branch_and_bound_optimize",
    "brute_force_optimize",
    "pareto_frontier",
    "pruned_optimize",
]
