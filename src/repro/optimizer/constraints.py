"""Constrained optimization: budgets and uptime floors.

Eq. 6 minimizes unconstrained TCO.  Procurement reality adds side
constraints the paper leaves implicit:

- a **budget**: ``C_HA <= B`` dollars/month for the HA line item;
- an **uptime floor**: ``U_s >= U_min`` regardless of penalty math
  (e.g. a reputational requirement stricter than the contract).

``constrained_optimize`` evaluates the space (brute force — constraints
break the superset-pruning argument, since the cheapest feasible option
may be a superset of an SLA-meeting infeasible one) and minimizes TCO
over the feasible set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.optimizer.space import OptimizationProblem


@dataclass(frozen=True)
class ConstrainedResult:
    """Feasible subset of an optimization sweep plus the winner."""

    unconstrained: OptimizationResult
    feasible: tuple[EvaluatedOption, ...]
    max_ha_budget: float | None
    min_uptime: float | None

    def __post_init__(self) -> None:
        if not self.feasible:
            raise OptimizerError(
                "no option satisfies the constraints: "
                f"budget={self.max_ha_budget!r}, min_uptime={self.min_uptime!r}"
            )

    @property
    def best(self) -> EvaluatedOption:
        """Minimum-TCO feasible option."""
        return min(
            self.feasible, key=lambda option: (option.tco.total, option.option_id)
        )

    @property
    def constraint_cost(self) -> float:
        """Monthly dollars the constraints add over the free optimum.

        Zero when the unconstrained optimum is itself feasible.
        """
        return self.best.tco.total - self.unconstrained.best.tco.total

    def describe(self) -> str:
        """Feasible-set summary."""
        parts = []
        if self.max_ha_budget is not None:
            parts.append(f"C_HA <= ${self.max_ha_budget:,.2f}/mo")
        if self.min_uptime is not None:
            parts.append(f"U_s >= {self.min_uptime * 100:g}%")
        lines = [
            f"Constrained optimization ({' and '.join(parts) or 'no constraints'}):",
            f"  feasible options: {[option.option_id for option in self.feasible]}",
            f"  best feasible:    {self.best.label} "
            f"(TCO ${self.best.tco.total:,.2f}/mo)",
            f"  constraint cost:  ${self.constraint_cost:,.2f}/mo over the "
            f"free optimum ({self.unconstrained.best.label})",
        ]
        return "\n".join(lines)


def is_feasible(
    option: EvaluatedOption,
    max_ha_budget: float | None = None,
    min_uptime: float | None = None,
) -> bool:
    """Does an option satisfy the given constraints?"""
    if max_ha_budget is not None and option.tco.ha_cost > max_ha_budget:
        return False
    if min_uptime is not None and option.tco.uptime_probability < min_uptime:
        return False
    return True


def constrained_optimize(
    problem: OptimizationProblem,
    max_ha_budget: float | None = None,
    min_uptime: float | None = None,
) -> ConstrainedResult:
    """Minimize TCO subject to a budget and/or an uptime floor.

    Raises :class:`OptimizerError` when nothing is feasible — with the
    constraints echoed so the caller can see which to relax.
    """
    if max_ha_budget is not None and max_ha_budget < 0.0:
        raise OptimizerError(
            f"max_ha_budget must be >= 0, got {max_ha_budget!r}"
        )
    if min_uptime is not None and not 0.0 <= min_uptime <= 1.0:
        raise OptimizerError(
            f"min_uptime must be in [0, 1], got {min_uptime!r}"
        )
    sweep = brute_force_optimize(problem)
    feasible = tuple(
        option
        for option in sweep.options
        if is_feasible(option, max_ha_budget, min_uptime)
    )
    return ConstrainedResult(
        unconstrained=sweep,
        feasible=feasible,
        max_ha_budget=max_ha_budget,
        min_uptime=min_uptime,
    )
