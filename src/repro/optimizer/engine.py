"""Shared, cached, incremental candidate evaluation (the Eq. 6 hot path).

Every optimizer strategy ultimately evaluates candidates from the same
``k^n`` space, and the naive path rebuilds a full :class:`SystemTopology`
and re-runs the entire availability model and TCO computation for every
single candidate.  The :class:`EvaluationEngine` exploits the model's
structure instead: Eq. 1-5 factor into per-cluster terms, so the engine

1. precomputes one :class:`~repro.availability.model.ClusterTerms` and
   :class:`~repro.cost.tco.ClusterCostTerms` per (cluster, technology)
   pairing — ``n * k`` cluster-level computations per problem;
2. evaluates each candidate by recombining the ``n`` cached factor sets
   in O(n), bit-identical to the direct evaluation (the recombination
   performs the same float operations in the same order);
3. memoizes finished :class:`EvaluatedOption`s keyed by their
   :data:`~repro.optimizer.space.ChoiceNames`, so searches restarted
   over the same problem (pruned after brute force, branch-and-bound
   re-runs, advisor what-if sweeps) never evaluate a candidate twice.

The ``mode="direct"`` fallback routes evaluation through the legacy
full-topology path (:func:`evaluate_candidate_direct`) — same results,
useful for equivalence testing and as an escape hatch.

Batch evaluation (:meth:`EvaluationEngine.evaluate_many` and everything
built on it) runs on a pluggable **evaluation backend**:

- ``"serial"`` (default) evaluates inline on the calling thread;
- ``"thread"`` cuts the stream into chunks fanned out over a
  :class:`~concurrent.futures.ThreadPoolExecutor` (the chunking/ordering
  harness; GIL-bound for this pure-Python float math);
- ``"process"`` ships chunks to a
  :class:`~concurrent.futures.ProcessPoolExecutor` of long-lived
  workers.  Workers hold the pickled per-(cluster, technology) term
  tables of every engine they serve, keyed by engine uid and fetched
  once per (worker, engine) pairing through the pool registry's table
  channel, so chunks carry only ``(option_id, indices)`` pairs — no
  per-chunk re-pickling of the precomputes.  Workers recombine the same
  cached :class:`~repro.availability.model.ClusterTerms` /
  :class:`~repro.cost.tco.ClusterCostTerms` values with the same float
  operations in the same order as the in-process combine, so results
  are bit-identical;
- ``"vector"`` gathers each chunk's candidate index tuples into
  per-cluster column arrays and runs the Eq. 1-5 math with **numpy**
  vectorized across the candidate axis, looping over the small cluster
  axis in exactly the order the scalar combine uses.  float64
  elementwise operations are IEEE-correctly-rounded like Python floats
  and every accumulation is explicit (never ``np.sum``'s pairwise
  reassociation), so vector results are bit-identical to serial too.
  numpy is an optional extra (``pip install .[vector]``); without it
  the backend degrades to serial evaluation with a RuntimeWarning.

Worker pools are **not** owned by individual engines: thread/process
backends lease ref-counted executors from a shared
:class:`~repro.optimizer.pools.PoolRegistry` (by default the
process-global one), so N live engines — including every engine a
broker's cross-request cache retains — share one process pool whose
workers evaluate for all of them.  The last engine to close a leased
pool shuts it down deterministically.

Every backend yields results in submission order, making output
deterministic regardless of parallelism.  The legacy ``parallel=True``
flag is an alias for ``backend="thread"``; the ``REPRO_BACKEND``
environment variable overrides the *default* backend (explicit
``backend=`` arguments always win), which is how CI smokes the process
and vector paths across the whole suite.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.availability.model import (
    AvailabilityReport,
    ClusterAvailability,
    ClusterTerms,
    availability_values_from_terms,
    cluster_availability_terms,
    evaluate_availability,
)
from repro.cost.rates import LaborRate
from repro.cost.tco import (
    ClusterCostTerms,
    TCOBreakdown,
    assemble_breakdown,
    cluster_cost_terms,
    compute_tco,
    tco_values_from_terms,
)
from repro.errors import EngineBackendError, OptimizerError, ReproError
from repro.obs import clock
from repro.optimizer.pools import PoolRegistry, default_registry, worker_payload
from repro.optimizer.result import EvaluatedOption, assemble_option
from repro.optimizer.space import (
    CandidateSpace,
    ChoiceNames,
    OptimizationProblem,
)
from repro.sla.contract import Contract
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology

#: Supported evaluation modes.
ENGINE_MODES = ("incremental", "direct")

#: Supported evaluation backends for batch entry points.
ENGINE_BACKENDS = ("serial", "thread", "process", "vector")

#: Backends that evaluate from shipped/gathered term tables and therefore
#: require ``mode="incremental"`` (direct mode builds full topologies).
TERM_TABLE_BACKENDS = ("process", "vector")

#: Environment variable naming the default backend (CI smoke hook).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Monotonic engine ids — keys for worker-held term tables in shared
#: pools.  Never reused, so a stale worker cache entry can never alias a
#: younger engine's tables.
_ENGINE_UIDS = itertools.count(1)

#: Shared no-op context manager for untraced backend chunks.
#: nullcontext is reusable and reentrant, so one instance serves every
#: block without a per-block allocation.
_NULL_SPAN = contextlib.nullcontext()


def _import_numpy():
    """The optional numpy dependency, or ``None`` (patchable in tests)."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def resolve_backend(
    backend: str | None, *, parallel: bool = False, mode: str = "incremental"
) -> str:
    """Resolve a backend request to a concrete :data:`ENGINE_BACKENDS` name.

    ``None`` falls back to the :data:`BACKEND_ENV_VAR` environment
    variable (empty string = unset), then to the legacy ``parallel``
    flag (``True`` → ``"thread"``).  The env-var default never forces a
    term-table backend (:data:`TERM_TABLE_BACKENDS`) onto a
    ``mode="direct"`` engine — direct mode evaluates full topologies,
    which neither worker processes nor the vectorized combine can do
    from term tables — whereas an *explicit* such request with direct
    mode is rejected at engine construction.
    """
    if backend is None:
        env = os.environ.get(BACKEND_ENV_VAR) or None
        if env is not None and env not in ENGINE_BACKENDS:
            raise OptimizerError(
                f"invalid {BACKEND_ENV_VAR}={env!r}; valid: {ENGINE_BACKENDS}"
            )
        if env in TERM_TABLE_BACKENDS and mode == "direct":
            env = None
        backend = env if env is not None else (
            "thread" if parallel else "serial"
        )
    if backend not in ENGINE_BACKENDS:
        raise OptimizerError(
            f"unknown evaluation backend {backend!r}; valid: {ENGINE_BACKENDS}"
        )
    return backend


def evaluate_candidate_direct(
    problem: OptimizationProblem,
    space: CandidateSpace,
    option_id: int,
    indices: tuple[int, ...],
) -> EvaluatedOption:
    """Instantiate and fully evaluate one candidate permutation.

    This is the reference (pre-engine) evaluation path: build the whole
    topology, run the availability model end to end, run the TCO model
    end to end.  The engine's incremental path is tested bit-identical
    against it.
    """
    system = space.instantiate(indices)
    availability = evaluate_availability(system)
    tco = compute_tco(system, problem.contract, problem.labor_rate)
    return EvaluatedOption(
        option_id=option_id,
        choice_names=space.choice_names(indices),
        system=system,
        availability=availability,
        tco=tco,
        meets_sla=problem.contract.sla.is_met_by(availability.uptime_probability),
        cluster_names=space.bare_system.cluster_names,
    )


@dataclass(frozen=True, slots=True)
class ChoiceProfile:
    """Cached facts about one (cluster, technology) pairing.

    ``ha_cost`` is the pairing's full monthly ``C_HA`` share (infra plus
    priced labor) — the branch-and-bound lower bounds consume it
    directly.
    """

    index: int
    name: str
    applied: ClusterSpec
    availability: ClusterTerms
    cost: ClusterCostTerms
    ha_cost: float


@dataclass
class EngineStats:
    """Work accounting for one engine instance.

    Attributes
    ----------
    candidate_evaluations:
        Total evaluation requests answered (hits + misses).
    cache_hits:
        Requests answered from the ``ChoiceNames``-keyed result cache.
    incremental_combines:
        Cache misses answered by the O(n) term recombination.
    topology_evaluations:
        Cache misses answered by the legacy full-topology path (only in
        ``mode="direct"``).  The whole point of the engine is keeping
        this at zero.
    cluster_term_computations:
        Per-(cluster, technology) precomputations done at construction
        (``n * k`` — the only cluster-level availability math the
        incremental mode ever runs).
    """

    candidate_evaluations: int = 0
    cache_hits: int = 0
    incremental_combines: int = 0
    topology_evaluations: int = 0
    cluster_term_computations: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache."""
        if self.candidate_evaluations == 0:
            return 0.0
        return self.cache_hits / self.candidate_evaluations

    def snapshot(self) -> "EngineStats":
        """A point-in-time copy — engines mutate their live stats."""
        return replace(self)

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters (wire envelopes, cache dashboards)."""
        return {
            "candidate_evaluations": self.candidate_evaluations,
            "cache_hits": self.cache_hits,
            "incremental_combines": self.incremental_combines,
            "topology_evaluations": self.topology_evaluations,
            "cluster_term_computations": self.cluster_term_computations,
        }

    def describe(self) -> str:
        """One-line summary for CLI/benchmark output."""
        return (
            f"evaluations={self.candidate_evaluations} "
            f"(cache hits {self.cache_hits}, "
            f"combines {self.incremental_combines}, "
            f"full-topology {self.topology_evaluations}; "
            f"{self.cluster_term_computations} cluster terms precomputed)"
        )


# -- evaluation backends ----------------------------------------------------

@dataclass(frozen=True)
class _ProcessPrecompute:
    """The picklable slice of an engine a worker process needs.

    Shipped to each worker exactly once via the pool initializer;
    afterwards chunks carry only ``(option_id, indices)`` pairs.  The
    tables hold the same :class:`ClusterTerms` / :class:`ClusterCostTerms`
    instances the parent's profiles hold (floats pickle exactly), and
    :meth:`evaluate` performs the same operations in the same order as
    :meth:`EvaluationEngine._combine`, so worker results are
    bit-identical to in-process evaluation.
    """

    system_name: str
    cluster_names: tuple[str, ...]
    availability_terms: tuple[tuple[ClusterTerms, ...], ...]
    cost_terms: tuple[tuple[ClusterCostTerms, ...], ...]
    contract: Contract
    labor_rate: LaborRate

    @classmethod
    def from_engine(cls, engine: "EvaluationEngine") -> "_ProcessPrecompute":
        bare = engine.space.bare_system
        return cls(
            system_name=bare.name,
            cluster_names=bare.cluster_names,
            availability_terms=tuple(
                tuple(profile.availability for profile in row)
                for row in engine.profiles
            ),
            cost_terms=tuple(
                tuple(profile.cost for profile in row)
                for row in engine.profiles
            ),
            contract=engine.problem.contract,
            labor_rate=engine.problem.labor_rate,
        )

    def evaluate(self, indices: tuple[int, ...]) -> tuple:
        """One candidate's evaluation as a flat float payload.

        Runs the *shared* Eq. 1-5 value helpers
        (:func:`availability_values_from_terms`,
        :func:`tco_values_from_terms`) — the same functions the
        in-process combine uses, in the same order, so every float is
        bit-identical — and returns
        ``(breakdown, failover, contributions, tco_values, meets_sla)``
        as plain tuples.  Pickling nested (slotted) dataclasses costs a
        state dict per object; flat primitive tuples keep the per-
        candidate IPC cost an order of magnitude lower, which is what
        lets the process backend win wall-clock.  The parent rebuilds
        report objects lazily from the exact same values.
        """
        if len(indices) != len(self.availability_terms):
            raise OptimizerError(
                f"expected {len(self.availability_terms)} choice indices, "
                f"got {len(indices)}"
            )
        breakdown, failover, contributions = availability_values_from_terms(
            tuple(
                self.availability_terms[i][choice]
                for i, choice in enumerate(indices)
            )
        )
        uptime = 1.0 - (breakdown + failover)
        tco_values = tco_values_from_terms(
            tuple(self.cost_terms[i][choice] for i, choice in enumerate(indices)),
            uptime,
            self.contract,
            self.labor_rate,
        )
        return (
            breakdown,
            failover,
            tuple(contributions),
            tco_values,
            self.contract.sla.is_met_by(uptime),
        )


def _process_worker_chunk(
    uid: int, chunk: list[tuple[int, tuple[int, ...]]], traced: bool = False
):
    """Evaluate one chunk of cache misses inside a worker process.

    Workers in a shared pool serve many engines; ``uid`` selects which
    engine's published term tables to recombine (fetched through the
    pool registry's table channel on first sight, locally cached after).

    With ``traced`` the return value becomes ``(payloads, seconds,
    pid)`` — the worker ships its compute *duration*, never timestamps,
    because ``perf_counter`` zero points are not comparable across
    processes; the parent re-anchors it when splicing the chunk span.
    The untraced call shape (and its pickled bytes) is unchanged, so
    tracing-off behaviour is byte-identical to before.
    """
    state = worker_payload(uid)
    if not traced:
        return [state.evaluate(indices) for _, indices in chunk]
    started = clock.perf_counter()
    payloads = [state.evaluate(indices) for _, indices in chunk]
    return payloads, clock.perf_counter() - started, os.getpid()


class SerialBackend:
    """Inline evaluation on the calling thread (the default)."""

    name = "serial"

    def evaluate_stream(
        self,
        engine: "EvaluationEngine",
        enumerated: Iterable[tuple[int, tuple[int, ...]]],
    ) -> Iterator[EvaluatedOption]:
        for option_id, indices in enumerated:
            yield engine.evaluate(option_id, indices)

    def close(self) -> None:
        """Nothing to release."""


class _PooledBackend:
    """The shared chunking/ordering harness behind thread/process backends.

    The input stream is cut into ``engine.chunk_size`` blocks submitted
    to an executor with a bounded in-flight window (the stream is never
    drained eagerly, so huge candidate spaces stay O(window) in memory),
    and chunk results are yielded strictly in submission order — the
    output sequence is identical to serial evaluation.

    The executor is **leased**, not owned: on first use the backend
    acquires a ref-counted :class:`~repro.optimizer.pools.PoolHandle`
    from the engine's :class:`~repro.optimizer.pools.PoolRegistry`, so
    every engine asking the registry for the same (kind, width) shares
    one pool of long-lived workers; :meth:`close` releases the lease and
    the registry shuts the pool down when the last holder leaves.  A
    worker failure surfaces as
    :class:`~repro.errors.EngineBackendError` (or the original
    :class:`~repro.errors.ReproError`) and *invalidates* the lease so
    the next stream — from this engine or any sharing engine — starts
    from a fresh pool instead of a broken one.
    """

    name = "pooled"

    def __init__(self) -> None:
        self._handle = None
        self._degraded = False
        self._pool_lock = threading.Lock()

    @property
    def _pool(self):
        """The leased executor, or ``None`` (kept for introspection)."""
        handle = self._handle
        return None if handle is None else handle.pool

    # Subclass hooks -------------------------------------------------------

    def _default_workers(self) -> int:
        raise NotImplementedError

    def _on_acquire(self, engine: "EvaluationEngine") -> None:
        """Post-lease setup (the process backend publishes its tables)."""

    def _on_release(self) -> None:
        """Pre-release teardown (the process backend retracts tables)."""

    def _submit(self, engine: "EvaluationEngine", pool, block):
        raise NotImplementedError

    def _collect(self, engine: "EvaluationEngine", token) -> list[EvaluatedOption]:
        raise NotImplementedError

    # Shared harness -------------------------------------------------------

    def _ensure_pool(self, engine: "EvaluationEngine"):
        with self._pool_lock:
            if self._degraded:
                return None
            if self._handle is None:
                workers = engine.max_workers or self._default_workers()
                try:
                    handle = engine.pool_registry.acquire(self.name, workers)
                except (NotImplementedError, ImportError, OSError,
                        PermissionError, ValueError) as exc:
                    warnings.warn(
                        f"{self.name} evaluation backend unavailable on this "
                        f"platform ({exc}); degrading to serial evaluation",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    self._degraded = True
                    return None
                self._handle = handle
                try:
                    self._on_acquire(engine)
                except BaseException:
                    self._handle = None
                    handle.release()
                    raise
            return self._handle.pool

    def evaluate_stream(
        self,
        engine: "EvaluationEngine",
        enumerated: Iterable[tuple[int, tuple[int, ...]]],
    ) -> Iterator[EvaluatedOption]:
        pool = self._ensure_pool(engine)
        if pool is None:
            yield from SerialBackend().evaluate_stream(engine, enumerated)
            return

        def chunked() -> Iterator[list[tuple[int, tuple[int, ...]]]]:
            block: list[tuple[int, tuple[int, ...]]] = []
            for item in enumerated:
                block.append(item)
                if len(block) >= engine.chunk_size:
                    yield block
                    block = []
            if block:
                yield block

        max_in_flight = 2 * getattr(pool, "_max_workers", 1)
        pending: deque = deque()
        for block in chunked():
            pending.append(self._submit(engine, pool, block))
            while len(pending) >= max_in_flight:
                yield from self._collect(engine, pending.popleft())
        while pending:
            yield from self._collect(engine, pending.popleft())

    def _worker_failure(self, exc: Exception) -> EngineBackendError:
        """Wrap a pool failure and invalidate the lease for every holder."""
        self._release_pool(invalidate=True)
        return EngineBackendError(
            f"{self.name} evaluation backend worker failed: "
            f"{type(exc).__name__}: {exc}"
        )

    def _release_pool(self, *, invalidate: bool = False) -> None:
        with self._pool_lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            # Retract before releasing: the registry's table channel
            # lives only while process-pool leases are outstanding.
            self._on_release()
            handle.release(invalidate=invalidate)

    def close(self) -> None:
        """Release the pool lease; idempotent, re-acquired lazily.

        The shared executor itself shuts down only when the last engine
        leasing it closes.
        """
        self._release_pool()


class ThreadBackend(_PooledBackend):
    """Chunked evaluation on a thread pool (the legacy ``parallel=True``).

    Workers call straight into :meth:`EvaluationEngine.evaluate`, so the
    result cache and stats are shared under the engine's lock.  The
    combine is pure-Python float math, so this buys little wall-clock
    under the GIL — it exists as the chunking/ordering harness and for
    workloads that release the GIL.
    """

    name = "thread"

    def _default_workers(self) -> int:
        return min(32, (os.cpu_count() or 1) + 4)

    def _submit(self, engine: "EvaluationEngine", pool, block):
        return pool.submit(engine._evaluate_chunk, block)

    def _collect(self, engine: "EvaluationEngine", token) -> list[EvaluatedOption]:
        try:
            return token.result()
        except ReproError:
            raise
        except Exception as exc:
            raise self._worker_failure(exc) from exc


def _plan_block(
    engine: "EvaluationEngine", block: list[tuple[int, tuple[int, ...]]]
) -> tuple[list, list]:
    """Probe the result cache for one chunk, in submission order.

    Returns ``(plan, misses)``: ``plan`` holds the chunk's options with
    ``None`` placeholders where an evaluated payload must be spliced in;
    ``misses`` carries the ``(option_id, indices, names)`` bookkeeping
    for those placeholders, in the same order they must be evaluated.
    Shared by the process backend (misses travel to pool workers) and
    the vector backend (misses are gathered into numpy columns).
    """
    if not engine.cache:
        # Cache off: every candidate is a miss and carries no cache key.
        # One stats bump for the whole chunk replaces per-candidate
        # probe/lock round-trips — the difference is measurable at 100k+
        # candidates per sweep.
        with engine._lock:
            engine.stats.candidate_evaluations += len(block)
        return [None] * len(block), [
            (option_id, indices, None) for option_id, indices in block
        ]
    plan: list = []
    misses: list = []
    for option_id, indices in block:
        names, cached = engine._cache_probe(option_id, indices)
        if cached is not None:
            plan.append(cached)
        else:
            plan.append(None)
            misses.append((option_id, indices, names))
    return plan, misses


def _splice_payloads(
    engine: "EvaluationEngine", plan: list, misses: list, payloads: list
) -> list:
    """Fill a plan's placeholders with evaluated payloads, in order.

    Options are assembled without the engine lock (payloads are this
    chunk's private data), then stats and cache admissions land under
    one lock acquisition per chunk instead of one per candidate.
    """
    build = engine._build_option
    if len(misses) == len(plan):
        # All-miss chunk — the norm for cache-off sweeps and cold
        # catalogs.  Skip the placeholder scan and build straight from
        # the miss list; with the cache off there is nothing to admit,
        # so the chunk costs one lock acquisition and no side lists.
        plan[:] = [
            build(option_id, indices, names, *payload)
            for (option_id, indices, names), payload in zip(misses, payloads)
        ]
        with engine._lock:
            engine.stats.incremental_combines += len(plan)
            if engine.cache:
                results = engine._results
                for (_, _, names), option in zip(misses, plan):
                    results.setdefault(names, option)
        return plan
    filled = iter(zip(misses, payloads))
    admitted: list = []
    for position, slot in enumerate(plan):
        if slot is None:
            (option_id, indices, names), payload = next(filled)
            breakdown, failover, contributions, tco_values, meets = payload
            option = build(
                option_id, indices, names,
                breakdown, failover, contributions, tco_values, meets,
            )
            plan[position] = option
            admitted.append((names, option))
    with engine._lock:
        engine.stats.incremental_combines += len(admitted)
        if engine.cache:
            results = engine._results
            for names, option in admitted:
                results.setdefault(names, option)
    return plan


@dataclass
class _ProcessToken:
    """One submitted chunk: cache hits resolved in-parent, misses in-pool.

    ``plan``/``misses`` come from :func:`_plan_block`; ``future`` is the
    pool-side evaluation of the misses (``None`` for all-hit chunks).
    ``traced`` is ``(tracer, parent context, submit perf_counter)``
    when the chunk was submitted inside an active span — contextvars do
    not cross the pool, so the parent context rides the token and the
    chunk span is recorded at collect time.
    """

    plan: list
    misses: list
    future: object | None
    traced: tuple | None = None


class ProcessBackend(_PooledBackend):
    """Chunked evaluation on a pool of long-lived worker processes.

    The parent resolves result-cache hits (and counts stats) at
    submission time; only cache misses travel to the workers, as bare
    ``(option_id, indices)`` pairs tagged with the engine's uid.  The
    pool is leased from the shared registry — its workers may be serving
    several engines at once — so on acquiring the lease the backend
    *publishes* the engine's pickled term tables through the registry's
    table channel, and workers fetch-and-cache them keyed by uid on
    first sight.  Workers recombine those tables and return
    ``(availability, tco, meets_sla)`` payloads; the parent splices them
    back into submission order, wraps them into lazy-topology
    :class:`EvaluatedOption`s and feeds the shared result cache — so a
    process-backed engine's cache/stats behaviour is identical to the
    serial engine's, and replayed streams are pure cache hits.

    On platforms without working ``fork``/``spawn`` support the backend
    degrades to serial evaluation with a :class:`RuntimeWarning`.
    """

    name = "process"

    def __init__(self) -> None:
        super().__init__()
        self._published: tuple[PoolRegistry, int] | None = None

    def _default_workers(self) -> int:
        return os.cpu_count() or 1

    def _on_acquire(self, engine: "EvaluationEngine") -> None:
        engine.pool_registry.publish(
            engine.uid, _ProcessPrecompute.from_engine(engine)
        )
        self._published = (engine.pool_registry, engine.uid)

    def _on_release(self) -> None:
        published, self._published = self._published, None
        if published is not None:
            registry, uid = published
            registry.retract(uid)

    def _submit(self, engine: "EvaluationEngine", pool, block):
        plan, misses = _plan_block(engine, block)
        future = None
        traced = None
        if misses:
            rows = [(option_id, indices) for option_id, indices, _ in misses]
            tracer = engine.tracer
            ctx = tracer.current() if tracer is not None else None
            if ctx is None:
                future = pool.submit(_process_worker_chunk, engine.uid, rows)
            else:
                future = pool.submit(
                    _process_worker_chunk, engine.uid, rows, True
                )
                traced = (tracer, ctx, clock.perf_counter())
        return _ProcessToken(
            plan=plan, misses=misses, future=future, traced=traced
        )

    def _collect(self, engine: "EvaluationEngine", token) -> list[EvaluatedOption]:
        if token.future is None:
            return token.plan
        try:
            payloads = token.future.result()
        except ReproError:
            # Library errors pickled back from the worker keep their type.
            raise
        except Exception as exc:
            raise self._worker_failure(exc) from exc
        if token.traced is not None:
            payloads = self._record_chunk_spans(token, payloads)
        return _splice_payloads(engine, token.plan, token.misses, payloads)

    @staticmethod
    def _record_chunk_spans(token: _ProcessToken, result) -> list:
        """Re-parent a traced chunk's worker timing onto the span tree.

        The chunk span covers submit→collect in the parent's clock; the
        worker's compute duration is anchored backwards from the collect
        time (clamped into the chunk window — worker and parent
        ``perf_counter`` readings are not directly comparable), so the
        nested worker span stays monotonic inside its parent.
        """
        payloads, worker_seconds, worker_pid = result
        tracer, ctx, submitted = token.traced
        collected = clock.perf_counter()
        chunk = tracer.record(
            "backend_chunk",
            parent=ctx,
            start=submitted,
            end=collected,
            attrs={"backend": "process", "rows": str(len(token.misses))},
        )
        tracer.record(
            "worker_evaluate",
            parent=chunk.context,
            start=max(submitted, collected - worker_seconds),
            end=collected,
            attrs={"worker_pid": str(worker_pid)},
        )
        return payloads


class VectorBackend:
    """Numpy-vectorized combine over candidate index arrays (in-process).

    Each chunk's cache misses are gathered into per-cluster index
    columns, and the Eq. 1-5 math runs vectorized **across the candidate
    axis** while looping over the small cluster/technology axis in
    exactly the order the scalar combine uses: explicit ``ones``/
    ``zeros`` accumulators multiplied/added one cluster at a time —
    never ``np.sum``/``np.prod``, whose pairwise reassociation would
    change rounding.  float64 elementwise operations are IEEE
    correctly-rounded exactly like Python float arithmetic, so every
    value is bit-identical to :class:`SerialBackend`; contract math
    (slippage, penalty, labor cost, SLA check) is vectorized end-to-end
    through the clauses' ``*_vector`` methods, which replay the scalar
    op order exactly — no per-candidate Python call survives in the
    combine.  Results are wrapped through the engine's
    worker-payload path, so cache and stats behaviour matches the
    process backend (and replays are pure hits).

    numpy is an optional extra (``pip install .[vector]``).  When it is
    missing, evaluation degrades to serial with a
    :class:`RuntimeWarning` — same contract as a pooled backend on a
    platform without worker support.  No pool is involved; the backend
    holds only per-engine column tables built once from the profiles.
    """

    name = "vector"

    def __init__(self) -> None:
        self._degraded = False
        self._numpy = None
        self._tables = None
        self._tables_uid: int | None = None

    def _ensure_numpy(self):
        if self._degraded:
            return None
        if self._numpy is None:
            numpy = _import_numpy()
            if numpy is None:
                warnings.warn(
                    "vector evaluation backend unavailable (numpy is not "
                    "installed; pip install .[vector]); degrading to "
                    "serial evaluation",
                    RuntimeWarning,
                    stacklevel=4,
                )
                self._degraded = True
                return None
            self._numpy = numpy
        return self._numpy

    def _column_tables(self, engine: "EvaluationEngine", np):
        """Per-cluster per-choice value columns, built once per engine.

        Row ``i`` holds six float64 arrays over cluster ``i``'s choices:
        availability up/active-up/failover-rate and cost infra/labor-
        hours/base — ``np.array`` conversion of Python floats is exact,
        and fancy-indexed gathers preserve bits, so the tables introduce
        no rounding of their own.
        """
        if self._tables is None or self._tables_uid != engine.uid:
            self._tables = tuple(
                (
                    np.array([p.availability.up_probability for p in row]),
                    np.array([p.availability.active_up_probability for p in row]),
                    np.array([p.availability.failover_rate for p in row]),
                    np.array([p.cost.ha_infra_cost for p in row]),
                    np.array([p.cost.ha_labor_hours for p in row]),
                    np.array([p.cost.base_infra_cost for p in row]),
                )
                for row in engine.profiles
            )
            self._tables_uid = engine.uid
        return self._tables

    def evaluate_stream(
        self,
        engine: "EvaluationEngine",
        enumerated: Iterable[tuple[int, tuple[int, ...]]],
    ) -> Iterator[EvaluatedOption]:
        np = self._ensure_numpy()
        if np is None:
            yield from SerialBackend().evaluate_stream(engine, enumerated)
            return
        tables = self._column_tables(engine, np)
        # Cut blocks with islice instead of a per-candidate append loop:
        # the enumeration is consumed in C, which matters at 100k+
        # candidates per sweep.
        chunk_size = engine.chunk_size
        pending = iter(enumerated)
        while block := list(itertools.islice(pending, chunk_size)):
            yield from self._evaluate_block(engine, np, tables, block)

    def _evaluate_block(
        self, engine: "EvaluationEngine", np, tables, block
    ) -> list:
        """Probe the cache per candidate, vector-evaluate the misses.

        When the engine carries a megabatch stacker, the block's misses
        are stacked with other concurrent requests on the same engine
        and evaluated in one vector pass — byte-identical either way,
        since every candidate's math is elementwise.
        """
        if not engine.cache:
            # Cache off: the whole block is fresh vector lanes, so skip
            # the placeholder plan and the per-miss bookkeeping tuples
            # entirely — stats, evaluation and assembly run straight off
            # the block.
            with engine._lock:
                engine.stats.candidate_evaluations += len(block)
            rows = [indices for _, indices in block]
            payloads = self._block_payloads(engine, np, tables, rows)
            build = engine._build_option
            plan = [
                build(option_id, indices, None, *payload)
                for (option_id, indices), payload in zip(block, payloads)
            ]
            with engine._lock:
                engine.stats.incremental_combines += len(plan)
            return plan
        plan, misses = _plan_block(engine, block)
        if misses:
            rows = [ind for _, ind, _ in misses]
            payloads = self._block_payloads(engine, np, tables, rows)
            _splice_payloads(engine, plan, misses, payloads)
        return plan

    def _block_payloads(self, engine: "EvaluationEngine", np, tables, rows):
        """Evaluate one block's index rows, stacked across requests when
        the engine carries a megabatch stacker."""
        stacker = engine.megabatch
        tracer = engine.tracer
        if tracer is None:
            # Untraced hot path: one attribute load and this check per
            # 1024-candidate block — no span/attrs construction at all.
            span = _NULL_SPAN
        else:
            span = tracer.child_span(
                "backend_chunk",
                attrs={
                    "backend": "vector",
                    "rows": str(len(rows)),
                    "megabatch": "true" if stacker is not None else "false",
                },
            )
        try:
            with span:
                if stacker is not None:
                    return stacker.evaluate(
                        engine.uid,
                        lambda stacked: self._vector_payloads(
                            engine, np, tables, stacked
                        ),
                        rows,
                    )
                return self._vector_payloads(engine, np, tables, rows)
        except ReproError:
            raise
        except Exception as exc:
            raise EngineBackendError(
                f"vector evaluation backend failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def _vector_arrays(self, engine, np, tables, index_rows):
        """Eq. 1-5 column arrays for a block of candidate index rows.

        Mirrors :func:`availability_values_from_terms` and
        :func:`tco_values_from_terms` operation for operation with the
        candidate axis vectorized: ``1.0 * x`` and ``0.0 + x`` are exact
        in IEEE arithmetic, so seeding the accumulators with
        ``ones``/``zeros`` reproduces the scalar helpers' ``1.0``/``0``
        starting values bit-for-bit.
        """
        n = engine.space.cluster_count
        # np.array rejects ragged rows outright, so a single shape check
        # on the converted block replaces a per-candidate len() loop.
        try:
            idx = np.array(index_rows, dtype=np.intp)
        except ValueError as exc:
            raise OptimizerError(
                f"expected {n} choice indices per candidate: {exc}"
            ) from exc
        if idx.ndim != 2 or idx.shape[1] != n:
            width = idx.shape[1] if idx.ndim == 2 else "ragged"
            raise OptimizerError(
                f"expected {n} choice indices, got {width}"
            )
        count = idx.shape[0]
        cols = [idx[:, i] for i in range(n)]

        up = np.ones(count)
        for i in range(n):
            up = up * tables[i][0][cols[i]]
        contributions = []
        for i in range(n):
            others_quiet = np.ones(count)
            for j in range(n):
                if j != i:
                    others_quiet = others_quiet * tables[j][1][cols[j]]
            contributions.append(tables[i][2][cols[i]] * others_quiet)
        failover = np.zeros(count)
        for contribution in contributions:
            failover = failover + contribution
        breakdown = 1.0 - up
        uptime = 1.0 - (breakdown + failover)

        infra = np.zeros(count)
        labor_hours = np.zeros(count)
        base = np.zeros(count)
        for i in range(n):
            infra = infra + tables[i][3][cols[i]]
            labor_hours = labor_hours + tables[i][4][cols[i]]
            base = base + tables[i][5][cols[i]]

        # Contract math stays on the candidate axis too: slippage,
        # penalty and labor-cost vectors come from the clauses' own
        # ``*_vector`` methods, which perform the scalar helpers' float
        # operations in the same order (see repro.sla.penalty).
        contract = engine.problem.contract
        labor_rate = engine.problem.labor_rate
        slippage = contract.expected_slippage_hours_vector(uptime)
        penalty = contract.penalty.monthly_penalty_vector(slippage)
        labor_cost = labor_rate.monthly_cost_vector(labor_hours)
        meets = contract.sla.is_met_by_vector(uptime)
        return (
            breakdown, failover, contributions, uptime,
            infra, labor_cost, penalty, base, slippage, meets,
        )

    def _vector_payloads(self, engine, np, tables, index_rows):
        """Flat worker-style payloads for a block of cache misses."""
        if not index_rows:
            return []
        (
            breakdown, failover, contributions, uptime,
            infra, labor_cost, penalty, base, slippage, meets,
        ) = self._vector_arrays(engine, np, tables, index_rows)

        # ``tolist()`` converts float64 to Python floats bit-exactly (and
        # payload floats must pickle as plain floats); transposing the
        # contribution columns with ``zip`` keeps the per-candidate loop
        # free of numpy scalar indexing, which would otherwise dominate.
        contribution_rows = zip(*(c.tolist() for c in contributions))
        payloads = []
        for (
            breakdown_k,
            failover_k,
            up_k,
            infra_k,
            labor_k,
            penalty_k,
            base_k,
            slippage_k,
            meets_k,
            contribs_k,
        ) in zip(
            breakdown.tolist(),
            failover.tolist(),
            uptime.tolist(),
            infra.tolist(),
            labor_cost.tolist(),
            penalty.tolist(),
            base.tolist(),
            slippage.tolist(),
            meets.tolist(),
            contribution_rows,
        ):
            payloads.append((
                breakdown_k,
                failover_k,
                contribs_k,
                (infra_k, labor_k, penalty_k, base_k, up_k, slippage_k),
                meets_k,
            ))
        return payloads

    def sweep_distilled(self, engine: "EvaluationEngine", enumerated, accumulator) -> None:
        """Distilled exhaustive sweep: rank whole blocks in bulk.

        The per-candidate streaming path assembles an
        :class:`EvaluatedOption` for every candidate even when the
        consumer only wants the two distilled recommendations.  Here
        each block is ranked with numpy — argmin over the Eq. 5 totals
        and the (penalty, ha-cost) lexicographic minimum, in exactly
        the scalar fold's tie-break order — and only the block winners
        are assembled and folded, so no per-candidate Python call
        survives the combine.  Results are bit-identical to the scalar
        fold (same floats compared under the same rules; argmin's
        first-occurrence tie-break equals the fold's lowest-id rule
        because paper-order enumeration ascends by option id).

        Falls back to the generic per-candidate fold when numpy is
        missing, when the result cache is on (admissions need every
        option), or when a megabatch stacker is attached (stacking
        trades block-local ranking for cross-request amortization).
        """
        np = self._ensure_numpy()
        if np is None or engine.cache or engine.megabatch is not None:
            add = accumulator.add
            for option in self.evaluate_stream(engine, enumerated):
                add(option)
            return
        tables = self._column_tables(engine, np)
        chunk_size = engine.chunk_size
        pending = iter(enumerated)
        while block := list(itertools.islice(pending, chunk_size)):
            self._distill_block(engine, np, tables, block, accumulator)

    def _distill_block(self, engine, np, tables, block, accumulator) -> None:
        """Rank one block's candidates and fold its winners."""
        with engine._lock:
            engine.stats.candidate_evaluations += len(block)
        rows = [indices for _, indices in block]
        try:
            (
                breakdown, failover, contributions, uptime,
                infra, labor_cost, penalty, base, slippage, meets,
            ) = self._vector_arrays(engine, np, tables, rows)
        except ReproError:
            raise
        except Exception as exc:
            raise EngineBackendError(
                f"vector evaluation backend failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        # Same float ops, same order, as the accumulator's scalar fold:
        # ha_cost = infra + labor, total = ha_cost + penalty.
        ha_cost = infra + labor_cost
        totals = ha_cost + penalty
        best_i = int(np.argmin(totals))
        min_penalty_rows = np.flatnonzero(penalty == penalty.min())
        if min_penalty_rows.shape[0] == 1:
            penalty_i = int(min_penalty_rows[0])
        else:
            penalty_i = int(
                min_penalty_rows[np.argmin(ha_cost[min_penalty_rows])]
            )
        winners = []
        build = engine._build_option
        # Ascending order keeps the fold's lowest-id tie-breaks exact.
        for i in sorted({best_i, penalty_i}):
            option_id, indices = block[i]
            winners.append(build(
                option_id, indices, None,
                float(breakdown[i]),
                float(failover[i]),
                tuple(float(c[i]) for c in contributions),
                (
                    float(infra[i]), float(labor_cost[i]),
                    float(penalty[i]), float(base[i]),
                    float(uptime[i]), float(slippage[i]),
                ),
                bool(meets[i]),
            ))
        with engine._lock:
            engine.stats.incremental_combines += len(winners)
        accumulator.fold_winners(winners, evaluated=len(block))

    def close(self) -> None:
        """Nothing pooled to release; column tables die with the backend."""


_BACKEND_TYPES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "vector": VectorBackend,
}


@dataclass
class EvaluationEngine:
    """Evaluates candidates of one problem from per-cluster caches.

    Parameters
    ----------
    problem:
        The optimization problem this engine serves.  All cached results
        are valid only for this exact problem instance; strategies guard
        against accidental cross-problem reuse.
    mode:
        ``"incremental"`` (default) recombines cached per-cluster terms
        in O(n); ``"direct"`` falls back to full-topology evaluation.
        Both produce bit-identical options.
    cache:
        Memoize finished options keyed by ``ChoiceNames`` so repeated
        searches over the same problem never re-evaluate a candidate.
        Cache and stats are guarded by a lock only for the thread
        backend; otherwise all cache mutation happens on the consuming
        thread and an engine must not have :meth:`evaluate` called from
        multiple threads concurrently.
    parallel:
        Legacy alias: ``parallel=True`` defaults ``backend`` to
        ``"thread"``.  After construction the flag reflects whether the
        resolved backend is non-serial.
    backend:
        Which of :data:`ENGINE_BACKENDS` drives :meth:`evaluate_many`
        batches (``"serial"``, ``"thread"``, ``"process"`` or
        ``"vector"``).  ``None`` resolves through
        :func:`resolve_backend` (environment default, then the
        ``parallel`` flag).  Rebind a live engine with
        :meth:`set_backend`; per-candidate :meth:`evaluate` calls always
        run in-process regardless of backend.
    max_workers / chunk_size:
        Pool sizing knobs for the thread/process backends (the vector
        backend uses ``chunk_size`` as its gather width).
    pool_registry:
        Where thread/process backends lease their executors.  ``None``
        (default) means the process-global
        :func:`~repro.optimizer.pools.default_registry`, so engines
        share pools automatically; pass a private
        :class:`~repro.optimizer.pools.PoolRegistry` to isolate a pool
        population.
    """

    problem: OptimizationProblem
    mode: str = "incremental"
    cache: bool = True
    parallel: bool = False
    max_workers: int | None = None
    chunk_size: int = 1024
    backend: str | None = None
    pool_registry: PoolRegistry | None = None
    space: CandidateSpace = field(init=False)
    stats: EngineStats = field(init=False)

    def __post_init__(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise OptimizerError(
                f"unknown engine mode {self.mode!r}; valid: {ENGINE_MODES}"
            )
        if self.chunk_size < 1:
            raise OptimizerError(
                f"chunk_size must be >= 1, got {self.chunk_size!r}"
            )
        self.backend = resolve_backend(
            self.backend, parallel=self.parallel, mode=self.mode
        )
        if self.backend in TERM_TABLE_BACKENDS and self.mode == "direct":
            raise OptimizerError(
                f"the {self.backend} backend requires mode='incremental': "
                "it evaluates candidates from per-cluster term tables and "
                "cannot run the full-topology direct path"
            )
        if self.pool_registry is None:
            self.pool_registry = default_registry()
        #: Unique engine id — the worker-table key in shared pools.
        self.uid = next(_ENGINE_UIDS)
        #: Cross-request stacker (see :mod:`repro.optimizer.megabatch`);
        #: installed by :meth:`enable_megabatch`, consumed by the vector
        #: backend's block evaluation.
        self.megabatch = None
        #: Span recorder (see :mod:`repro.obs`); attached by the broker
        #: session when tracing is on.  ``None`` disables chunk spans —
        #: backends guard on a single `is not None` check per block.
        self.tracer = None
        self.space = self.problem.space()
        self.stats = EngineStats()
        self._results: dict[ChoiceNames, EvaluatedOption] = {}
        self._bind_backend(self.backend)
        self._profiles = self._precompute_profiles()
        # repro: lint-ok[REP001] integer row lengths, order-free
        self.stats.cluster_term_computations = sum(
            len(row) for row in self._profiles
        )
        # Hoisted once for _build_option, which runs per evaluated
        # candidate on every backend: the bare system's name/cluster
        # names and each cluster's per-choice profile names.
        bare = self.space.bare_system
        self._bare_name = bare.name
        self._cluster_names = bare.cluster_names
        self._choice_name_rows = tuple(
            tuple(profile.name for profile in row) for row in self._profiles
        )

    # -- backend lifecycle -------------------------------------------------

    def _bind_backend(self, backend: str) -> None:
        """Install ``backend``'s implementation, lock policy and flags.

        Cache/stats mutations only need a real lock when the engine's
        own thread pool calls back into :meth:`evaluate`, or when
        megabatching lets concurrent broker requests share the engine;
        the serial and process backends otherwise mutate only from the
        consuming thread and skip the acquire/release round-trips on the
        hot path.
        """
        self.backend = backend
        self.parallel = backend != "serial"
        self._lock = (
            threading.Lock()
            if backend == "thread" or getattr(self, "megabatch", None) is not None
            else contextlib.nullcontext()
        )
        self._backend_impl = _BACKEND_TYPES[backend]()

    def set_backend(
        self,
        backend: str | None,
        *,
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> "EvaluationEngine":
        """Rebind this engine to a different evaluation backend in place.

        The per-(cluster, technology) term tables, the ``ChoiceNames``
        result cache and the stats all survive the switch — rebinding a
        warm cached engine costs zero cluster-term computations.  The
        previous backend's pool lease is released first (the shared
        executor itself lives on while other engines hold it), so no
        in-flight chunk can observe the swap.  Not safe to call
        concurrently with evaluation; callers sharing engines across
        threads (the broker's engine cache) serialize through their
        entry locks.
        """
        backend = resolve_backend(backend, mode=self.mode)
        if backend in TERM_TABLE_BACKENDS and self.mode == "direct":
            raise OptimizerError(
                f"cannot rebind a mode='direct' engine to the {backend} "
                "backend; direct evaluation needs the full topology"
            )
        resized = False
        if max_workers is not None and max_workers != self.max_workers:
            self.max_workers = max_workers
            resized = True
        if chunk_size is not None:
            if chunk_size < 1:
                raise OptimizerError(
                    f"chunk_size must be >= 1, got {chunk_size!r}"
                )
            self.chunk_size = chunk_size
        if backend != self.backend:
            self._backend_impl.close()
            self._bind_backend(backend)
        elif resized:
            # Same backend, new width: release the lease so the next
            # stream acquires a pool of the requested size from the
            # registry (executor widths are fixed at creation).
            self._backend_impl.close()
        return self

    def enable_megabatch(self, stacker) -> None:
        """Route vector block evaluation through ``stacker``.

        Also upgrades the cache/stats lock to a real
        :class:`threading.Lock`: megabatching exists precisely so that
        *concurrent* requests can evaluate on one shared engine, so the
        single-consumer locking exemption no longer applies.  Callers
        must not enable/disable while an evaluation is in flight (the
        broker serializes through its cache-entry discipline).
        """
        self.megabatch = stacker
        if not isinstance(self._lock, contextlib.nullcontext):
            return
        self._lock = threading.Lock()

    def disable_megabatch(self) -> None:
        """Detach the stacker and restore the backend's lock policy."""
        self.megabatch = None
        if self.backend != "thread":
            self._lock = contextlib.nullcontext()

    def close(self) -> None:
        """Release the backend's pool lease (caches stay warm).

        Idempotent; a closed engine remains usable — the next batch
        evaluation lazily re-acquires a pool.  The shared executor shuts
        down when its last leasing engine closes.
        """
        self._backend_impl.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _precompute_profiles(self) -> tuple[tuple[ChoiceProfile, ...], ...]:
        """Apply and factor every (cluster, technology) pairing once."""
        labor_rate = self.problem.labor_rate
        table = []
        for i in range(self.space.cluster_count):
            row = []
            for index, technology in enumerate(self.space.choices_for(i)):
                applied = self.space.applied_cluster(i, index)
                row.append(
                    ChoiceProfile(
                        index=index,
                        name=technology.name,
                        applied=applied,
                        availability=cluster_availability_terms(applied),
                        cost=cluster_cost_terms(applied),
                        ha_cost=applied.monthly_ha_infra_cost
                        + labor_rate.monthly_cost(applied.monthly_ha_labor_hours),
                    )
                )
            table.append(tuple(row))
        return tuple(table)

    @property
    def profiles(self) -> tuple[tuple[ChoiceProfile, ...], ...]:
        """Per-cluster rows of cached (cluster, technology) profiles."""
        return self._profiles

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, option_id: int, indices: tuple[int, ...]
    ) -> EvaluatedOption:
        """Evaluate one candidate, consulting and feeding the cache.

        A cache hit under a different paper-order id is re-labelled via
        :meth:`EvaluatedOption.relabel` — everything else about the
        option is id-independent, and relabelling keeps a lazy topology
        unbuilt.
        """
        names, cached = self._cache_probe(option_id, indices)
        if cached is not None:
            return cached

        if self.mode == "direct":
            option = evaluate_candidate_direct(
                self.problem, self.space, option_id, indices
            )
            counter = "topology_evaluations"
        else:
            option = self._combine(option_id, indices, names)
            counter = "incremental_combines"
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if self.cache:
                self._results.setdefault(names, option)
        return option

    def _cache_probe(
        self, option_id: int, indices: tuple[int, ...]
    ) -> tuple[ChoiceNames | None, EvaluatedOption | None]:
        """Count one evaluation request and answer it from the cache.

        Returns ``(names, option)`` where ``option`` is the relabelled
        cache hit or ``None`` on a miss; ``names`` is the cache key the
        eventual result should be admitted under (``None`` when the
        cache is off).  Shared by :meth:`evaluate` and the process
        backend, which probes in the parent before shipping misses to
        its workers.
        """
        names = self.space.choice_names(indices) if self.cache else None
        with self._lock:
            self.stats.candidate_evaluations += 1
            cached = self._results.get(names) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
        if cached is not None:
            return names, cached.relabel(option_id)
        return names, None

    def _admit_worker_payload(
        self,
        option_id: int,
        indices: tuple[int, ...],
        names: ChoiceNames | None,
        payload: tuple,
    ) -> EvaluatedOption:
        """Wrap a worker's flat payload into an option and feed the cache.

        Both the topology and the availability report stay lazy: the
        option carries factories over the parent's profiles and the
        worker's float values, so worker round-trips never pickle — and
        the parent never eagerly builds — per-candidate report objects.
        """
        breakdown, failover, contributions, tco_values, meets_sla = payload
        option = self._build_option(
            option_id, indices, names,
            breakdown, failover, contributions, tco_values, meets_sla,
        )
        with self._lock:
            self.stats.incremental_combines += 1
            if self.cache:
                self._results.setdefault(names, option)
        return option

    def _combine(
        self,
        option_id: int,
        indices: tuple[int, ...],
        names: ChoiceNames | None = None,
    ) -> EvaluatedOption:
        """O(n) evaluation from the cached per-cluster factor sets.

        Neither the candidate's :class:`SystemTopology` nor its
        :class:`AvailabilityReport` is built here: the option carries
        factories that assemble them on first access, so
        distilled/streamed sweeps that only rank by cost never pay
        per-candidate object construction.
        """
        if len(indices) != self.space.cluster_count:
            raise OptimizerError(
                f"expected {self.space.cluster_count} choice indices, "
                f"got {len(indices)}"
            )
        chosen = tuple(
            self._profiles[i][choice] for i, choice in enumerate(indices)
        )
        breakdown, failover, contributions = availability_values_from_terms(
            tuple(profile.availability for profile in chosen)
        )
        uptime = 1.0 - (breakdown + failover)
        tco_values = tco_values_from_terms(
            tuple(profile.cost for profile in chosen),
            uptime,
            self.problem.contract,
            self.problem.labor_rate,
        )
        return self._build_option(
            option_id, indices, names,
            breakdown, failover, tuple(contributions), tco_values,
            self.problem.contract.sla.is_met_by(uptime),
        )

    def _build_option(
        self,
        option_id: int,
        indices: tuple[int, ...],
        names: ChoiceNames | None,
        breakdown: float,
        failover: float,
        contributions: tuple[float, ...],
        tco_values: tuple,
        meets_sla: bool,
    ) -> EvaluatedOption:
        """Assemble a lazy option from the Eq. 1-5 values.

        The availability factory reconstructs exactly what
        :func:`availability_from_terms` would have built — same values,
        same per-cluster fields — so forcing a lazy report is
        bit-identical to eager evaluation regardless of which backend
        computed the floats.

        This runs once per evaluated candidate on every backend, so the
        hot path stays minimal: the chosen-profile gather is deferred
        into the lazy factories (distilled sweeps that only rank by cost
        never pay it) and the per-engine constants (system name, cluster
        names, per-choice name rows) are hoisted to ``__post_init__``.
        """
        profiles = self._profiles
        bare_name = self._bare_name
        cluster_names = self._cluster_names

        def build_system() -> SystemTopology:
            return SystemTopology(
                name=bare_name,
                clusters=tuple(
                    profiles[i][choice].applied
                    for i, choice in enumerate(indices)
                ),
            )

        def build_availability() -> AvailabilityReport:
            chosen = tuple(
                profiles[i][choice] for i, choice in enumerate(indices)
            )
            return AvailabilityReport(
                system_name=bare_name,
                breakdown_probability=breakdown,
                failover_probability=failover,
                clusters=tuple(
                    ClusterAvailability(
                        name=name,
                        up_probability=profile.availability.up_probability,
                        breakdown_probability=(
                            1.0 - profile.availability.up_probability
                        ),
                        failover_contribution=contribution,
                    )
                    for name, profile, contribution in zip(
                        cluster_names, chosen, contributions
                    )
                ),
            )

        if names is None:
            # Cache-off misses carry no probe key, so the name gather is
            # deferred too: a distilled sweep only ever forces it for
            # the winning rows.
            name_rows = self._choice_name_rows

            def names() -> ChoiceNames:
                return tuple(map(tuple.__getitem__, name_rows, indices))

        return assemble_option(
            option_id,
            names,
            build_system,
            build_availability,
            assemble_breakdown(tco_values),
            meets_sla,
            cluster_names,
        )

    def evaluate_many(
        self, enumerated: Iterable[tuple[int, tuple[int, ...]]]
    ) -> Iterator[EvaluatedOption]:
        """Evaluate ``(option_id, indices)`` pairs, preserving order.

        Delegates to the engine's evaluation backend: serial engines
        evaluate inline; the thread/process backends cut the stream into
        ``chunk_size`` blocks fanned out over a shared leased worker
        pool with a bounded in-flight window (the input is *not* drained
        eagerly), so huge candidate streams stay O(window) in memory;
        the vector backend gathers ``chunk_size`` blocks into numpy
        column arrays evaluated in-process.  Chunks are yielded in
        submission order in every backend, so downstream consumers
        (streaming results, option tables) see identical —
        bit-identical — sequences regardless of parallelism.

        Only the batch entry points fan out; the pruned and
        branch-and-bound searches are inherently sequential (each
        evaluation feeds the next pruning decision) and always evaluate
        one candidate at a time.
        """
        return self._backend_impl.evaluate_stream(self, enumerated)

    def _evaluate_chunk(
        self, chunk: list[tuple[int, tuple[int, ...]]]
    ) -> list[EvaluatedOption]:
        return [self.evaluate(option_id, indices) for option_id, indices in chunk]

    def evaluate_all(self) -> Iterator[EvaluatedOption]:
        """Stream every candidate of the space in paper order."""
        return self.evaluate_many(
            enumerate(self.space.candidates_in_paper_order(), start=1)
        )

    def sweep(self, *, keep_options: bool = True) -> "OptimizationResult":
        """Exhaustively evaluate the space into an optimization result.

        The engine-level entry point behind the brute-force strategy.
        With ``keep_options=True`` this is ``from_stream`` over
        :meth:`evaluate_all` — the full option table.  With
        ``keep_options=False`` the sweep is distilled to the two
        recommendations, and a backend that can rank candidates in bulk
        (the vector backend) folds whole blocks with numpy and only
        assembles the block winners — bit-identical to the scalar fold,
        several times cheaper at 100k+ candidates.
        """
        from repro.optimizer.result import OptimizationResult, ResultAccumulator

        if not keep_options:
            distill = getattr(self._backend_impl, "sweep_distilled", None)
            if distill is not None:
                accumulator = ResultAccumulator(
                    space_size=self.space.size,
                    strategy="brute-force",
                    keep_options=False,
                )
                distill(
                    self,
                    enumerate(self.space.candidates_in_paper_order(), start=1),
                    accumulator,
                )
                return accumulator.finish()
        return OptimizationResult.from_stream(
            self.evaluate_all(),
            space_size=self.space.size,
            strategy="brute-force",
            keep_options=keep_options,
        )


def engine_for(
    problem: OptimizationProblem,
    engine: EvaluationEngine | None,
) -> EvaluationEngine:
    """Return a validated engine for ``problem``, building one if needed.

    Strategies accept an optional shared engine so the broker (and the
    advisor's what-if sweeps) can reuse one cache across searches; a
    shared engine must have been built for the *same problem instance* —
    cached TCO values are contract- and rate-dependent.
    """
    if engine is None:
        return EvaluationEngine(problem)
    if engine.problem is not problem:
        raise OptimizerError(
            "engine was built for a different problem instance; "
            "cached evaluations would be invalid"
        )
    return engine
