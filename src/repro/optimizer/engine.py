"""Shared, cached, incremental candidate evaluation (the Eq. 6 hot path).

Every optimizer strategy ultimately evaluates candidates from the same
``k^n`` space, and the naive path rebuilds a full :class:`SystemTopology`
and re-runs the entire availability model and TCO computation for every
single candidate.  The :class:`EvaluationEngine` exploits the model's
structure instead: Eq. 1-5 factor into per-cluster terms, so the engine

1. precomputes one :class:`~repro.availability.model.ClusterTerms` and
   :class:`~repro.cost.tco.ClusterCostTerms` per (cluster, technology)
   pairing — ``n * k`` cluster-level computations per problem;
2. evaluates each candidate by recombining the ``n`` cached factor sets
   in O(n), bit-identical to the direct evaluation (the recombination
   performs the same float operations in the same order);
3. memoizes finished :class:`EvaluatedOption`s keyed by their
   :data:`~repro.optimizer.space.ChoiceNames`, so searches restarted
   over the same problem (pruned after brute force, branch-and-bound
   re-runs, advisor what-if sweeps) never evaluate a candidate twice.

The ``mode="direct"`` fallback routes evaluation through the legacy
full-topology path (:func:`evaluate_candidate_direct`) — same results,
useful for equivalence testing and as an escape hatch.  ``parallel=True``
fans chunked evaluation out over a :class:`ThreadPoolExecutor`; results
are yielded in submission order so parallel runs are deterministic.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.availability.model import (
    ClusterTerms,
    availability_from_terms,
    cluster_availability_terms,
    evaluate_availability,
)
from repro.cost.tco import (
    ClusterCostTerms,
    cluster_cost_terms,
    compute_tco,
    tco_from_terms,
)
from repro.errors import OptimizerError
from repro.optimizer.result import EvaluatedOption
from repro.optimizer.space import (
    CandidateSpace,
    ChoiceNames,
    OptimizationProblem,
)
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology

#: Supported evaluation modes.
ENGINE_MODES = ("incremental", "direct")


def evaluate_candidate_direct(
    problem: OptimizationProblem,
    space: CandidateSpace,
    option_id: int,
    indices: tuple[int, ...],
) -> EvaluatedOption:
    """Instantiate and fully evaluate one candidate permutation.

    This is the reference (pre-engine) evaluation path: build the whole
    topology, run the availability model end to end, run the TCO model
    end to end.  The engine's incremental path is tested bit-identical
    against it.
    """
    system = space.instantiate(indices)
    availability = evaluate_availability(system)
    tco = compute_tco(system, problem.contract, problem.labor_rate)
    return EvaluatedOption(
        option_id=option_id,
        choice_names=space.choice_names(indices),
        system=system,
        availability=availability,
        tco=tco,
        meets_sla=problem.contract.sla.is_met_by(availability.uptime_probability),
        cluster_names=space.bare_system.cluster_names,
    )


@dataclass(frozen=True, slots=True)
class ChoiceProfile:
    """Cached facts about one (cluster, technology) pairing.

    ``ha_cost`` is the pairing's full monthly ``C_HA`` share (infra plus
    priced labor) — the branch-and-bound lower bounds consume it
    directly.
    """

    index: int
    name: str
    applied: ClusterSpec
    availability: ClusterTerms
    cost: ClusterCostTerms
    ha_cost: float


@dataclass
class EngineStats:
    """Work accounting for one engine instance.

    Attributes
    ----------
    candidate_evaluations:
        Total evaluation requests answered (hits + misses).
    cache_hits:
        Requests answered from the ``ChoiceNames``-keyed result cache.
    incremental_combines:
        Cache misses answered by the O(n) term recombination.
    topology_evaluations:
        Cache misses answered by the legacy full-topology path (only in
        ``mode="direct"``).  The whole point of the engine is keeping
        this at zero.
    cluster_term_computations:
        Per-(cluster, technology) precomputations done at construction
        (``n * k`` — the only cluster-level availability math the
        incremental mode ever runs).
    """

    candidate_evaluations: int = 0
    cache_hits: int = 0
    incremental_combines: int = 0
    topology_evaluations: int = 0
    cluster_term_computations: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of evaluation requests served from the cache."""
        if self.candidate_evaluations == 0:
            return 0.0
        return self.cache_hits / self.candidate_evaluations

    def snapshot(self) -> "EngineStats":
        """A point-in-time copy — engines mutate their live stats."""
        return replace(self)

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters (wire envelopes, cache dashboards)."""
        return {
            "candidate_evaluations": self.candidate_evaluations,
            "cache_hits": self.cache_hits,
            "incremental_combines": self.incremental_combines,
            "topology_evaluations": self.topology_evaluations,
            "cluster_term_computations": self.cluster_term_computations,
        }

    def describe(self) -> str:
        """One-line summary for CLI/benchmark output."""
        return (
            f"evaluations={self.candidate_evaluations} "
            f"(cache hits {self.cache_hits}, "
            f"combines {self.incremental_combines}, "
            f"full-topology {self.topology_evaluations}; "
            f"{self.cluster_term_computations} cluster terms precomputed)"
        )


@dataclass
class EvaluationEngine:
    """Evaluates candidates of one problem from per-cluster caches.

    Parameters
    ----------
    problem:
        The optimization problem this engine serves.  All cached results
        are valid only for this exact problem instance; strategies guard
        against accidental cross-problem reuse.
    mode:
        ``"incremental"`` (default) recombines cached per-cluster terms
        in O(n); ``"direct"`` falls back to full-topology evaluation.
        Both produce bit-identical options.
    cache:
        Memoize finished options keyed by ``ChoiceNames`` so repeated
        searches over the same problem never re-evaluate a candidate.
        Cache and stats are guarded by a lock only when
        ``parallel=True``; a sequential engine must not have
        :meth:`evaluate` called from multiple threads.
    parallel:
        Evaluate :meth:`evaluate_many` streams in chunks on a thread
        pool.  Results keep submission order, so output is
        deterministic.  The combine is pure-Python float math, so this
        buys little wall-clock under the GIL today — it exists as the
        chunking/ordering harness for the planned multiprocessing
        backend (see ROADMAP).
    max_workers / chunk_size:
        Thread-pool sizing knobs for ``parallel=True``.
    """

    problem: OptimizationProblem
    mode: str = "incremental"
    cache: bool = True
    parallel: bool = False
    max_workers: int | None = None
    chunk_size: int = 1024
    space: CandidateSpace = field(init=False)
    stats: EngineStats = field(init=False)

    def __post_init__(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise OptimizerError(
                f"unknown engine mode {self.mode!r}; valid: {ENGINE_MODES}"
            )
        if self.chunk_size < 1:
            raise OptimizerError(
                f"chunk_size must be >= 1, got {self.chunk_size!r}"
            )
        self.space = self.problem.space()
        self.stats = EngineStats()
        self._results: dict[ChoiceNames, EvaluatedOption] = {}
        # Cache/stats mutations only need a real lock when the engine's
        # own thread pool is in play; sequential engines skip the
        # acquire/release round-trips on the per-candidate hot path.
        self._lock = (
            threading.Lock() if self.parallel else contextlib.nullcontext()
        )
        self._profiles = self._precompute_profiles()
        self.stats.cluster_term_computations = sum(
            len(row) for row in self._profiles
        )

    def _precompute_profiles(self) -> tuple[tuple[ChoiceProfile, ...], ...]:
        """Apply and factor every (cluster, technology) pairing once."""
        labor_rate = self.problem.labor_rate
        table = []
        for i in range(self.space.cluster_count):
            row = []
            for index, technology in enumerate(self.space.choices_for(i)):
                applied = self.space.applied_cluster(i, index)
                row.append(
                    ChoiceProfile(
                        index=index,
                        name=technology.name,
                        applied=applied,
                        availability=cluster_availability_terms(applied),
                        cost=cluster_cost_terms(applied),
                        ha_cost=applied.monthly_ha_infra_cost
                        + labor_rate.monthly_cost(applied.monthly_ha_labor_hours),
                    )
                )
            table.append(tuple(row))
        return tuple(table)

    @property
    def profiles(self) -> tuple[tuple[ChoiceProfile, ...], ...]:
        """Per-cluster rows of cached (cluster, technology) profiles."""
        return self._profiles

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, option_id: int, indices: tuple[int, ...]
    ) -> EvaluatedOption:
        """Evaluate one candidate, consulting and feeding the cache.

        A cache hit under a different paper-order id is re-labelled via
        :meth:`EvaluatedOption.relabel` — everything else about the
        option is id-independent, and relabelling keeps a lazy topology
        unbuilt.
        """
        names = self.space.choice_names(indices) if self.cache else None
        with self._lock:
            self.stats.candidate_evaluations += 1
            cached = self._results.get(names) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
        if cached is not None:
            return cached.relabel(option_id)

        if self.mode == "direct":
            option = evaluate_candidate_direct(
                self.problem, self.space, option_id, indices
            )
            counter = "topology_evaluations"
        else:
            option = self._combine(option_id, indices, names)
            counter = "incremental_combines"
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if self.cache:
                self._results.setdefault(names, option)
        return option

    def _combine(
        self,
        option_id: int,
        indices: tuple[int, ...],
        names: ChoiceNames | None = None,
    ) -> EvaluatedOption:
        """O(n) evaluation from the cached per-cluster factor sets.

        The candidate's :class:`SystemTopology` is *not* built here: the
        option carries a factory that assembles (and validates) it on
        first access, so distilled/streamed sweeps that only read costs
        and labels never pay per-candidate topology construction.
        """
        if len(indices) != self.space.cluster_count:
            raise OptimizerError(
                f"expected {self.space.cluster_count} choice indices, "
                f"got {len(indices)}"
            )
        chosen = tuple(
            self._profiles[i][choice] for i, choice in enumerate(indices)
        )
        bare = self.space.bare_system
        availability = availability_from_terms(
            bare.name,
            bare.cluster_names,
            tuple(profile.availability for profile in chosen),
        )
        uptime = availability.uptime_probability
        tco = tco_from_terms(
            tuple(profile.cost for profile in chosen),
            uptime,
            self.problem.contract,
            self.problem.labor_rate,
        )

        def build_system() -> SystemTopology:
            return SystemTopology(
                name=bare.name,
                clusters=tuple(profile.applied for profile in chosen),
            )

        return EvaluatedOption(
            option_id=option_id,
            choice_names=names
            if names is not None
            else tuple(profile.name for profile in chosen),
            system=build_system,
            availability=availability,
            tco=tco,
            meets_sla=self.problem.contract.sla.is_met_by(uptime),
            cluster_names=bare.cluster_names,
        )

    def evaluate_many(
        self, enumerated: Iterable[tuple[int, tuple[int, ...]]]
    ) -> Iterator[EvaluatedOption]:
        """Evaluate ``(option_id, indices)`` pairs, preserving order.

        Sequential by default; with ``parallel=True`` the stream is cut
        into ``chunk_size`` blocks evaluated on a thread pool with a
        bounded in-flight window (the input is *not* drained eagerly),
        so huge candidate streams stay O(window) in memory.  Chunks are
        yielded in submission order either way, so downstream consumers
        (streaming results, option tables) see identical sequences
        regardless of parallelism.

        Only the batch entry points fan out; the pruned and
        branch-and-bound searches are inherently sequential (each
        evaluation feeds the next pruning decision) and always evaluate
        one candidate at a time.
        """
        if not self.parallel:
            for option_id, indices in enumerated:
                yield self.evaluate(option_id, indices)
            return

        def chunked() -> Iterator[list[tuple[int, tuple[int, ...]]]]:
            block: list[tuple[int, tuple[int, ...]]] = []
            for item in enumerated:
                block.append(item)
                if len(block) >= self.chunk_size:
                    yield block
                    block = []
            if block:
                yield block

        workers = self.max_workers or min(32, (os.cpu_count() or 1) + 4)
        max_in_flight = 2 * workers
        with ThreadPoolExecutor(max_workers=workers) as pool:
            pending = deque()
            for block in chunked():
                pending.append(pool.submit(self._evaluate_chunk, block))
                while len(pending) >= max_in_flight:
                    yield from pending.popleft().result()
            while pending:
                yield from pending.popleft().result()

    def _evaluate_chunk(
        self, chunk: list[tuple[int, tuple[int, ...]]]
    ) -> list[EvaluatedOption]:
        return [self.evaluate(option_id, indices) for option_id, indices in chunk]

    def evaluate_all(self) -> Iterator[EvaluatedOption]:
        """Stream every candidate of the space in paper order."""
        return self.evaluate_many(
            enumerate(self.space.candidates_in_paper_order(), start=1)
        )


def engine_for(
    problem: OptimizationProblem,
    engine: EvaluationEngine | None,
) -> EvaluationEngine:
    """Return a validated engine for ``problem``, building one if needed.

    Strategies accept an optional shared engine so the broker (and the
    advisor's what-if sweeps) can reuse one cache across searches; a
    shared engine must have been built for the *same problem instance* —
    cached TCO values are contract- and rate-dependent.
    """
    if engine is None:
        return EvaluationEngine(problem)
    if engine.problem is not problem:
        raise OptimizerError(
            "engine was built for a different problem instance; "
            "cached evaluations would be invalid"
        )
    return engine
