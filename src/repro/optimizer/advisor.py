"""Upgrade advisor: marginal analysis from a deployed configuration.

The paper optimizes greenfield deployments; brownfield customers ask a
different question — *"we already run option X; which single change
pays for itself?"*.  The advisor evaluates every configuration that
differs from the current one in exactly one cluster (swap, add or drop
an HA technology) and ranks the moves by TCO delta, including a simple
one-off migration cost amortized over a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.optimizer.engine import EvaluationEngine, engine_for
from repro.optimizer.result import EvaluatedOption
from repro.optimizer.space import ChoiceNames, OptimizationProblem


@dataclass(frozen=True)
class UpgradeMove:
    """One single-cluster change away from the current configuration."""

    cluster_name: str
    from_technology: str
    to_technology: str
    option: EvaluatedOption
    monthly_delta: float
    amortized_migration_cost: float

    @property
    def total_monthly_delta(self) -> float:
        """TCO delta including amortized migration cost ($/month)."""
        return self.monthly_delta + self.amortized_migration_cost

    @property
    def pays_off(self) -> bool:
        """True when the move lowers total monthly cost."""
        return self.total_monthly_delta < 0.0

    def describe(self) -> str:
        """E.g. ``storage: none -> raid-1  (-$794.57/mo, migration $8.33/mo)``."""
        return (
            f"{self.cluster_name}: {self.from_technology} -> "
            f"{self.to_technology}  ({self.monthly_delta:+,.2f}/mo, "
            f"migration {self.amortized_migration_cost:+,.2f}/mo)"
        )


@dataclass(frozen=True)
class UpgradeAdvice:
    """All single-cluster moves, best first."""

    current: EvaluatedOption
    moves: tuple[UpgradeMove, ...]

    @property
    def best_move(self) -> UpgradeMove | None:
        """The most valuable paying move, or None if staying put wins."""
        paying = [move for move in self.moves if move.pays_off]
        return paying[0] if paying else None

    def describe(self) -> str:
        """Ranked move table."""
        lines = [
            f"Currently deployed: {self.current.label} "
            f"(TCO ${self.current.tco.total:,.2f}/mo)"
        ]
        if not self.moves:
            lines.append("  no alternative single-cluster moves available")
        for move in self.moves:
            marker = "=> " if move.pays_off else "   "
            lines.append(f"  {marker}{move.describe()}")
        best = self.best_move
        lines.append(
            f"recommendation: {'apply ' + best.describe() if best else 'stay put'}"
        )
        return "\n".join(lines)


def advise_upgrades(
    problem: OptimizationProblem,
    current_choices: ChoiceNames,
    migration_cost: float = 0.0,
    amortization_months: int = 12,
    *,
    engine: EvaluationEngine | None = None,
) -> UpgradeAdvice:
    """Rank every single-cluster change from ``current_choices``.

    ``migration_cost`` is a one-off dollar figure per move (change
    windows, data resilvering, cutover labor) amortized linearly over
    ``amortization_months``.  Pass a shared ``engine`` when sweeping
    what-if scenarios (migration costs, amortization horizons) so the
    underlying candidate evaluations are cached across calls.
    """
    if amortization_months < 1:
        raise OptimizerError(
            f"amortization_months must be >= 1, got {amortization_months!r}"
        )
    engine = engine_for(problem, engine)
    space = engine.space
    name_to_index = [
        {tech.name: i for i, tech in enumerate(space.choices_for(c))}
        for c in range(space.cluster_count)
    ]
    if len(current_choices) != space.cluster_count:
        raise OptimizerError(
            f"expected {space.cluster_count} choice names, got {len(current_choices)}"
        )
    try:
        current_indices = tuple(
            name_to_index[i][name] for i, name in enumerate(current_choices)
        )
    except KeyError as exc:
        raise OptimizerError(
            f"current configuration references unknown technology: {exc}"
        ) from exc

    current = engine.evaluate(
        space.paper_order_id(current_indices), current_indices
    )

    amortized = migration_cost / amortization_months
    moves = []
    for cluster_pos in range(space.cluster_count):
        cluster_name = space.bare_system.clusters[cluster_pos].name
        for alt_index, technology in enumerate(space.choices_for(cluster_pos)):
            if alt_index == current_indices[cluster_pos]:
                continue
            candidate = list(current_indices)
            candidate[cluster_pos] = alt_index
            candidate_indices = tuple(candidate)
            option = engine.evaluate(
                space.paper_order_id(candidate_indices), candidate_indices
            )
            moves.append(
                UpgradeMove(
                    cluster_name=cluster_name,
                    from_technology=current_choices[cluster_pos],
                    to_technology=technology.name,
                    option=option,
                    monthly_delta=option.tco.total - current.tco.total,
                    amortized_migration_cost=amortized,
                )
            )
    moves.sort(key=lambda move: move.total_monthly_delta)
    return UpgradeAdvice(current=current, moves=tuple(moves))
