"""Exhaustive evaluation of the candidate space (Eq. 6).

Walks all ``k^n`` permutations in paper order, evaluates Eq. 1-5 for
each, and returns the full table.  This is the reference implementation
the pruned and branch-and-bound searches are tested against.
"""

from __future__ import annotations

from repro.cost.tco import compute_tco
from repro.availability.model import evaluate_availability
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.optimizer.space import CandidateSpace, OptimizationProblem


def evaluate_candidate(
    problem: OptimizationProblem,
    space: CandidateSpace,
    option_id: int,
    indices: tuple[int, ...],
) -> EvaluatedOption:
    """Instantiate and fully evaluate one candidate permutation."""
    system = space.instantiate(indices)
    availability = evaluate_availability(system)
    tco = compute_tco(system, problem.contract, problem.labor_rate)
    return EvaluatedOption(
        option_id=option_id,
        choice_names=space.choice_names(indices),
        system=system,
        availability=availability,
        tco=tco,
        meets_sla=problem.contract.sla.is_met_by(availability.uptime_probability),
    )


def brute_force_optimize(problem: OptimizationProblem) -> OptimizationResult:
    """Evaluate every candidate and return the complete option table."""
    space = problem.space()
    options = []
    for option_id, indices in enumerate(space.candidates_in_paper_order(), start=1):
        options.append(evaluate_candidate(problem, space, option_id, indices))
    return OptimizationResult(
        options=tuple(options),
        evaluations=len(options),
        pruned=0,
        space_size=space.size,
        strategy="brute-force",
    )
