"""Exhaustive evaluation of the candidate space (Eq. 6).

Walks all ``k^n`` permutations in paper order, evaluates Eq. 1-5 for
each, and returns the full table.  This is the reference implementation
the pruned and branch-and-bound searches are tested against.

Evaluation routes through the shared
:class:`~repro.optimizer.engine.EvaluationEngine` (pass ``engine=`` to
reuse one cache across searches); :func:`evaluate_candidate` remains the
standalone full-topology reference path.
"""

from __future__ import annotations

from typing import Iterator

from repro.optimizer.engine import (
    EvaluationEngine,
    engine_for,
    evaluate_candidate_direct,
)
from repro.optimizer.result import EvaluatedOption, OptimizationResult
from repro.optimizer.space import CandidateSpace, OptimizationProblem


def evaluate_candidate(
    problem: OptimizationProblem,
    space: CandidateSpace,
    option_id: int,
    indices: tuple[int, ...],
) -> EvaluatedOption:
    """Instantiate and fully evaluate one candidate permutation.

    The direct (non-cached, non-incremental) path; kept as the exact
    reference the engine's incremental evaluation is verified against.
    """
    return evaluate_candidate_direct(problem, space, option_id, indices)


def iter_brute_force(
    problem: OptimizationProblem,
    engine: EvaluationEngine | None = None,
) -> Iterator[EvaluatedOption]:
    """Stream every candidate's evaluation in paper order.

    The streaming form exists so huge spaces can be consumed without
    materializing the option table — pair it with
    :meth:`OptimizationResult.from_stream`.
    """
    return engine_for(problem, engine).evaluate_all()


def brute_force_optimize(
    problem: OptimizationProblem,
    *,
    engine: EvaluationEngine | None = None,
    keep_options: bool = True,
) -> OptimizationResult:
    """Evaluate every candidate and return the complete option table.

    ``keep_options=False`` streams the space and keeps only the
    distilled recommendations (for million-candidate sweeps).  In that
    case the default engine is built with its result cache off so the
    sweep holds O(1) options in memory; pass an explicit ``engine`` to
    trade memory for cross-search reuse.

    An engine built here is closed before returning, so a thread/process
    evaluation backend (e.g. via ``REPRO_BACKEND``) never leaks its
    worker pool; a caller-supplied engine keeps its pool — closing it is
    the caller's call.
    """
    owns_engine = engine is None
    if owns_engine:
        engine = EvaluationEngine(problem, cache=keep_options)
    else:
        engine = engine_for(problem, engine)
    try:
        # EvaluationEngine.sweep lets bulk-ranking backends distill
        # whole blocks at once; with keep_options=True (or any other
        # backend) it is exactly the from_stream path this function
        # always used.
        return engine.sweep(keep_options=keep_options)
    finally:
        if owns_engine:
            engine.close()
