"""Shared, ref-counted worker-pool ownership across evaluation engines.

Before this module, every :class:`~repro.optimizer.engine.EvaluationEngine`
owned its evaluation pool outright: N cached engines meant N
``ProcessPoolExecutor``s, N sets of worker processes, and N pools leaked
whenever an engine was dropped without ``close()``.  The
:class:`PoolRegistry` inverts that ownership:

- pools are keyed by ``(kind, workers)`` and **ref-counted** — every
  engine backend acquires a :class:`PoolHandle` lease and the executor
  is created on the first acquire and shut down deterministically when
  the last holder releases;
- worker processes are seeded once (via the pool initializer) with the
  registry's *table channel* and fetch each engine's pickled term
  tables on demand, caching them locally keyed by the engine's unique
  id.  The channel has two implementations: the default ``"shm"``
  backend publishes each engine's tables once into a named
  ``multiprocessing.shared_memory`` segment that workers attach
  read-only (no per-fetch IPC round trip, no serialization proxy
  process), and the ``"manager"`` backend keeps the original
  :class:`multiprocessing.managers.SyncManager` dict proxy for
  platforms without ``shared_memory`` support.  One pool's workers
  serve chunks for any number of engines concurrently, and a chunk
  carries only ``(engine uid, (option_id, indices), ...)`` — never the
  precomputes;
- a worker failure marks the pool *broken*: it leaves the registry map
  immediately (so the next acquire builds a fresh pool) and is shut
  down once its last holder releases.

Shared-memory segments are ref-counted per engine uid: ``publish``
creates (or re-leases) the segment, ``retract`` unlinks it when the last
publisher lets go, and the registry unlinks any leftovers when the last
process-pool lease is released — so an idle registry holds no OS
resources at all.  On POSIX the workers' attach-time resource-tracker
registrations are deduplicated with the parent's create-time one (fork
start method shares the tracker process), so parent-side ``unlink`` is
the single point of cleanup; workers never unlink or unregister.

A process-global :func:`default_registry` makes the sharing automatic:
engines built without an explicit registry — including every engine a
broker's :class:`~repro.broker.api.EngineCache` builds — share one
process pool per width instead of spawning their own.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import secrets
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.errors import OptimizerError

try:  # pragma: no cover - import guard exercised only where absent
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Pool kinds the registry can build.
POOL_KINDS = ("thread", "process")

#: Table-channel implementations, in preference order.
TERM_TABLE_CHANNELS = ("shm", "manager")

#: Environment override for the table-channel backend.
TABLE_CHANNEL_ENV_VAR = "REPRO_TERM_TABLES"

#: Per-worker cap on locally cached engine term tables.  Tables are
#: fetched from the registry's table channel on first use and kept in an
#: LRU so a long-lived shared pool serving many short-lived engines does
#: not accumulate every table it ever saw.
WORKER_TABLE_LIMIT = 32


def resolve_table_backend(requested: str | None = None) -> str:
    """Pick the table-channel backend: explicit > env > auto.

    ``"shm"`` degrades cleanly to ``"manager"`` when
    ``multiprocessing.shared_memory`` is unavailable on the platform;
    unknown names raise :class:`~repro.errors.OptimizerError`.
    """
    choice = requested
    if choice is None:
        choice = os.environ.get(TABLE_CHANNEL_ENV_VAR) or None
    if choice is None:
        return "shm" if _shared_memory is not None else "manager"
    if choice not in TERM_TABLE_CHANNELS:
        raise OptimizerError(
            f"unknown table-channel backend {choice!r}; "
            f"valid: {TERM_TABLE_CHANNELS}"
        )
    if choice == "shm" and _shared_memory is None:
        return "manager"
    return choice


def _segment_name(token: str, uid: int) -> str:
    """Deterministic shared-memory name for one engine's tables.

    ``token`` is unique per registry (pid + random hex), so concurrent
    registries — and concurrent test processes — never collide.
    Workers rebuild the same name from the token they were seeded with.
    """
    return f"repro_{token}_{uid}"


# -- worker-side plumbing ---------------------------------------------------
#
# These globals live in each *worker process* (the parent's copies are
# never used).  The initializer runs once per worker at pool startup;
# afterwards every chunk resolves its engine's tables through
# ``worker_payload`` — a local-cache hit in the steady state, one
# channel fetch per (worker, engine) pairing at worst.

_WORKER_CHANNEL = None
_WORKER_TABLES: "OrderedDict[int, object]" = OrderedDict()


def _pool_worker_init(kind: str, channel) -> None:
    """Install the registry's table channel in a new worker process.

    ``kind`` is one of :data:`TERM_TABLE_CHANNELS`; ``channel`` is the
    manager dict proxy (``"manager"``) or the registry's segment-name
    token (``"shm"``).
    """
    global _WORKER_CHANNEL
    _WORKER_CHANNEL = (kind, channel)
    _WORKER_TABLES.clear()


def _missing_tables(uid: int) -> OptimizerError:
    return OptimizerError(
        f"engine {uid} has no published worker tables "
        "(engine closed while chunks were in flight?)"
    )


def _fetch_shm_payload(token: str, uid: int):
    """Attach one engine's segment, deserialize, detach.

    The deserialized payload is a full copy, so the mapping is released
    immediately.  Workers never ``unlink`` (the parent owns the segment
    lifetime) — on POSIX the attach registers with the shared resource
    tracker, which deduplicates against the parent's registration and is
    cleared by the parent's ``unlink``.
    """
    try:
        segment = _shared_memory.SharedMemory(name=_segment_name(token, uid))
    except FileNotFoundError:
        raise _missing_tables(uid) from None
    try:
        # pickled data stops at its STOP opcode, so the page-granular
        # zero-fill past the payload is ignored.
        return pickle.loads(segment.buf)
    finally:
        segment.close()


def worker_payload(uid: int):
    """Resolve one engine's published tables inside a worker process.

    Local LRU first, then the registry's table channel (shared-memory
    attach or manager round trip).  A missing uid means the engine
    retracted its tables (closed) while chunks were still queued —
    surfaced as a structured error rather than a ``KeyError`` /
    ``FileNotFoundError`` traceback pickled across the pool boundary.
    """
    tables = _WORKER_TABLES
    if uid in tables:
        tables.move_to_end(uid)
        return tables[uid]
    if _WORKER_CHANNEL is None:
        raise OptimizerError(
            "pool worker was never initialized with a table channel"
        )
    kind, channel = _WORKER_CHANNEL
    if kind == "shm":
        payload = _fetch_shm_payload(channel, uid)
    else:
        try:
            payload = channel[uid]
        except KeyError:
            raise _missing_tables(uid) from None
    tables[uid] = payload
    while len(tables) > WORKER_TABLE_LIMIT:
        tables.popitem(last=False)
    return payload


# -- registry ---------------------------------------------------------------

@dataclass
class PoolRegistryStats:
    """Lifecycle accounting for one :class:`PoolRegistry`.

    ``pools_created``/``pools_closed`` count real executors, not leases;
    a healthy steady state creates one pool per (kind, width) however
    many engines share it.  ``tables_published``/``tables_retracted``
    count table-channel publications (one per engine process lease).
    """

    pools_created: int = 0
    pools_closed: int = 0
    acquires: int = 0
    releases: int = 0
    invalidations: int = 0
    tables_published: int = 0
    tables_retracted: int = 0

    def snapshot(self) -> "PoolRegistryStats":
        """A point-in-time copy — registries mutate their live stats."""
        return replace(self)

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters."""
        return {
            "pools_created": self.pools_created,
            "pools_closed": self.pools_closed,
            "acquires": self.acquires,
            "releases": self.releases,
            "invalidations": self.invalidations,
            "tables_published": self.tables_published,
            "tables_retracted": self.tables_retracted,
        }


@dataclass
class _SharedPool:
    """One executor plus its lease bookkeeping."""

    key: tuple[str, int]
    pool: object
    holders: int = 0
    broken: bool = False
    closed: bool = False


@dataclass
class _ShmSegment:
    """One published engine's shared-memory segment (parent side)."""

    segment: object
    size: int
    refs: int = 1


class PoolHandle:
    """One holder's lease on a shared executor.

    Handles are not thread-safe per se — each backend guards its own
    handle — but :meth:`release` is idempotent and safe to race with
    other holders' releases.
    """

    def __init__(self, registry: "PoolRegistry", shared: _SharedPool) -> None:
        self._registry = registry
        self._shared = shared
        self.released = False

    @property
    def pool(self):
        """The shared executor this lease covers."""
        return self._shared.pool

    @property
    def kind(self) -> str:
        return self._shared.key[0]

    @property
    def workers(self) -> int:
        return self._shared.key[1]

    def release(self, *, invalidate: bool = False) -> None:
        """Give the lease back; the last holder shuts the pool down.

        ``invalidate=True`` additionally marks the pool broken (a worker
        died), evicting it from the registry map at once so concurrent
        and future acquires build a fresh pool instead of inheriting the
        corpse.
        """
        self._registry._release(self, invalidate)


class PoolRegistry:
    """Ref-counted executors shared across evaluation engines.

    Thread-safe.  One registry typically serves a whole process (see
    :func:`default_registry`); tests and specialized deployments can
    build private ones to isolate pool populations.  The registry also
    owns the *table channel* for process pools, through which engines
    publish their per-(cluster, technology) term tables to workers
    exactly once, keyed by engine uid.  With the default ``"shm"``
    backend each publication is one named shared-memory segment the
    workers attach read-only; with ``"manager"`` it is an entry in a
    manager-hosted dict.  Either way the channel comes up with the
    first process-pool lease and goes down with the last, so an idle
    registry holds no OS resources at all.

    ``table_backend`` picks the channel explicitly (``"shm"`` or
    ``"manager"``); ``None`` consults the ``REPRO_TERM_TABLES``
    environment variable and falls back to ``"shm"`` where available.
    """

    def __init__(self, table_backend: str | None = None) -> None:
        # ``_lock`` guards the maps/counters (fast, never held across
        # blocking work); ``_build_lock`` serializes the slow cold path
        # (manager + executor construction, channel teardown) so that a
        # multi-second process-pool spin-up never stalls unrelated
        # acquires and releases.
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._pools: dict[tuple[str, int], _SharedPool] = {}
        self._table_backend = resolve_table_backend(table_backend)
        self._token = f"{os.getpid():x}{secrets.token_hex(4)}"
        self._manager = None
        self._tables = None
        self._segments: dict[int, _ShmSegment] = {}
        self._shm_channel_up = False
        self._process_holders = 0
        self.stats = PoolRegistryStats()

    # -- leases ------------------------------------------------------------

    def acquire(self, kind: str, workers: int) -> PoolHandle:
        """Lease the ``(kind, workers)`` executor, creating it if needed.

        Raises whatever the underlying executor (or the table-channel
        manager) raises on platforms without thread/process support —
        callers degrade to serial evaluation on failure.
        """
        if kind not in POOL_KINDS:
            raise OptimizerError(
                f"unknown pool kind {kind!r}; valid: {POOL_KINDS}"
            )
        if workers < 1:
            raise OptimizerError(f"workers must be >= 1, got {workers!r}")
        key = (kind, workers)
        handle = self._lease_existing(key)
        if handle is not None:
            return handle
        # Cold path: build outside the map lock.  The build lock keeps
        # concurrent builders from racing each other (and keeps channel
        # teardown from yanking the table channel mid-build).
        with self._build_lock:
            handle = self._lease_existing(key)
            if handle is not None:
                return handle
            with self._lock:
                manager_needed = (
                    kind == "process"
                    and self._table_backend == "manager"
                    and self._manager is None
                )
                tables = self._tables
            manager = None
            if manager_needed:
                manager = multiprocessing.Manager()
            try:
                # Everything between starting the manager process and
                # handing it to self._manager runs under this guard:
                # manager.dict() is an RPC into the fresh process and
                # can fail, which previously leaked the process.
                if manager is not None:
                    tables = manager.dict()
                if self._table_backend == "shm":
                    channel: tuple[str, object] = ("shm", self._token)
                else:
                    channel = ("manager", tables)
                pool = self._create(kind, workers, channel)
            except BaseException:
                if manager is not None:
                    manager.shutdown()
                raise
            with self._lock:
                if manager is not None:
                    self._manager = manager
                    self._tables = tables
                shared = _SharedPool(key=key, pool=pool, holders=1)
                self._pools[key] = shared
                self.stats.pools_created += 1
                if kind == "process":
                    self._process_holders += 1
                    if self._table_backend == "shm":
                        self._shm_channel_up = True
                self.stats.acquires += 1
                return PoolHandle(self, shared)

    def _lease_existing(self, key: tuple[str, int]) -> PoolHandle | None:
        """The fast path: bump an already-built pool's lease count."""
        with self._lock:
            shared = self._pools.get(key)
            if shared is None:
                return None
            shared.holders += 1
            if key[0] == "process":
                self._process_holders += 1
            self.stats.acquires += 1
            return PoolHandle(self, shared)

    def _create(self, kind: str, workers: int, channel):
        if kind == "thread":
            return ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="engine-eval"
            )
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
            initargs=channel,
        )

    def _release(self, handle: PoolHandle, invalidate: bool) -> None:
        shutdown_pool = None
        maybe_close_channel = False
        with self._lock:
            if handle.released:
                return
            handle.released = True
            self.stats.releases += 1
            shared = handle._shared
            shared.holders -= 1
            if invalidate and not shared.broken:
                shared.broken = True
                self.stats.invalidations += 1
            if self._pools.get(shared.key) is shared and (
                shared.broken or shared.holders <= 0
            ):
                del self._pools[shared.key]
            if shared.holders <= 0 and not shared.closed:
                shared.closed = True
                shutdown_pool = shared.pool
                self.stats.pools_closed += 1
            if shared.key[0] == "process":
                self._process_holders -= 1
                maybe_close_channel = self._process_holders <= 0
        # Executor/manager/segment teardown can block; never do it under
        # the map lock.
        if shutdown_pool is not None:
            shutdown_pool.shutdown(wait=True)
        if maybe_close_channel:
            # Serialize with builders: a cold-path acquire that already
            # read the live table channel must finish (and re-raise the
            # process holder count) before the channel may go down.
            with self._build_lock:
                manager = None
                leftovers: tuple[_ShmSegment, ...] = ()
                with self._lock:
                    if self._process_holders <= 0:
                        if self._manager is not None:
                            manager, self._manager = self._manager, None
                            self._tables = None
                        if self._shm_channel_up:
                            leftovers = tuple(self._segments.values())
                            self._segments.clear()
                            self._shm_channel_up = False
                if manager is not None:
                    manager.shutdown()
                for entry in leftovers:
                    self._unlink_segment(entry)

    @staticmethod
    def _unlink_segment(entry: _ShmSegment) -> None:
        """Release and unlink one segment, tolerating races with exit."""
        try:
            entry.segment.close()
            entry.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # -- table channel -----------------------------------------------------

    def publish(self, uid: int, payload) -> None:
        """Make ``payload`` fetchable by pool workers under ``uid``.

        Requires a live process-pool lease (the channel's lifetime is
        tied to process holders); backends publish immediately after
        acquiring their handle and before submitting any chunk.
        Re-publishing an already-published uid bumps its segment's
        ref count instead of re-serializing.
        """
        if self._table_backend == "manager":
            with self._lock:
                tables = self._tables
            if tables is None:
                raise OptimizerError(
                    "cannot publish worker tables without an active "
                    "process pool"
                )
            tables[uid] = payload
            with self._lock:
                self.stats.tables_published += 1
            return
        with self._lock:
            if not self._shm_channel_up:
                raise OptimizerError(
                    "cannot publish worker tables without an active "
                    "process pool"
                )
            entry = self._segments.get(uid)
            if entry is not None:
                entry.refs += 1
                self.stats.tables_published += 1
                return
        # Serialize outside the lock (the payload can be large); the
        # segment is named after this registry's token so a concurrent
        # teardown/republish race cannot collide with another registry.
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        segment = _shared_memory.SharedMemory(
            name=_segment_name(self._token, uid), create=True, size=len(data)
        )
        try:
            segment.buf[: len(data)] = data
            new_entry = _ShmSegment(segment=segment, size=len(data))
            with self._lock:
                if self._shm_channel_up and uid not in self._segments:
                    self.stats.tables_published += 1
                    self._segments[uid] = new_entry
                    return
                racing = self._segments.get(uid)
                if racing is not None:
                    racing.refs += 1
                    self.stats.tables_published += 1
        except BaseException:
            # Anything raised between creating the OS segment and
            # registering it would otherwise leak a named shm file that
            # outlives the process (REP004's motivating window).
            self._unlink_segment(_ShmSegment(segment=segment, size=len(data)))
            raise
        # Lost a race (duplicate publish) or the channel went down while
        # we serialized: this segment is not the published one.
        self._unlink_segment(new_entry)
        with self._lock:
            channel_up = self._shm_channel_up
        if not channel_up:
            raise OptimizerError(
                "cannot publish worker tables without an active process pool"
            )

    def retract(self, uid: int) -> None:
        """Withdraw ``uid``'s published tables (idempotent)."""
        if self._table_backend == "manager":
            with self._lock:
                tables = self._tables
            if tables is not None and tables.pop(uid, None) is not None:
                with self._lock:
                    self.stats.tables_retracted += 1
            return
        unlink = None
        with self._lock:
            entry = self._segments.get(uid)
            if entry is None:
                return
            entry.refs -= 1
            self.stats.tables_retracted += 1
            if entry.refs <= 0:
                del self._segments[uid]
                unlink = entry
        if unlink is not None:
            self._unlink_segment(unlink)

    # -- introspection -----------------------------------------------------

    def active_pools(self) -> tuple[tuple[str, int], ...]:
        """Keys of the live (non-broken, leased or leasable) pools."""
        with self._lock:
            return tuple(self._pools)

    def holders(self, kind: str, workers: int) -> int:
        """Current lease count on one keyed pool (0 if absent)."""
        with self._lock:
            shared = self._pools.get((kind, workers))
            return 0 if shared is None else shared.holders

    def live_leases(self) -> int:
        """Outstanding pool leases across every (kind, width)."""
        with self._lock:
            # repro: lint-ok[REP001] integer lease counters, order-free
            return sum(shared.holders for shared in self._pools.values())

    def table_channel_backend(self) -> str:
        """The resolved channel backend (``"shm"`` or ``"manager"``)."""
        return self._table_backend

    def has_table_channel(self) -> bool:
        """Whether the table channel is currently up."""
        with self._lock:
            if self._table_backend == "manager":
                return self._tables is not None
            return self._shm_channel_up

    def term_table_bytes(self) -> int:
        """Bytes currently pinned in shared-memory term tables.

        The manager backend reports 0: its payloads live inside the
        manager process, not in segments this registry can measure.
        """
        with self._lock:
            # repro: lint-ok[REP001] integer byte sizes, order-free
            return sum(entry.size for entry in self._segments.values())

    def published_uids(self) -> tuple[int, ...]:
        """Engine uids currently published to workers (for tests)."""
        with self._lock:
            if self._table_backend == "manager":
                tables = self._tables
            else:
                return tuple(sorted(self._segments))
        if tables is None:
            return ()
        return tuple(sorted(tables.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)


# -- process-global default -------------------------------------------------

_default_registry: PoolRegistry | None = None
_default_registry_lock = threading.Lock()


def default_registry() -> PoolRegistry:
    """The process-wide registry engines share unless told otherwise."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = PoolRegistry()
        return _default_registry
