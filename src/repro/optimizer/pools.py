"""Shared, ref-counted worker-pool ownership across evaluation engines.

Before this module, every :class:`~repro.optimizer.engine.EvaluationEngine`
owned its evaluation pool outright: N cached engines meant N
``ProcessPoolExecutor``s, N sets of worker processes, and N pools leaked
whenever an engine was dropped without ``close()``.  The
:class:`PoolRegistry` inverts that ownership:

- pools are keyed by ``(kind, workers)`` and **ref-counted** — every
  engine backend acquires a :class:`PoolHandle` lease and the executor
  is created on the first acquire and shut down deterministically when
  the last holder releases;
- worker processes are seeded once (via the pool initializer) with a
  :class:`multiprocessing.managers.SyncManager` dict proxy — the
  registry's *table channel* — and fetch each engine's pickled term
  tables on demand, caching them locally keyed by the engine's unique
  id.  One pool's workers therefore serve chunks for any number of
  engines concurrently, and a chunk carries only ``(engine uid,
  (option_id, indices), ...)`` — never the precomputes;
- a worker failure marks the pool *broken*: it leaves the registry map
  immediately (so the next acquire builds a fresh pool) and is shut
  down once its last holder releases.

A process-global :func:`default_registry` makes the sharing automatic:
engines built without an explicit registry — including every engine a
broker's :class:`~repro.broker.api.EngineCache` builds — share one
process pool per width instead of spawning their own.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.errors import OptimizerError

#: Pool kinds the registry can build.
POOL_KINDS = ("thread", "process")

#: Per-worker cap on locally cached engine term tables.  Tables are
#: fetched from the registry's table channel on first use and kept in an
#: LRU so a long-lived shared pool serving many short-lived engines does
#: not accumulate every table it ever saw.
WORKER_TABLE_LIMIT = 32


# -- worker-side plumbing ---------------------------------------------------
#
# These globals live in each *worker process* (the parent's copies are
# never used).  The initializer runs once per worker at pool startup;
# afterwards every chunk resolves its engine's tables through
# ``worker_payload`` — a local-cache hit in the steady state, one
# manager round-trip per (worker, engine) pairing at worst.

_WORKER_CHANNEL = None
_WORKER_TABLES: "OrderedDict[int, object]" = OrderedDict()


def _pool_worker_init(channel) -> None:
    """Install the registry's table channel in a new worker process."""
    global _WORKER_CHANNEL
    _WORKER_CHANNEL = channel
    _WORKER_TABLES.clear()


def worker_payload(uid: int):
    """Resolve one engine's published tables inside a worker process.

    Local LRU first, then the manager-backed table channel.  A missing
    uid means the engine retracted its tables (closed) while chunks were
    still queued — surfaced as a structured error rather than a
    ``KeyError`` traceback pickled across the pool boundary.
    """
    tables = _WORKER_TABLES
    if uid in tables:
        tables.move_to_end(uid)
        return tables[uid]
    channel = _WORKER_CHANNEL
    if channel is None:
        raise OptimizerError(
            "pool worker was never initialized with a table channel"
        )
    try:
        payload = channel[uid]
    except KeyError:
        raise OptimizerError(
            f"engine {uid} has no published worker tables "
            "(engine closed while chunks were in flight?)"
        ) from None
    tables[uid] = payload
    while len(tables) > WORKER_TABLE_LIMIT:
        tables.popitem(last=False)
    return payload


# -- registry ---------------------------------------------------------------

@dataclass
class PoolRegistryStats:
    """Lifecycle accounting for one :class:`PoolRegistry`.

    ``pools_created``/``pools_closed`` count real executors, not leases;
    a healthy steady state creates one pool per (kind, width) however
    many engines share it.
    """

    pools_created: int = 0
    pools_closed: int = 0
    acquires: int = 0
    releases: int = 0
    invalidations: int = 0

    def snapshot(self) -> "PoolRegistryStats":
        """A point-in-time copy — registries mutate their live stats."""
        return replace(self)

    def to_dict(self) -> dict[str, int]:
        """JSON-safe counters."""
        return {
            "pools_created": self.pools_created,
            "pools_closed": self.pools_closed,
            "acquires": self.acquires,
            "releases": self.releases,
            "invalidations": self.invalidations,
        }


@dataclass
class _SharedPool:
    """One executor plus its lease bookkeeping."""

    key: tuple[str, int]
    pool: object
    holders: int = 0
    broken: bool = False
    closed: bool = False


class PoolHandle:
    """One holder's lease on a shared executor.

    Handles are not thread-safe per se — each backend guards its own
    handle — but :meth:`release` is idempotent and safe to race with
    other holders' releases.
    """

    def __init__(self, registry: "PoolRegistry", shared: _SharedPool) -> None:
        self._registry = registry
        self._shared = shared
        self.released = False

    @property
    def pool(self):
        """The shared executor this lease covers."""
        return self._shared.pool

    @property
    def kind(self) -> str:
        return self._shared.key[0]

    @property
    def workers(self) -> int:
        return self._shared.key[1]

    def release(self, *, invalidate: bool = False) -> None:
        """Give the lease back; the last holder shuts the pool down.

        ``invalidate=True`` additionally marks the pool broken (a worker
        died), evicting it from the registry map at once so concurrent
        and future acquires build a fresh pool instead of inheriting the
        corpse.
        """
        self._registry._release(self, invalidate)


class PoolRegistry:
    """Ref-counted executors shared across evaluation engines.

    Thread-safe.  One registry typically serves a whole process (see
    :func:`default_registry`); tests and specialized deployments can
    build private ones to isolate pool populations.  The registry also
    owns the *table channel* for process pools — a manager-hosted dict
    through which engines publish their per-(cluster, technology) term
    tables to workers exactly once, keyed by engine uid.  The manager
    process starts with the first process-pool lease and stops with the
    last, so an idle registry holds no OS resources at all.
    """

    def __init__(self) -> None:
        # ``_lock`` guards the maps/counters (fast, never held across
        # blocking work); ``_build_lock`` serializes the slow cold path
        # (manager + executor construction, manager teardown) so that a
        # multi-second process-pool spin-up never stalls unrelated
        # acquires and releases.
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()
        self._pools: dict[tuple[str, int], _SharedPool] = {}
        self._manager = None
        self._tables = None
        self._process_holders = 0
        self.stats = PoolRegistryStats()

    # -- leases ------------------------------------------------------------

    def acquire(self, kind: str, workers: int) -> PoolHandle:
        """Lease the ``(kind, workers)`` executor, creating it if needed.

        Raises whatever the underlying executor (or the table-channel
        manager) raises on platforms without thread/process support —
        callers degrade to serial evaluation on failure.
        """
        if kind not in POOL_KINDS:
            raise OptimizerError(
                f"unknown pool kind {kind!r}; valid: {POOL_KINDS}"
            )
        if workers < 1:
            raise OptimizerError(f"workers must be >= 1, got {workers!r}")
        key = (kind, workers)
        handle = self._lease_existing(key)
        if handle is not None:
            return handle
        # Cold path: build outside the map lock.  The build lock keeps
        # concurrent builders from racing each other (and keeps manager
        # teardown from yanking the table channel mid-build).
        with self._build_lock:
            handle = self._lease_existing(key)
            if handle is not None:
                return handle
            with self._lock:
                manager_needed = kind == "process" and self._manager is None
                tables = self._tables
            manager = None
            if manager_needed:
                manager = multiprocessing.Manager()
                tables = manager.dict()
            try:
                pool = self._create(kind, workers, tables)
            except BaseException:
                if manager is not None:
                    manager.shutdown()
                raise
            with self._lock:
                if manager is not None:
                    self._manager = manager
                    self._tables = tables
                shared = _SharedPool(key=key, pool=pool, holders=1)
                self._pools[key] = shared
                self.stats.pools_created += 1
                if kind == "process":
                    self._process_holders += 1
                self.stats.acquires += 1
                return PoolHandle(self, shared)

    def _lease_existing(self, key: tuple[str, int]) -> PoolHandle | None:
        """The fast path: bump an already-built pool's lease count."""
        with self._lock:
            shared = self._pools.get(key)
            if shared is None:
                return None
            shared.holders += 1
            if key[0] == "process":
                self._process_holders += 1
            self.stats.acquires += 1
            return PoolHandle(self, shared)

    def _create(self, kind: str, workers: int, tables):
        if kind == "thread":
            return ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="engine-eval"
            )
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
            initargs=(tables,),
        )

    def _release(self, handle: PoolHandle, invalidate: bool) -> None:
        shutdown_pool = None
        maybe_shutdown_manager = False
        with self._lock:
            if handle.released:
                return
            handle.released = True
            self.stats.releases += 1
            shared = handle._shared
            shared.holders -= 1
            if invalidate and not shared.broken:
                shared.broken = True
                self.stats.invalidations += 1
            if self._pools.get(shared.key) is shared and (
                shared.broken or shared.holders <= 0
            ):
                del self._pools[shared.key]
            if shared.holders <= 0 and not shared.closed:
                shared.closed = True
                shutdown_pool = shared.pool
                self.stats.pools_closed += 1
            if shared.key[0] == "process":
                self._process_holders -= 1
                maybe_shutdown_manager = self._process_holders <= 0
        # Executor/manager teardown can block; never do it under the
        # map lock.
        if shutdown_pool is not None:
            shutdown_pool.shutdown(wait=True)
        if maybe_shutdown_manager:
            # Serialize with builders: a cold-path acquire that already
            # read the live table channel must finish (and re-raise the
            # process holder count) before the manager may go down.
            with self._build_lock:
                with self._lock:
                    manager = None
                    if self._process_holders <= 0 and self._manager is not None:
                        manager, self._manager = self._manager, None
                        self._tables = None
                if manager is not None:
                    manager.shutdown()

    # -- table channel -----------------------------------------------------

    def publish(self, uid: int, payload) -> None:
        """Make ``payload`` fetchable by pool workers under ``uid``.

        Requires a live process-pool lease (the manager's lifetime is
        tied to process holders); backends publish immediately after
        acquiring their handle and before submitting any chunk.
        """
        with self._lock:
            tables = self._tables
        if tables is None:
            raise OptimizerError(
                "cannot publish worker tables without an active process pool"
            )
        tables[uid] = payload

    def retract(self, uid: int) -> None:
        """Withdraw ``uid``'s published tables (idempotent)."""
        with self._lock:
            tables = self._tables
        if tables is not None:
            tables.pop(uid, None)

    # -- introspection -----------------------------------------------------

    def active_pools(self) -> tuple[tuple[str, int], ...]:
        """Keys of the live (non-broken, leased or leasable) pools."""
        with self._lock:
            return tuple(self._pools)

    def holders(self, kind: str, workers: int) -> int:
        """Current lease count on one keyed pool (0 if absent)."""
        with self._lock:
            shared = self._pools.get((kind, workers))
            return 0 if shared is None else shared.holders

    def has_table_channel(self) -> bool:
        """Whether the manager-backed table channel is currently up."""
        with self._lock:
            return self._tables is not None

    def published_uids(self) -> tuple[int, ...]:
        """Engine uids currently published to workers (for tests)."""
        with self._lock:
            tables = self._tables
        if tables is None:
            return ()
        return tuple(sorted(tables.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)


# -- process-global default -------------------------------------------------

_default_registry: PoolRegistry | None = None
_default_registry_lock = threading.Lock()


def default_registry() -> PoolRegistry:
    """The process-wide registry engines share unless told otherwise."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = PoolRegistry()
        return _default_registry
