"""Cost/uptime Pareto frontier over evaluated options.

The minimum-TCO recommendation collapses cost and risk into one number;
customers often want to *see* the trade-off instead.  The frontier keeps
every option for which no other option is at least as cheap (``C_HA``)
and at least as available, with one of the two strictly better.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.optimizer.result import EvaluatedOption


def dominates(a: EvaluatedOption, b: EvaluatedOption) -> bool:
    """True when ``a`` is no worse than ``b`` on both axes, better on one."""
    cheaper_or_equal = a.tco.ha_cost <= b.tco.ha_cost
    at_least_as_available = a.tco.uptime_probability >= b.tco.uptime_probability
    strictly_better = (
        a.tco.ha_cost < b.tco.ha_cost
        or a.tco.uptime_probability > b.tco.uptime_probability
    )
    return cheaper_or_equal and at_least_as_available and strictly_better


def pareto_frontier(options: Iterable[EvaluatedOption]) -> tuple[EvaluatedOption, ...]:
    """Non-dominated options, sorted by ``C_HA`` ascending.

    Ties on both axes keep the option with the lowest id (deterministic
    output for reporting).
    """
    pool: Sequence[EvaluatedOption] = sorted(
        options, key=lambda option: (option.tco.ha_cost, -option.tco.uptime_probability, option.option_id)
    )
    frontier: list[EvaluatedOption] = []
    best_uptime = -1.0
    seen: set[tuple[float, float]] = set()
    for option in pool:
        key = (option.tco.ha_cost, option.tco.uptime_probability)
        if key in seen:
            continue
        if option.tco.uptime_probability > best_uptime:
            frontier.append(option)
            best_uptime = option.tco.uptime_probability
            seen.add(key)
    return tuple(frontier)
