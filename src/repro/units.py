"""Time and money unit helpers shared across the library.

The paper's model (Eq. 5) mixes several time bases: node failure rates are
per *year*, failover times are in *minutes*, penalties are per *hour* and
TCO is per *month*.  Keeping the conversions in one module avoids the
class of bug where a caller divides by the wrong constant.

``MINUTES_PER_YEAR`` is the paper's ``delta`` = 525 600 (365-day year).
"""

from __future__ import annotations

MINUTES_PER_HOUR = 60
HOURS_PER_DAY = 24
DAYS_PER_YEAR = 365
MONTHS_PER_YEAR = 12

MINUTES_PER_DAY = MINUTES_PER_HOUR * HOURS_PER_DAY
#: The paper's ``delta``: number of minutes in a (non-leap) year.
MINUTES_PER_YEAR = MINUTES_PER_DAY * DAYS_PER_YEAR
HOURS_PER_YEAR = HOURS_PER_DAY * DAYS_PER_YEAR
#: Average hours per month used by Eq. 5: ``delta / (12 * 60)`` = 730.
HOURS_PER_MONTH = MINUTES_PER_YEAR / (MONTHS_PER_YEAR * MINUTES_PER_HOUR)
MINUTES_PER_MONTH = MINUTES_PER_YEAR / MONTHS_PER_YEAR


def minutes_to_hours(minutes: float) -> float:
    """Convert minutes to hours."""
    return minutes / MINUTES_PER_HOUR


def hours_to_minutes(hours: float) -> float:
    """Convert hours to minutes."""
    return hours * MINUTES_PER_HOUR


def yearly_to_monthly(amount_per_year: float) -> float:
    """Convert a per-year quantity (cost, hours, ...) to per-month."""
    return amount_per_year / MONTHS_PER_YEAR


def monthly_to_yearly(amount_per_month: float) -> float:
    """Convert a per-month quantity to per-year."""
    return amount_per_month * MONTHS_PER_YEAR


def probability_to_minutes_per_year(probability: float) -> float:
    """Downtime probability -> expected downtime minutes in a year."""
    return probability * MINUTES_PER_YEAR


def probability_to_hours_per_month(probability: float) -> float:
    """Downtime probability -> expected downtime hours in a month.

    This is the paper's ``(U_SLA/100 - U_s) * delta / (12 * 60)``
    conversion applied to a single probability.
    """
    return probability * MINUTES_PER_YEAR / (MONTHS_PER_YEAR * MINUTES_PER_HOUR)


def availability_to_nines(availability: float) -> float:
    """Express an availability as a (possibly fractional) count of nines.

    ``0.999 -> 3.0``; ``1.0`` maps to ``float('inf')``.  Values at or
    below 0 are reported as 0 nines.
    """
    import math

    if availability >= 1.0:
        return float("inf")
    downtime = 1.0 - availability
    if downtime >= 1.0:
        return 0.0
    return -math.log10(downtime)


def format_money(amount: float) -> str:
    """Render a dollar amount with thousands separators, e.g. ``$1,234.56``.

    Negative amounts render as ``-$123.45``.
    """
    sign = "-" if amount < 0 else ""
    return f"{sign}${abs(amount):,.2f}"


def format_percent(fraction: float, places: int = 4) -> str:
    """Render a fraction (0..1) as a percentage string."""
    return f"{fraction * 100:.{places}f}%"
