"""The broker's asyncio wire transport: envelopes over HTTP/1.1.

PR 2 defined the v2 envelope protocol; this module puts a real socket
in front of it.  :class:`BrokerServer` is a stdlib-only asyncio HTTP
server speaking JSON envelopes:

==========================  ==============================================
``POST /v2/recommend``      one :class:`RecommendEnvelope` in, one
                            :class:`ReportEnvelope` out
``POST /v2/batch``          JSONL of request envelopes in; report
                            envelopes stream back chunk-by-chunk in
                            submission order as jobs finish
``POST /v2/jobs``           submit → ``202`` + job envelope
``GET /v2/jobs/{id}``       poll → job envelope
``GET /v2/jobs/{id}/result``  ``200`` report / ``202`` still running
``POST /v2/ingest``         JSONL telemetry records → sharded pipeline
``POST /v2/ingest/flush``   force a snapshot merge (admin/testing)
``GET /v2/traces``          recent trace summaries (``?min_duration=``,
                            ``?limit=``); 404 when tracing is off
``GET /v2/traces/{id}``     one trace's full span list
``GET /metrics``            Prometheus text exposition
``GET /healthz``            liveness probe
==========================  ==============================================

Tracing (``trace=True`` / ``repro serve --trace``) threads a
:class:`~repro.obs.trace.Tracer` through the session, the engines and
the metrics registry.  Traced ``/v2/recommend`` and ``/v2/jobs``
requests open the root ``request`` span here (back-dated to parse
start), honour a client-stamped ``trace`` field on the envelope, and
return the trace id in the ``X-Repro-Trace-Id`` response header.
Disabled tracing costs the hot path one ``is not None`` check.

Every failure is answered with a structured
:class:`~repro.broker.envelope.ErrorEnvelope` and a non-2xx status —
malformed JSON, unsupported ``schema_version``, unknown provider or job
ids — never a traceback, never a dropped connection.

Backpressure and shutdown:

- request head and body sizes are bounded (413 beyond the cap);
- a server-wide semaphore caps in-flight request handling; excess
  requests queue at the socket, and responses are written through
  ``writer.drain()`` so slow readers throttle their own connection;
- ``stop()`` closes the listener, wakes idle keep-alive connections,
  lets in-flight requests finish (bounded by ``grace``), then closes
  the session and flushes/closes the ingestion pipeline.

CPU-bound optimization work never blocks the event loop: it runs on
the loop's default thread-pool executor, where the
:class:`~repro.broker.api.BrokerSession`'s engine-cache locking already
makes concurrent serving safe.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping
from urllib.parse import parse_qs

from repro.broker.envelope import (
    ENVELOPE_SCHEMA_VERSION,
    ErrorEnvelope,
    RecommendEnvelope,
)
from repro.broker.service import BrokerService
from repro.errors import (
    BrokerError,
    InsufficientTelemetryError,
    ReproError,
    UnknownNameError,
    ValidationError,
)
from repro.obs import clock
from repro.obs.logging import log_slow_request
from repro.obs.profile import maybe_profile, profile_summary
from repro.obs.trace import SpanContext, Tracer, TraceStore, parse_traceparent
from repro.server.hardening import (
    IDEMPOTENCY_KEY_HEADER,
    MAX_IDEMPOTENCY_KEY_LENGTH,
    REPLAY_HEADER,
    IdempotencyStore,
    RateLimiter,
    ReplayKey,
    StoredResponse,
    authenticate,
    principal_for,
)
from repro.server.ingest import ShardedIngestor
from repro.server.metrics import ServerMetrics

logger = logging.getLogger("repro.server")

#: Reason phrases for the statuses this server emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Response header carrying the request's trace id when tracing is on.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Every (method, route-pattern) pair this server serves — the single
#: source of truth tests assert client retry policy against: a method
#: appears in :data:`~repro.server.client.ServerClient.IDEMPOTENT_METHODS`
#: only if every route serving it really is idempotent.
SERVED_ROUTES: tuple[tuple[str, str], ...] = (
    ("POST", "/v2/recommend"),
    ("POST", "/v2/batch"),
    ("POST", "/v2/jobs"),
    ("GET", "/v2/jobs/{id}"),
    ("GET", "/v2/jobs/{id}/result"),
    ("POST", "/v2/ingest"),
    ("POST", "/v2/ingest/flush"),
    ("GET", "/v2/traces"),
    ("GET", "/v2/traces/{id}"),
    ("GET", "/metrics"),
    ("GET", "/healthz"),
)

#: Routes accepting an explicit ``Idempotency-Key`` (header or envelope
#: field); ``job-result`` additionally replays implicitly, keyed by path.
KEYED_ROUTES = frozenset({"recommend", "jobs", "ingest"})


def error_envelope_for(
    exc: BaseException, request_id: str | None = None
) -> ErrorEnvelope:
    """Map an exception to its wire form (status + stable error slug)."""
    if isinstance(exc, UnknownNameError):
        return ErrorEnvelope(404, "unknown-name", str(exc), request_id)
    if isinstance(exc, InsufficientTelemetryError):
        return ErrorEnvelope(422, "insufficient-telemetry", str(exc), request_id)
    if isinstance(exc, ValidationError):
        return ErrorEnvelope(400, "validation-error", str(exc), request_id)
    if isinstance(exc, BrokerError):
        return ErrorEnvelope(400, "broker-error", str(exc), request_id)
    if isinstance(exc, ReproError):
        return ErrorEnvelope(400, "error", str(exc), request_id)
    # Unexpected failure: log the traceback server-side, never wire it.
    logger.exception("internal error serving request", exc_info=exc)
    return ErrorEnvelope(
        500, "internal-error",
        f"internal server error ({type(exc).__name__})", request_id,
    )


class _HttpError(Exception):
    """Internal: short-circuit a request with a ready error envelope."""

    def __init__(self, envelope: ErrorEnvelope) -> None:
        super().__init__(envelope.message)
        self.envelope = envelope


@dataclass
class _Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    peer: str = ""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class _Response:
    """One response: either a complete body or an async chunk stream.

    ``replayable`` lets a handler override the idempotency store's
    default commit policy (2xx on keyed routes): ``True`` forces a
    response to be recorded (e.g. a job's *terminal* error — that error
    IS the result and must replay), ``False`` forbids it, ``None``
    defers to the policy.
    """

    status: int
    body: bytes = b""
    content_type: str = _JSON
    stream: AsyncIterator[bytes] | None = None
    headers: dict[str, str] = field(default_factory=dict)
    replayable: bool | None = None


def _json_response(status: int, payload: Mapping[str, Any] | str) -> _Response:
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _Response(status=status, body=body)


def _error_response(envelope: ErrorEnvelope) -> _Response:
    return _json_response(envelope.status, envelope.to_json())


class BrokerServer:
    """An asyncio TCP/HTTP front-end over one broker.

    The server owns a :class:`~repro.broker.api.BrokerSession` (the
    cross-request engine cache and job table), a
    :class:`~repro.server.ingest.ShardedIngestor` over the broker's
    serving telemetry store, and a :class:`ServerMetrics` registry.
    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        broker: BrokerService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 4,
        ingest_backend: str = "thread",
        merge_interval: float | None = 0.5,
        max_workers: int = 4,
        cache_capacity: int = 16,
        eval_backend: str | None = None,
        finished_job_ttl: float | None = None,
        megabatch: bool = False,
        megabatch_window: float | None = None,
        megabatch_max_rows: int | None = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_inflight: int = 32,
        grace: float = 5.0,
        trace: bool = False,
        trace_capacity: int = 256,
        slow_request_threshold: float | None = None,
        profile_requests: bool = False,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_limit_burst: int | None = None,
        idempotency_capacity: int = 1024,
        exempt_routes: tuple[str, ...] = ("healthz", "metrics"),
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {max_inflight!r}"
            )
        if not trace:
            if slow_request_threshold is not None:
                raise ValidationError(
                    "slow_request_threshold requires trace=True"
                )
            if profile_requests:
                raise ValidationError("profile_requests requires trace=True")
        if slow_request_threshold is not None and slow_request_threshold < 0.0:
            raise ValidationError(
                "slow_request_threshold must be >= 0, got "
                f"{slow_request_threshold!r}"
            )
        if auth_token is not None and not auth_token:
            raise ValidationError("auth_token must be non-empty when set")
        self.broker = broker
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.grace = grace
        self.auth_token = auth_token
        # Liveness/scrape probes stay reachable without credentials and
        # outside the rate limit, so hardening never blinds monitoring.
        self.exempt_routes = frozenset(exempt_routes)
        self.rate_limiter = (
            RateLimiter(rate_limit, rate_limit_burst)
            if rate_limit is not None
            else None
        )
        self.idempotency = IdempotencyStore(capacity=idempotency_capacity)
        self.slow_request_threshold = slow_request_threshold
        self.profile_requests = profile_requests
        if trace:
            self.trace_store: TraceStore | None = TraceStore(
                capacity=trace_capacity
            )
            self.tracer: Tracer | None = Tracer(self.trace_store)
        else:
            self.trace_store = None
            self.tracer = None
        if megabatch:
            from repro.optimizer.megabatch import MegabatchConfig

            defaults = MegabatchConfig()
            megabatch_arg: object = MegabatchConfig(
                window_seconds=(
                    defaults.window_seconds
                    if megabatch_window is None
                    else megabatch_window
                ),
                max_rows=(
                    defaults.max_rows
                    if megabatch_max_rows is None
                    else megabatch_max_rows
                ),
            )
        else:
            megabatch_arg = False
        self.session = broker.session(
            cache_capacity=cache_capacity,
            max_workers=max_workers,
            backend=eval_backend,
            finished_job_ttl=finished_job_ttl,
            megabatch=megabatch_arg,
            tracer=self.tracer,
        )
        self.ingestor = ShardedIngestor(
            broker.telemetry,
            num_shards=shards,
            backend=ingest_backend,
            merge_interval=merge_interval,
        )
        self.metrics = ServerMetrics(
            self.session,
            self.ingestor,
            tracer=self.tracer,
            idempotency_store=self.idempotency,
            rate_limiter=self.rate_limiter,
        )
        self._max_inflight = max_inflight
        self._server: asyncio.Server | None = None
        self._inflight: asyncio.Semaphore | None = None
        self._closing: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._inflight = asyncio.Semaphore(self._max_inflight)
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=64 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("broker server listening on %s:%s", self.host, self.port)

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (from another task)."""
        assert self._closing is not None, "start() first"
        await self._closing.wait()

    async def stop(self) -> None:
        """Graceful shutdown; idempotent.

        Stops accepting, wakes idle keep-alive reads, waits up to
        ``grace`` seconds for in-flight requests, cancels stragglers,
        then tears down the session and the ingestion pipeline (final
        telemetry merge included).
        """
        if self._stopped:
            return
        self._stopped = True
        if self._closing is not None:
            self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=self.grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.session.close)
        await loop.run_in_executor(None, self.ingestor.close)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None and self._closing is not None
        self._connections.add(task)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername or "")
        try:
            while not self._closing.is_set():
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, _Response):
                    # Unparseable/oversized head: answer and hang up.
                    await self._write_response(writer, request, keep_alive=False)
                    break
                request.peer = peer
                started = clock.perf_counter()
                route, response = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._closing.is_set()
                await self._write_response(writer, response, keep_alive)
                elapsed = clock.perf_counter() - started
                self.metrics.observe_request(route, response.status, elapsed)
                threshold = self.slow_request_threshold
                if threshold is not None and elapsed >= threshold:
                    log_slow_request(
                        logger,
                        route=route,
                        status=response.status,
                        seconds=elapsed,
                        threshold=threshold,
                        trace_id=response.headers.get(TRACE_HEADER),
                    )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response; nothing to answer
        except asyncio.CancelledError:
            raise
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_Request | _Response | None":
        """Read one request; None on clean EOF/shutdown, _Response on error.

        The idle read races the shutdown event so ``stop()`` does not
        wait out keep-alive connections that will never speak again.
        """
        assert self._closing is not None
        head_task = asyncio.ensure_future(reader.readuntil(b"\r\n\r\n"))
        closing_task = asyncio.ensure_future(self._closing.wait())
        try:
            done, _ = await asyncio.wait(
                {head_task, closing_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            closing_task.cancel()
        if head_task not in done:
            head_task.cancel()
            await asyncio.gather(head_task, return_exceptions=True)
            return None
        try:
            head = head_task.result()
        except asyncio.IncompleteReadError:
            return None  # EOF between requests: clean close
        except asyncio.LimitOverrunError:
            return _error_response(
                ErrorEnvelope(413, "request-too-large", "request head too large")
            )
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return _error_response(
                ErrorEnvelope(400, "malformed-request", "unparseable request line")
            )
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            return _error_response(
                ErrorEnvelope(
                    400, "malformed-request",
                    "chunked request bodies are not supported; "
                    "send Content-Length",
                )
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            return _error_response(
                ErrorEnvelope(400, "malformed-request", "bad Content-Length")
            )
        if length > self.max_body_bytes:
            return _error_response(
                ErrorEnvelope(
                    413, "request-too-large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            )
        body = await reader.readexactly(length) if length else b""
        return _Request(method=method, path=path, headers=headers, body=body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: _Response,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        headers = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(
            f"{name}: {value}" for name, value in response.headers.items()
        )
        if response.stream is None:
            headers.append(f"Content-Length: {len(response.body)}")
            head = "\r\n".join(headers) + "\r\n\r\n"
            writer.write(head.encode("latin-1") + response.body)
            await writer.drain()
            return
        headers.append("Transfer-Encoding: chunked")
        head = "\r\n".join(headers) + "\r\n\r\n"
        writer.write(head.encode("latin-1"))
        await writer.drain()
        try:
            async for chunk in response.stream:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
                await writer.drain()  # per-connection backpressure
        finally:
            # Deterministic generator finalization: a disconnect mid-
            # stream must run the generator's cleanup now, not at GC.
            await response.stream.aclose()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: _Request) -> tuple[str, _Response]:
        """Route one request through the hardening pipeline.

        Order matters: authentication first (an unauthenticated caller
        learns nothing, not even its rate-limit state), then rate
        limiting, then idempotency replay — a replay costs no handler
        work but still spends a token, so retry storms cannot bypass
        the limiter.  Every exception becomes an error envelope.
        """
        assert self._inflight is not None
        route, handler = self._route(request)
        guarded = self._guard(request, route)
        if guarded is not None:
            return route, guarded
        try:
            replay_key = self._replay_key(request, route)
        except _HttpError as exc:
            return route, _error_response(exc.envelope)
        if replay_key is not None:
            return route, await self._keyed_dispatch(
                request, route, handler, replay_key
            )
        async with self._inflight:
            try:
                return route, await handler(request)
            except _HttpError as exc:
                return route, _error_response(exc.envelope)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                return route, _error_response(error_envelope_for(exc))

    def _guard(self, request: _Request, route: str) -> "_Response | None":
        """Auth and rate-limit checks; a _Response rejects the request."""
        if route in self.exempt_routes:
            return None
        if self.auth_token is not None:
            failure = authenticate(self.auth_token, request.headers)
            if failure is not None:
                self.metrics.observe_auth_failure(failure.status)
                response = _error_response(failure)
                if failure.status == 401:
                    response.headers["WWW-Authenticate"] = "Bearer"
                return response
        if self.rate_limiter is not None:
            principal = principal_for(
                request.headers, request.peer, self.auth_token is not None
            )
            retry_after = self.rate_limiter.check(principal)
            if retry_after > 0.0:
                self.metrics.observe_rate_limited(route)
                response = _error_response(
                    ErrorEnvelope(
                        429, "rate-limited",
                        f"request rate limit exceeded for this client; "
                        f"retry after {retry_after:.3f}s",
                    )
                )
                # Decimal seconds (an RFC 9110 extension): integer
                # rounding would force sub-second buckets to lie.
                response.headers["Retry-After"] = f"{retry_after:.3f}"
                return response
        return None

    def _replay_key(self, request: _Request, route: str) -> ReplayKey | None:
        """The idempotency-table key for this request, if it has one.

        Explicitly-keyed routes take the ``Idempotency-Key`` header or,
        for envelope routes, the envelope's ``idempotency_key`` field.
        ``job-result`` is keyed implicitly by path: its first terminal
        response marks the job retrieved (eviction-eligible), so a
        "safe" idempotent retry after a dropped response must replay
        from the table rather than 404 on the evicted job.
        """
        principal = principal_for(
            request.headers, request.peer, self.auth_token is not None
        )
        if route == "job-result":
            return (principal, route, "path", request.path)
        if route not in KEYED_ROUTES:
            return None
        key = request.headers.get(IDEMPOTENCY_KEY_HEADER.lower())
        if key is None and b'"idempotency_key"' in request.body:
            # Envelope-stamped key: peek without full envelope
            # validation (the handler owns that) — a non-dict or
            # non-string field is the handler's error to report.
            try:
                payload = json.loads(request.body)
            except ValueError:
                return None
            value = (
                payload.get("idempotency_key")
                if isinstance(payload, dict)
                else None
            )
            if isinstance(value, str):
                key = value
        if key is None or not key:
            return None
        if len(key) > MAX_IDEMPOTENCY_KEY_LENGTH:
            raise _HttpError(
                ErrorEnvelope(
                    400, "validation-error",
                    f"idempotency key of {len(key)} characters exceeds "
                    f"the {MAX_IDEMPOTENCY_KEY_LENGTH}-character limit",
                )
            )
        return (principal, route, "key", key)

    async def _keyed_dispatch(
        self,
        request: _Request,
        route: str,
        handler,
        key: ReplayKey,
    ) -> _Response:
        """Run one keyed request through the replay table.

        Waiters block on the leader's future *without* holding an
        inflight-semaphore slot, so a full house of duplicates can
        never deadlock the leader out of the semaphore.
        """
        assert self._inflight is not None
        store = self.idempotency
        while True:
            action, entry = store.begin(key)
            if action == "replay":
                assert isinstance(entry, StoredResponse)
                return self._replayed_response(route, entry)
            if action == "wait":
                stored = await entry
                if stored is not None:
                    return self._replayed_response(route, stored)
                continue  # leader failed: re-race for the claim
            future = entry
            try:
                async with self._inflight:
                    try:
                        response = await handler(request)
                    except _HttpError as exc:
                        response = _error_response(exc.envelope)
                    except Exception as exc:  # noqa: BLE001 - wire boundary
                        response = _error_response(error_envelope_for(exc))
            except BaseException:
                # Cancellation (shutdown) must release waiters.
                store.abandon(key, future)
                raise
            if self._should_store(route, response):
                store.commit(
                    key,
                    future,
                    StoredResponse(
                        status=response.status,
                        content_type=response.content_type,
                        body=response.body,
                        headers=dict(response.headers),
                    ),
                )
            else:
                store.abandon(key, future)
            return response

    def _replayed_response(self, route: str, stored: StoredResponse) -> _Response:
        self.metrics.observe_replay(route)
        headers = dict(stored.headers)
        headers[REPLAY_HEADER] = "true"
        return _Response(
            status=stored.status,
            body=stored.body,
            content_type=stored.content_type,
            headers=headers,
        )

    def _should_store(self, route: str, response: _Response) -> bool:
        """Commit policy: which responses enter the replay table."""
        if response.stream is not None:
            return False
        if response.replayable is not None:
            return response.replayable
        if route == "job-result":
            # Only terminal outcomes replay; the handler marks them.
            # A 202 "still running" or a 404 must re-execute.
            return False
        # Keyed submission/ingest: success is committed; errors are
        # abandoned so a transient failure never pins under the key.
        return 200 <= response.status < 300

    def _route(self, request: _Request):
        method = request.method
        # Route on the path component only; query strings are accepted
        # (and ignored) on every endpoint, per standard request-target
        # handling.
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        table = {
            ("POST", "/v2/recommend"): ("recommend", self._post_recommend),
            ("POST", "/v2/batch"): ("batch", self._post_batch),
            ("POST", "/v2/jobs"): ("jobs", self._post_jobs),
            ("POST", "/v2/ingest"): ("ingest", self._post_ingest),
            ("POST", "/v2/ingest/flush"): ("ingest-flush", self._post_flush),
            ("GET", "/v2/traces"): ("traces", self._get_traces),
            ("GET", "/metrics"): ("metrics", self._get_metrics),
            ("GET", "/healthz"): ("healthz", self._get_health),
        }
        if (method, path) in table:
            return table[(method, path)]
        known_paths = {p for _, p in table} | {
            "/v2/jobs/{id}", "/v2/jobs/{id}/result", "/v2/traces/{id}",
        }
        if path.startswith("/v2/traces/"):
            trace_id = path[len("/v2/traces/"):]
            if "/" not in trace_id:
                if method == "GET":
                    return "trace", self._trace_handler(trace_id)
                return "unmatched", self._method_not_allowed
            return "unmatched", self._not_found(sorted(known_paths))
        if path.startswith("/v2/jobs/"):
            tail = path[len("/v2/jobs/"):]
            if tail.endswith("/result"):
                job_id = tail[: -len("/result")]
                if "/" not in job_id:
                    if method == "GET":
                        return "job-result", self._job_result_handler(job_id)
                    return "unmatched", self._method_not_allowed
            elif "/" not in tail:
                if method == "GET":
                    return "job", self._job_poll_handler(tail)
                return "unmatched", self._method_not_allowed
            # Deeper job subpaths are unknown routes, not method errors.
            return "unmatched", self._not_found(sorted(known_paths))
        if any(p == path for _, p in table):
            return "unmatched", self._method_not_allowed
        return "unmatched", self._not_found(sorted(known_paths))

    async def _method_not_allowed(self, request: _Request) -> _Response:
        raise _HttpError(
            ErrorEnvelope(
                405, "method-not-allowed",
                f"{request.method} is not supported on {request.path}",
            )
        )

    def _not_found(self, known: list[str]):
        async def handler(request: _Request) -> _Response:
            raise _HttpError(
                ErrorEnvelope(
                    404, "unknown-route",
                    f"no route for {request.path!r}; available: {known}",
                )
            )

        return handler

    # -- handlers ----------------------------------------------------------

    def _parse_envelope(self, body: bytes) -> RecommendEnvelope:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"request body is not UTF-8: {exc}") from exc
        return RecommendEnvelope.from_json(text)

    async def _post_recommend(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        if self.tracer is not None:
            payload, trace_id = await loop.run_in_executor(
                None, self._traced_recommend, request.body
            )
            response = _json_response(200, payload)
            response.headers[TRACE_HEADER] = trace_id
            return response
        envelope = self._parse_envelope(request.body)
        try:
            report = await loop.run_in_executor(
                None, self.session.recommend_envelope, envelope
            )
        except ReproError as exc:
            raise _HttpError(error_envelope_for(exc, envelope.request_id))
        return _json_response(200, report.to_json())

    @staticmethod
    def _envelope_trace_parent(envelope: RecommendEnvelope) -> SpanContext | None:
        """The client's traceparent, if present and well-formed."""
        if envelope.trace is None:
            return None
        try:
            return parse_traceparent(envelope.trace)
        except ValidationError:
            return None  # garbage traceparent: start a fresh trace

    def _traced_recommend(self, body: bytes) -> tuple[str, str]:
        """Synchronous traced recommend path; runs on the executor.

        Opens the request's root span here (back-dated to when parsing
        started) so the whole pipeline — parse, session, backend chunks,
        serialization — nests under one trace.  The session sees an
        active context and therefore does not open its own root.
        Returns ``(report JSON, trace id)``.
        """
        tracer = self.tracer
        assert tracer is not None
        parse_started = clock.perf_counter()
        envelope = self._parse_envelope(body)
        parse_ended = clock.perf_counter()
        with tracer.span(
            "request",
            parent=self._envelope_trace_parent(envelope),
            start=parse_started,
            attrs={
                "route": "recommend",
                "request_id": envelope.request_id or "",
            },
        ) as span:
            tracer.record(
                "parse",
                parent=span.context,
                start=parse_started,
                end=parse_ended,
            )
            try:
                with maybe_profile(self.profile_requests) as profiler:
                    report = self.session.recommend_envelope(envelope)
            except ReproError as exc:
                span.attrs["status"] = "error"
                raise _HttpError(
                    error_envelope_for(exc, envelope.request_id)
                ) from exc
            if profiler is not None:
                logger.info(
                    "request profile",
                    extra={
                        "trace_id": span.context.trace_id,
                        "profile": profile_summary(profiler),
                    },
                )
            with tracer.span("serialize"):
                payload = report.to_json()
            span.attrs["status"] = "done"
            return payload, span.context.trace_id

    async def _post_batch(self, request: _Request) -> _Response:
        lines = [
            line
            for line in request.body.decode("utf-8", errors="replace").splitlines()
            if line.strip()
        ]
        if not lines:
            raise ValidationError("batch body contains no request envelopes")
        envelopes = []
        for number, line in enumerate(lines, start=1):
            try:
                envelopes.append(RecommendEnvelope.from_json(line))
            except ValidationError as exc:
                raise ValidationError(f"batch line {number}: {exc}") from exc
        job_ids = [self.session.submit(envelope) for envelope in envelopes]
        loop = asyncio.get_running_loop()

        async def stream() -> AsyncIterator[bytes]:
            # In submission order; jobs run concurrently on the pool.
            try:
                for job_id, envelope in zip(job_ids, envelopes):
                    try:
                        report = await loop.run_in_executor(
                            None, self.session.result_envelope, job_id
                        )
                        line = report.to_json()
                    except ReproError as exc:
                        line = error_envelope_for(
                            exc, envelope.request_id
                        ).to_json()
                    yield line.encode("utf-8") + b"\n"
            finally:
                # The batch's jobs belong to this response: if the
                # client disconnects mid-stream, nothing else holds the
                # ids, so un-streamed reports would be unretrievable
                # AND retention-exempt.  Mark them all retrieved.
                for job_id in job_ids:
                    try:
                        self.session.job(job_id).retrieved = True
                    except UnknownNameError:
                        pass  # already evicted

        return _Response(status=200, stream=stream(), content_type=_JSON)

    async def _post_jobs(self, request: _Request) -> _Response:
        if self.tracer is not None:
            job_id, trace_id = self._traced_submit(request.body)
            response = _json_response(202, self._job_payload(job_id))
            response.headers[TRACE_HEADER] = trace_id
            return response
        envelope = self._parse_envelope(request.body)
        job_id = self.session.submit(envelope)
        return _json_response(202, self._job_payload(job_id))

    def _traced_submit(self, body: bytes) -> tuple[str, str]:
        """Traced job submission: the job's span tree parents here.

        The request span closes when the 202 goes out; the job span it
        parents starts at submission and outlives it (children may end
        after their parent — readers sort by start time, not nesting).
        """
        tracer = self.tracer
        assert tracer is not None
        parse_started = clock.perf_counter()
        envelope = self._parse_envelope(body)
        parse_ended = clock.perf_counter()
        with tracer.span(
            "request",
            parent=self._envelope_trace_parent(envelope),
            start=parse_started,
            attrs={
                "route": "jobs",
                "request_id": envelope.request_id or "",
            },
        ) as span:
            tracer.record(
                "parse",
                parent=span.context,
                start=parse_started,
                end=parse_ended,
            )
            job_id = self.session.submit(envelope)
            span.attrs["job_id"] = job_id
            return job_id, span.context.trace_id

    def _job_payload(self, job_id: str) -> dict[str, Any]:
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "job",
            "job_id": job_id,
            "status": self.session.poll(job_id),
        }

    def _job_poll_handler(self, job_id: str):
        async def handler(request: _Request) -> _Response:
            return _json_response(200, self._job_payload(job_id))

        return handler

    def _job_result_handler(self, job_id: str):
        async def handler(request: _Request) -> _Response:
            job = self.session.job(job_id)
            if not job.done.is_set():
                return _json_response(202, self._job_payload(job_id))
            if job.error is not None:
                # The error IS the result: mark it retrieved so failed
                # jobs participate in retention eviction too, and
                # commit it to the replay table — retrieval may evict
                # the job, so a retried GET must replay, not 404.
                job.retrieved = True
                response = _error_response(
                    error_envelope_for(job.error, job.envelope.request_id)
                )
                response.replayable = True
                return response
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                None, self.session.result_envelope, job_id
            )
            response = _json_response(200, report.to_json())
            response.replayable = True
            return response

        return handler

    async def _post_ingest(self, request: _Request) -> _Response:
        text = request.body.decode("utf-8", errors="replace")
        if not text.strip():
            raise ValidationError("ingest body contains no telemetry records")
        loop = asyncio.get_running_loop()
        routed = await loop.run_in_executor(
            None, self.ingestor.submit_jsonl, text
        )
        return _json_response(
            202,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "ingest-ack",
                "routed": routed,
                "shards": self.ingestor.num_shards,
            },
        )

    async def _post_flush(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        merged = await loop.run_in_executor(None, self.ingestor.flush)
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "ingest-ack",
                "merged": merged,
                "merges": self.ingestor.merges,
            },
        )

    def _require_trace_store(self) -> "TraceStore":
        store = self.trace_store
        if store is None:
            raise _HttpError(
                ErrorEnvelope(
                    404, "tracing-disabled",
                    "tracing is disabled on this server; restart it with "
                    "trace=True (repro serve --trace)",
                )
            )
        return store

    async def _get_traces(self, request: _Request) -> _Response:
        store = self._require_trace_store()
        query = parse_qs(request.path.partition("?")[2])
        try:
            min_duration = float(query.get("min_duration", ["0"])[0])
            limit = int(query.get("limit", ["50"])[0])
        except ValueError as exc:
            raise ValidationError(f"bad traces query parameter: {exc}") from exc
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "traces",
                "traces": store.summaries(
                    min_duration=min_duration, limit=limit
                ),
                "dropped": store.dropped,
            },
        )

    def _trace_handler(self, trace_id: str):
        async def handler(request: _Request) -> _Response:
            store = self._require_trace_store()
            spans = store.get(trace_id)
            if spans is None:
                raise _HttpError(
                    ErrorEnvelope(
                        404, "unknown-name",
                        f"no trace {trace_id!r} in the store (it may have "
                        "been evicted; raise trace_capacity)",
                    )
                )
            return _json_response(
                200,
                {
                    "schema_version": ENVELOPE_SCHEMA_VERSION,
                    "kind": "trace",
                    "trace_id": trace_id,
                    "spans": [span.to_dict() for span in spans],
                },
            )

        return handler

    async def _get_metrics(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, self.metrics.render)
        return _Response(
            status=200, body=body.encode("utf-8"), content_type=_PROMETHEUS
        )

    async def _get_health(self, request: _Request) -> _Response:
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "health",
                "status": "ok",
                "providers": sorted(self.broker.providers),
            },
        )


# -- thread-hosted serving --------------------------------------------------

class ServerHandle:
    """A running :class:`BrokerServer` on a background event loop.

    The synchronous façade tests, the CLI and
    :class:`~repro.server.client.ServerClient` users drive: ``host`` /
    ``port`` / ``url`` for addressing, ``close()`` (or the context
    manager) for graceful shutdown.
    """

    def __init__(
        self,
        server: BrokerServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Gracefully stop the server and join its loop thread."""
        if self._closed:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout=self.server.grace + 30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()


def start_in_thread(broker: BrokerService, **kwargs) -> ServerHandle:
    """Start a :class:`BrokerServer` on a dedicated event-loop thread.

    Blocks until the socket is bound (so ``handle.port`` is final) and
    re-raises any startup failure in the caller.  Keyword arguments are
    forwarded to :class:`BrokerServer`.
    """
    server = BrokerServer(broker, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            # The constructor already opened the session and ingestion
            # workers; a failed bind must not strand them.
            try:
                loop.run_until_complete(server.stop())
            except BaseException:  # noqa: BLE001 - best-effort cleanup
                logger.exception("cleanup after failed start also failed")
            failure.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="broker-server", daemon=True)
    thread.start()
    started.wait()
    if failure:
        loop.close()
        raise failure[0]
    return ServerHandle(server, loop, thread)
