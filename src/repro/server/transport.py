"""The broker's asyncio wire transport: envelopes over HTTP/1.1.

PR 2 defined the v2 envelope protocol; this module puts a real socket
in front of it.  :class:`BrokerServer` is a stdlib-only asyncio HTTP
server speaking JSON envelopes:

==========================  ==============================================
``POST /v2/recommend``      one :class:`RecommendEnvelope` in, one
                            :class:`ReportEnvelope` out
``POST /v2/batch``          JSONL of request envelopes in; report
                            envelopes stream back chunk-by-chunk in
                            submission order as jobs finish
``POST /v2/jobs``           submit → ``202`` + job envelope
``GET /v2/jobs/{id}``       poll → job envelope
``GET /v2/jobs/{id}/result``  ``200`` report / ``202`` still running
``POST /v2/ingest``         JSONL telemetry records → sharded pipeline
``POST /v2/ingest/flush``   force a snapshot merge (admin/testing)
``GET /v2/traces``          recent trace summaries (``?min_duration=``,
                            ``?limit=``); 404 when tracing is off
``GET /v2/traces/{id}``     one trace's full span list
``GET /metrics``            Prometheus text exposition
``GET /healthz``            liveness probe
==========================  ==============================================

PR 10 split the stack in two.  The route handlers and their session /
ingest / metrics state live in :class:`repro.server.core.RequestCore`;
this module keeps the socket frontend.  :class:`HttpEdge` is the
reusable edge — HTTP/1.1 parsing and serialization, keep-alive,
backpressure, graceful shutdown, and the full hardening pipeline
(bearer auth, token-bucket rate limiting, idempotency replay) — with
routing left abstract.  :class:`BrokerServer` composes an
:class:`HttpEdge` directly over a :class:`RequestCore` (the in-process
mode, default); :class:`repro.server.gateway.GatewayServer` composes
the same edge over a partitioned fleet of worker processes.

Tracing (``trace=True`` / ``repro serve --trace``) threads a
:class:`~repro.obs.trace.Tracer` through the session, the engines and
the metrics registry.  Traced ``/v2/recommend`` and ``/v2/jobs``
requests open the root ``request`` span in the core (back-dated to
parse start), honour a client-stamped ``trace`` field on the envelope,
and return the trace id in the ``X-Repro-Trace-Id`` response header.
Disabled tracing costs the hot path one ``is not None`` check.

Every failure is answered with a structured
:class:`~repro.broker.envelope.ErrorEnvelope` and a non-2xx status —
malformed JSON, unsupported ``schema_version``, unknown provider or job
ids — never a traceback, never a dropped connection.

Backpressure and shutdown:

- request head and body sizes are bounded (413 beyond the cap);
- a server-wide semaphore caps in-flight request handling; excess
  requests queue at the socket, and responses are written through
  ``writer.drain()`` so slow readers throttle their own connection;
- ``stop()`` closes the listener, wakes idle keep-alive connections,
  lets in-flight requests finish (bounded by ``grace``), then closes
  the session and flushes/closes the ingestion pipeline.

CPU-bound optimization work never blocks the event loop: it runs on
the loop's default thread-pool executor, where the
:class:`~repro.broker.api.BrokerSession`'s engine-cache locking already
makes concurrent serving safe.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading

from repro.broker.envelope import ErrorEnvelope
from repro.broker.service import BrokerService
from repro.errors import ValidationError
from repro.obs import clock
from repro.obs.logging import log_slow_request
from repro.server.core import (  # noqa: F401 - re-exported compatibility names
    _JSON,
    _PROMETHEUS,
    _REASONS,
    KEYED_ROUTES,
    SERVED_ROUTES,
    TRACE_HEADER,
    RequestCore,
    _error_response,
    _HttpError,
    _json_response,
    _Request,
    _Response,
    error_envelope_for,
    logger,
    resolve_route,
)
from repro.server.hardening import (
    IDEMPOTENCY_KEY_HEADER,
    MAX_IDEMPOTENCY_KEY_LENGTH,
    REPLAY_HEADER,
    IdempotencyStore,
    RateLimiter,
    ReplayKey,
    StoredResponse,
    authenticate,
    principal_for,
)


class HttpEdge:
    """The reusable asyncio HTTP/1.1 edge with edge hardening built in.

    Owns the listening socket, connection lifecycle, request parsing /
    response serialization, the in-flight semaphore, and the guard
    pipeline (auth → rate limit → idempotency replay).  Subclasses
    supply :meth:`_route` — resolve one request to ``(route name, async
    handler)`` — and :meth:`_close_resources` for whatever sits behind
    the edge.  ``port=0`` binds an ephemeral port; read :attr:`port`
    after :meth:`start`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_inflight: int = 32,
        grace: float = 5.0,
        slow_request_threshold: float | None = None,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_limit_burst: int | None = None,
        idempotency_capacity: int = 1024,
        exempt_routes: tuple[str, ...] = ("healthz", "metrics"),
    ) -> None:
        if max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {max_inflight!r}"
            )
        if slow_request_threshold is not None and slow_request_threshold < 0.0:
            raise ValidationError(
                "slow_request_threshold must be >= 0, got "
                f"{slow_request_threshold!r}"
            )
        if auth_token is not None and not auth_token:
            raise ValidationError("auth_token must be non-empty when set")
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.grace = grace
        self.auth_token = auth_token
        # Liveness/scrape probes stay reachable without credentials and
        # outside the rate limit, so hardening never blinds monitoring.
        self.exempt_routes = frozenset(exempt_routes)
        self.rate_limiter = (
            RateLimiter(rate_limit, rate_limit_burst)
            if rate_limit is not None
            else None
        )
        self.idempotency = IdempotencyStore(capacity=idempotency_capacity)
        self.slow_request_threshold = slow_request_threshold
        self._max_inflight = max_inflight
        self._server: asyncio.Server | None = None
        self._inflight: asyncio.Semaphore | None = None
        self._closing: asyncio.Event | None = None
        self._connections: set[asyncio.Task] = set()
        self._stopped = False

    # -- subclass surface --------------------------------------------------

    def _route(self, request: _Request):
        """Resolve one request to ``(route name, async handler)``."""
        raise NotImplementedError

    async def _start_resources(self) -> None:
        """Bring up whatever serves behind the edge (before binding)."""

    async def _close_resources(self) -> None:
        """Tear down whatever serves behind the edge (after draining)."""

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._inflight = asyncio.Semaphore(self._max_inflight)
        self._closing = asyncio.Event()
        await self._start_resources()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=64 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("broker server listening on %s:%s", self.host, self.port)

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` is called (from another task)."""
        assert self._closing is not None, "start() first"
        await self._closing.wait()

    async def stop(self) -> None:
        """Graceful shutdown; idempotent.

        Stops accepting, wakes idle keep-alive reads, waits up to
        ``grace`` seconds for in-flight requests, cancels stragglers,
        then tears down whatever serves behind the edge (session and
        ingestion pipeline in-process; the worker fleet under a
        gateway).
        """
        if self._stopped:
            return
        self._stopped = True
        if self._closing is not None:
            self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=self.grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self._close_resources()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None and self._closing is not None
        self._connections.add(task)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername or "")
        try:
            while not self._closing.is_set():
                request = await self._read_request(reader)
                if request is None:
                    break
                if isinstance(request, _Response):
                    # Unparseable/oversized head: answer and hang up.
                    await self._write_response(writer, request, keep_alive=False)
                    break
                request.peer = peer
                started = clock.perf_counter()
                route, response = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._closing.is_set()
                await self._write_response(writer, response, keep_alive)
                elapsed = clock.perf_counter() - started
                self.metrics.observe_request(route, response.status, elapsed)
                threshold = self.slow_request_threshold
                if threshold is not None and elapsed >= threshold:
                    log_slow_request(
                        logger,
                        route=route,
                        status=response.status,
                        seconds=elapsed,
                        threshold=threshold,
                        trace_id=response.headers.get(TRACE_HEADER),
                    )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response; nothing to answer
        except asyncio.CancelledError:
            raise
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_Request | _Response | None":
        """Read one request; None on clean EOF/shutdown, _Response on error.

        The idle read races the shutdown event so ``stop()`` does not
        wait out keep-alive connections that will never speak again.
        """
        assert self._closing is not None
        head_task = asyncio.ensure_future(reader.readuntil(b"\r\n\r\n"))
        closing_task = asyncio.ensure_future(self._closing.wait())
        try:
            done, _ = await asyncio.wait(
                {head_task, closing_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            closing_task.cancel()
        if head_task not in done:
            head_task.cancel()
            await asyncio.gather(head_task, return_exceptions=True)
            return None
        try:
            head = head_task.result()
        except asyncio.IncompleteReadError:
            return None  # EOF between requests: clean close
        except asyncio.LimitOverrunError:
            return _error_response(
                ErrorEnvelope(413, "request-too-large", "request head too large")
            )
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return _error_response(
                ErrorEnvelope(400, "malformed-request", "unparseable request line")
            )
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            return _error_response(
                ErrorEnvelope(
                    400, "malformed-request",
                    "chunked request bodies are not supported; "
                    "send Content-Length",
                )
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            return _error_response(
                ErrorEnvelope(400, "malformed-request", "bad Content-Length")
            )
        if length > self.max_body_bytes:
            return _error_response(
                ErrorEnvelope(
                    413, "request-too-large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            )
        body = await reader.readexactly(length) if length else b""
        return _Request(method=method, path=path, headers=headers, body=body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: _Response,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        headers = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(
            f"{name}: {value}" for name, value in response.headers.items()
        )
        if response.stream is None:
            headers.append(f"Content-Length: {len(response.body)}")
            head = "\r\n".join(headers) + "\r\n\r\n"
            writer.write(head.encode("latin-1") + response.body)
            await writer.drain()
            return
        headers.append("Transfer-Encoding: chunked")
        head = "\r\n".join(headers) + "\r\n\r\n"
        writer.write(head.encode("latin-1"))
        await writer.drain()
        try:
            async for chunk in response.stream:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
                await writer.drain()  # per-connection backpressure
        finally:
            # Deterministic generator finalization: a disconnect mid-
            # stream must run the generator's cleanup now, not at GC.
            await response.stream.aclose()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: _Request) -> tuple[str, _Response]:
        """Route one request through the hardening pipeline.

        Order matters: authentication first (an unauthenticated caller
        learns nothing, not even its rate-limit state), then rate
        limiting, then idempotency replay — a replay costs no handler
        work but still spends a token, so retry storms cannot bypass
        the limiter.  Every exception becomes an error envelope.
        """
        assert self._inflight is not None
        route, handler = self._route(request)
        guarded = self._guard(request, route)
        if guarded is not None:
            return route, guarded
        try:
            replay_key = self._replay_key(request, route)
        except _HttpError as exc:
            return route, _error_response(exc.envelope)
        if replay_key is not None:
            return route, await self._keyed_dispatch(
                request, route, handler, replay_key
            )
        async with self._inflight:
            try:
                return route, await handler(request)
            except _HttpError as exc:
                return route, _error_response(exc.envelope)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                return route, _error_response(error_envelope_for(exc))

    def _guard(self, request: _Request, route: str) -> "_Response | None":
        """Auth and rate-limit checks; a _Response rejects the request."""
        if route in self.exempt_routes:
            return None
        if self.auth_token is not None:
            failure = authenticate(self.auth_token, request.headers)
            if failure is not None:
                self.metrics.observe_auth_failure(failure.status)
                response = _error_response(failure)
                if failure.status == 401:
                    response.headers["WWW-Authenticate"] = "Bearer"
                return response
        if self.rate_limiter is not None:
            principal = principal_for(
                request.headers, request.peer, self.auth_token is not None
            )
            retry_after = self.rate_limiter.check(principal)
            if retry_after > 0.0:
                self.metrics.observe_rate_limited(route)
                response = _error_response(
                    ErrorEnvelope(
                        429, "rate-limited",
                        f"request rate limit exceeded for this client; "
                        f"retry after {retry_after:.3f}s",
                    )
                )
                # Decimal seconds (an RFC 9110 extension): integer
                # rounding would force sub-second buckets to lie.
                response.headers["Retry-After"] = f"{retry_after:.3f}"
                return response
        return None

    def _replay_key(self, request: _Request, route: str) -> ReplayKey | None:
        """The idempotency-table key for this request, if it has one.

        Explicitly-keyed routes take the ``Idempotency-Key`` header or,
        for envelope routes, the envelope's ``idempotency_key`` field.
        ``job-result`` is keyed implicitly by path: its first terminal
        response marks the job retrieved (eviction-eligible), so a
        "safe" idempotent retry after a dropped response must replay
        from the table rather than 404 on the evicted job.
        """
        principal = principal_for(
            request.headers, request.peer, self.auth_token is not None
        )
        if route == "job-result":
            return (principal, route, "path", request.path)
        if route not in KEYED_ROUTES:
            return None
        key = request.headers.get(IDEMPOTENCY_KEY_HEADER.lower())
        if key is None and b'"idempotency_key"' in request.body:
            # Envelope-stamped key: peek without full envelope
            # validation (the handler owns that) — a non-dict or
            # non-string field is the handler's error to report.
            try:
                payload = json.loads(request.body)
            except ValueError:
                return None
            value = (
                payload.get("idempotency_key")
                if isinstance(payload, dict)
                else None
            )
            if isinstance(value, str):
                key = value
        if key is None or not key:
            return None
        if len(key) > MAX_IDEMPOTENCY_KEY_LENGTH:
            raise _HttpError(
                ErrorEnvelope(
                    400, "validation-error",
                    f"idempotency key of {len(key)} characters exceeds "
                    f"the {MAX_IDEMPOTENCY_KEY_LENGTH}-character limit",
                )
            )
        return (principal, route, "key", key)

    async def _keyed_dispatch(
        self,
        request: _Request,
        route: str,
        handler,
        key: ReplayKey,
    ) -> _Response:
        """Run one keyed request through the replay table.

        Waiters block on the leader's future *without* holding an
        inflight-semaphore slot, so a full house of duplicates can
        never deadlock the leader out of the semaphore.
        """
        assert self._inflight is not None
        store = self.idempotency
        while True:
            action, entry = store.begin(key)
            if action == "replay":
                assert isinstance(entry, StoredResponse)
                return self._replayed_response(route, entry)
            if action == "wait":
                stored = await entry
                if stored is not None:
                    return self._replayed_response(route, stored)
                continue  # leader failed: re-race for the claim
            future = entry
            try:
                async with self._inflight:
                    try:
                        response = await handler(request)
                    except _HttpError as exc:
                        response = _error_response(exc.envelope)
                    except Exception as exc:  # noqa: BLE001 - wire boundary
                        response = _error_response(error_envelope_for(exc))
            except BaseException:
                # Cancellation (shutdown) must release waiters.
                store.abandon(key, future)
                raise
            if self._should_store(route, response):
                store.commit(
                    key,
                    future,
                    StoredResponse(
                        status=response.status,
                        content_type=response.content_type,
                        body=response.body,
                        headers=dict(response.headers),
                    ),
                )
            else:
                store.abandon(key, future)
            return response

    def _replayed_response(self, route: str, stored: StoredResponse) -> _Response:
        self.metrics.observe_replay(route)
        headers = dict(stored.headers)
        headers[REPLAY_HEADER] = "true"
        return _Response(
            status=stored.status,
            body=stored.body,
            content_type=stored.content_type,
            headers=headers,
        )

    def _should_store(self, route: str, response: _Response) -> bool:
        """Commit policy: which responses enter the replay table."""
        if response.stream is not None:
            return False
        if response.replayable is not None:
            return response.replayable
        if route == "job-result":
            # Only terminal outcomes replay; the handler marks them.
            # A 202 "still running" or a 404 must re-execute.
            return False
        # Keyed submission/ingest: success is committed; errors are
        # abandoned so a transient failure never pins under the key.
        return 200 <= response.status < 300


class BrokerServer(HttpEdge):
    """An asyncio TCP/HTTP front-end over one broker, in one process.

    The server composes an :class:`HttpEdge` directly over a
    :class:`~repro.server.core.RequestCore` — the cross-request engine
    cache and job table, the sharded ingestion pipeline and the metrics
    registry all live in this process.  ``port=0`` binds an ephemeral
    port; read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        broker: BrokerService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 4,
        ingest_backend: str = "thread",
        merge_interval: float | None = 0.5,
        max_workers: int = 4,
        cache_capacity: int = 16,
        eval_backend: str | None = None,
        finished_job_ttl: float | None = None,
        megabatch: bool = False,
        megabatch_window: float | None = None,
        megabatch_max_rows: int | None = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_inflight: int = 32,
        grace: float = 5.0,
        trace: bool = False,
        trace_capacity: int = 256,
        slow_request_threshold: float | None = None,
        profile_requests: bool = False,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_limit_burst: int | None = None,
        idempotency_capacity: int = 1024,
        exempt_routes: tuple[str, ...] = ("healthz", "metrics"),
    ) -> None:
        if not trace:
            if slow_request_threshold is not None:
                raise ValidationError(
                    "slow_request_threshold requires trace=True"
                )
            if profile_requests:
                raise ValidationError("profile_requests requires trace=True")
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            max_inflight=max_inflight,
            grace=grace,
            slow_request_threshold=slow_request_threshold,
            auth_token=auth_token,
            rate_limit=rate_limit,
            rate_limit_burst=rate_limit_burst,
            idempotency_capacity=idempotency_capacity,
            exempt_routes=exempt_routes,
        )
        self.broker = broker
        self.core = RequestCore(
            broker,
            shards=shards,
            ingest_backend=ingest_backend,
            merge_interval=merge_interval,
            max_workers=max_workers,
            cache_capacity=cache_capacity,
            eval_backend=eval_backend,
            finished_job_ttl=finished_job_ttl,
            megabatch=megabatch,
            megabatch_window=megabatch_window,
            megabatch_max_rows=megabatch_max_rows,
            trace=trace,
            trace_capacity=trace_capacity,
            profile_requests=profile_requests,
            idempotency_store=self.idempotency,
            rate_limiter=self.rate_limiter,
        )
        # The core's components under their historical names — tests,
        # benches and the CLI reach them through the server object.
        self.session = self.core.session
        self.ingestor = self.core.ingestor
        self.metrics = self.core.metrics
        self.tracer = self.core.tracer
        self.trace_store = self.core.trace_store
        self.profile_requests = self.core.profile_requests

    def _route(self, request: _Request):
        return self.core.route(request)

    async def _close_resources(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.session.close)
        await loop.run_in_executor(None, self.ingestor.close)


# -- thread-hosted serving --------------------------------------------------

class ServerHandle:
    """A running server on a background event loop.

    The synchronous façade tests, the CLI and
    :class:`~repro.server.client.ServerClient` users drive: ``host`` /
    ``port`` / ``url`` for addressing, ``close()`` (or the context
    manager) for graceful shutdown.  Wraps either a
    :class:`BrokerServer` or a
    :class:`~repro.server.gateway.GatewayServer` — both share the
    :class:`HttpEdge` lifecycle.
    """

    def __init__(
        self,
        server: HttpEdge,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Gracefully stop the server and join its loop thread."""
        if self._closed:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        future.result(timeout=self.server.grace + 30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()


def start_in_thread(
    broker: BrokerService, *, workers: int | None = None, **kwargs
) -> ServerHandle:
    """Start a broker server on a dedicated event-loop thread.

    Blocks until the socket is bound (so ``handle.port`` is final) and
    re-raises any startup failure in the caller.  ``workers`` selects
    the serving mode: ``0`` (the default) runs the in-process
    :class:`BrokerServer`; ``N >= 1`` runs the multi-process
    :class:`~repro.server.gateway.GatewayServer` over ``N`` partitioned
    worker processes.  ``None`` reads the ``REPRO_WORKERS`` environment
    variable (the CI matrix's knob for running the whole test suite
    against the gateway).  Remaining keyword arguments are forwarded to
    the server constructor.
    """
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or "0")
    if workers > 0:
        from repro.server.gateway import GatewayServer

        server: HttpEdge = GatewayServer(broker, workers=workers, **kwargs)
    else:
        server = BrokerServer(broker, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            # The constructor already opened the session and ingestion
            # workers; a failed bind must not strand them.
            try:
                loop.run_until_complete(server.stop())
            except BaseException:  # noqa: BLE001 - best-effort cleanup
                logger.exception("cleanup after failed start also failed")
            failure.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="broker-server", daemon=True)
    thread.start()
    started.wait()
    if failure:
        loop.close()
        raise failure[0]
    return ServerHandle(server, loop, thread)
