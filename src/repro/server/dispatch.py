"""The gateway ↔ worker dispatch protocol: framing, routing, specs.

The gateway process and its workers talk over local TCP sockets (one
connection per worker, workers dial in) using length-prefixed frames:

    +----------------+--------------+-----------------+------------+
    | header len !I  | body len !I  | header (JSON)   | body (raw) |
    +----------------+--------------+-----------------+------------+

The JSON header carries the frame ``kind`` plus per-kind metadata; the
body carries raw bytes (request bodies, response bodies, stream
chunks) so envelope payloads cross the boundary byte-identically —
never re-serialized, never re-encoded.  Frame kinds:

========================  ==================================================
gateway → worker
------------------------------------------------------------------------
``request``               {id, method, path, headers, peer, enqueued}
``cancel``                {id} — the HTTP client went away mid-stream
``hello-ack``             {gateway_perf} — completes the clock handshake
worker → gateway
------------------------------------------------------------------------
``hello``                 {token, index, pid, epoch, perf}
``response``              {id, status, content_type, headers, replayable}
``stream-head``           {id, status, content_type, headers}
``chunk``                 {id} + body — one response chunk, boundaries kept
``stream-end``            {id}
========================  ==================================================

Spans that cross the process boundary must ship durations, not
timestamps (see :mod:`repro.obs.clock`): ``perf_counter`` bases are
per-process.  The hello/hello-ack exchange therefore estimates the
clock offset NTP-style — the worker reads its clock at hello (``t0``)
and again at hello-ack receipt (``t1``); the ack carries the gateway's
clock read (``g``); the midpoint estimate ``(t0 + t1) / 2 - g``
converts the gateway's ``enqueued`` stamps into worker time, clamped
to never exceed the local receipt time.

Routing is consistent and content-keyed so warm engines never thrash
across workers: requests pinning providers route by the sorted
provider set, unpinned requests by the canonical request JSON (same
request → same engines → same worker), and job GETs route by the
arithmetic of strided job ids — worker ``i`` of ``N`` mints ids with
``start = epoch·N·1_000_000 + i + 1`` and ``stride = N``, so any id
maps back to its minter via ``(n - 1) % N`` with no shared state.
"""

from __future__ import annotations

import asyncio
import json
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.broker.service import BrokerService
from repro.errors import ValidationError

#: (header length, body length) prefix — network byte order.
FRAME_PREFIX = struct.Struct("!II")

#: Headers are small JSON dicts; anything bigger is a protocol error.
MAX_HEADER_BYTES = 1 << 20

#: Ids minted by worker ``i`` of ``N`` in epoch ``e`` start here — the
#: per-epoch block is wide enough that a respawned worker can never
#: re-mint an id issued by its predecessor.
EPOCH_BLOCK = 1_000_000

_JOB_ID = re.compile(r"\Ajob-(\d+)\Z")


def encode_frame(header: Mapping[str, Any], body: bytes = b"") -> bytes:
    """Serialize one frame to wire bytes."""
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return FRAME_PREFIX.pack(len(header_bytes), len(body)) + header_bytes + body


async def send_frame(
    writer: asyncio.StreamWriter,
    lock: asyncio.Lock,
    header: Mapping[str, Any],
    body: bytes = b"",
) -> None:
    """Write one frame atomically (frames from concurrent tasks never
    interleave) and drain for backpressure."""
    data = encode_frame(header, body)
    async with lock:
        writer.write(data)
        await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[dict[str, Any], bytes]:
    """Read one frame; raises ``asyncio.IncompleteReadError`` on EOF."""
    prefix = await reader.readexactly(FRAME_PREFIX.size)
    header_len, body_len = FRAME_PREFIX.unpack(prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ValidationError(
            f"dispatch frame header of {header_len} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit"
        )
    header_bytes = await reader.readexactly(header_len)
    body = await reader.readexactly(body_len) if body_len else b""
    header = json.loads(header_bytes.decode("utf-8"))
    if not isinstance(header, dict):
        raise ValidationError(
            f"dispatch frame header must be an object, got {header!r}"
        )
    return header, body


# -- partition routing -------------------------------------------------------

def partition_for(key: str, workers: int) -> int:
    """Consistent partition of a routing key (same CRC32 discipline as
    :func:`repro.server.ingest.shard_index`)."""
    return zlib.crc32(key.encode("utf-8")) % workers


def routing_key(body: bytes) -> str | None:
    """The content key an envelope request routes by, or ``None``.

    Requests pinning ``providers`` route by the sorted provider set —
    every request for a provider subset lands where those engines are
    warm.  Unpinned requests route by the canonical (sorted-keys)
    request JSON: identical requests share engines, so they must share
    a worker.  Unparseable bodies return ``None`` (any worker produces
    the identical 400).
    """
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    request = payload.get("request")
    if not isinstance(request, dict):
        return None
    providers = request.get("providers")
    if (
        isinstance(providers, list)
        and providers
        and all(isinstance(name, str) for name in providers)
    ):
        return ",".join(sorted(providers))
    return json.dumps(request, sort_keys=True)


def batch_routing_key(body: bytes) -> str | None:
    """A batch routes as a unit, keyed by its first envelope line."""
    for line in body.splitlines():
        if line.strip():
            return routing_key(line)
    return None


def job_partition(job_id: str, workers: int) -> int | None:
    """The worker that minted ``job_id``, or ``None`` if unparseable.

    Strided minting makes this pure arithmetic: worker ``i`` mints
    ``n ≡ i + 1 (mod N)`` in every epoch, so ``(n - 1) % N`` recovers
    the index with no id registry.
    """
    match = _JOB_ID.match(job_id)
    if match is None:
        return None
    return (int(match.group(1)) - 1) % workers


def job_id_start(index: int, workers: int, epoch: int) -> int:
    """First id worker ``index`` mints in ``epoch`` (stride = workers)."""
    return epoch * workers * EPOCH_BLOCK + index + 1


# -- worker configuration ----------------------------------------------------

@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, picklable for spawn.

    Carries the broker itself (providers, rate cards and the observed
    telemetry store pickle in well under 100 KB) plus the serving
    configuration the in-process server would have used — each worker
    builds the same :class:`~repro.server.core.RequestCore` the
    monolithic server runs, minus the edge (auth, rate limiting and
    idempotency stay at the gateway).
    """

    index: int
    workers: int
    epoch: int
    dispatch_port: int
    token: str
    broker: BrokerService
    shards: int = 4
    ingest_backend: str = "thread"
    merge_interval: float | None = 0.5
    max_workers: int = 4
    cache_capacity: int = 16
    eval_backend: str | None = None
    finished_job_ttl: float | None = None
    megabatch: bool = False
    megabatch_window: float | None = None
    megabatch_max_rows: int | None = None
    trace: bool = False
    trace_capacity: int = 256
    profile_requests: bool = False
    max_inflight: int = 32
