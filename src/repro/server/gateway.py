"""The gateway: one hardened HTTP edge over N partitioned workers.

:class:`GatewayServer` is the multi-process serving mode (``repro
serve --workers N``).  It reuses the exact
:class:`~repro.server.transport.HttpEdge` the in-process server runs —
same HTTP parsing, same guard pipeline, same idempotency table — so
auth, rate limiting and replay execute *exactly once*, at the edge,
before a request is routed anywhere.  A keyed retry therefore replays
the original bytes even when it would have routed to a different
worker than the first attempt: replay precedes routing.

Behind the edge sit N spawned worker processes (see
:mod:`repro.server.worker`), each owning a disjoint partition of the
engine-cache keyspace via consistent content-keyed routing
(:func:`~repro.server.dispatch.routing_key`): provider-pinned requests
route by provider set, unpinned by canonical request JSON, job GETs by
the arithmetic of strided job ids.  Warm engines never thrash across
workers, and each worker evaluates on its own GIL.

Aggregation endpoints:

- ``/healthz`` is answered locally: overall status (``ok`` /
  ``degraded``), the provider list, and a per-worker
  ``{index, alive, pid, epoch}`` table.
- ``/metrics`` scrapes every live worker and merges the expositions
  sample-by-sample (:func:`~repro.server.metrics.merge_expositions`),
  then appends the gateway's own edge families
  (:class:`GatewayMetrics`) — each family exported exactly once.
- ``/v2/traces`` fans out and concatenates; ``/v2/traces/{id}`` tries
  each worker until one has the trace.
- ``/v2/ingest`` and ``/v2/ingest/flush`` broadcast to *all* workers
  (every partition needs the full telemetry picture, since an unpinned
  request evaluates every provider) and answer with worker 0's bytes.

Worker death is detected as EOF on the dispatch link: pending requests
on that worker fail with a 503 ``worker-unavailable`` envelope, new
envelope requests fall through to the next live partition, ``/healthz``
degrades, and a supervisor task respawns the worker at the same index
with ``epoch + 1`` (its fresh id block can never collide with ids the
dead worker minted).  Workers are spawned — never forked — because the
gateway already runs threads (REP008).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import secrets
from typing import AsyncIterator
from urllib.parse import parse_qs

from repro.broker.envelope import ENVELOPE_SCHEMA_VERSION, ErrorEnvelope
from repro.broker.service import BrokerService
from repro.errors import BrokerError, ValidationError
from repro.obs import clock
from repro.server.core import (
    _PROMETHEUS,
    _error_handler,
    _HttpError,
    _json_response,
    _Request,
    _Response,
    logger,
    resolve_route,
)
from repro.server.dispatch import (
    WorkerSpec,
    batch_routing_key,
    job_partition,
    partition_for,
    read_frame,
    routing_key,
    send_frame,
)
from repro.server.metrics import (
    EdgeMetricsMixin,
    MetricsRegistry,
    merge_expositions,
)
from repro.server.transport import HttpEdge
from repro.server.worker import worker_main

#: Queue sentinel: the worker died with this stream open.
_LINK_DOWN = object()


class WorkerUnavailable(Exception):
    """The worker serving (or needed for) a request is gone."""


def _unavailable_envelope(detail: str) -> ErrorEnvelope:
    return ErrorEnvelope(
        503, "worker-unavailable",
        f"{detail}; the supervisor is respawning the worker — retry",
    )


class GatewayMetrics(EdgeMetricsMixin):
    """The gateway's own registry: edge families + fleet supervision.

    Worker processes export the serving families (cache, jobs, ingest,
    spans) with ``edge=False``; the gateway owns the complementary
    half — HTTP counters, latency, auth/rate-limit/replay counters —
    plus the two supervision samples below.  ``/metrics`` concatenates
    the merged worker exposition with this registry's render.
    """

    def __init__(
        self, *, idempotency_store=None, rate_limiter=None, workers_alive=None
    ) -> None:
        self.registry = MetricsRegistry()
        self._register_edge_metrics(
            self.registry,
            idempotency_store=idempotency_store,
            rate_limiter=rate_limiter,
        )
        self.workers_alive = self.registry.gauge(
            "repro_gateway_workers_alive",
            "Worker processes currently connected to the gateway.",
        )
        if workers_alive is not None:
            self.workers_alive.set_function(workers_alive)
        self.worker_restarts = self.registry.counter(
            "repro_gateway_worker_restarts_total",
            "Dead workers respawned by the gateway supervisor.",
        )

    def render(self) -> str:
        return self.registry.render()


class _WorkerLink:
    """One live dispatch connection to a worker process."""

    def __init__(
        self,
        index: int,
        epoch: int,
        pid: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.index = index
        self.epoch = epoch
        self.pid = pid
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.alive = True
        self.pending: dict[int, asyncio.Future] = {}
        self.streams: dict[int, asyncio.Queue] = {}


class GatewayServer(HttpEdge):
    """The two-tier server: hardened edge + partitioned worker fleet.

    Accepts the full :class:`~repro.server.transport.BrokerServer`
    keyword surface (each worker builds the serving stack from it) plus
    ``workers`` — the fleet size.  ``port=0`` binds an ephemeral port;
    read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        broker: BrokerService,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 4,
        ingest_backend: str = "thread",
        merge_interval: float | None = 0.5,
        max_workers: int = 4,
        cache_capacity: int = 16,
        eval_backend: str | None = None,
        finished_job_ttl: float | None = None,
        megabatch: bool = False,
        megabatch_window: float | None = None,
        megabatch_max_rows: int | None = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_inflight: int = 32,
        grace: float = 5.0,
        trace: bool = False,
        trace_capacity: int = 256,
        slow_request_threshold: float | None = None,
        profile_requests: bool = False,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_limit_burst: int | None = None,
        idempotency_capacity: int = 1024,
        exempt_routes: tuple[str, ...] = ("healthz", "metrics"),
        spawn_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers!r}")
        if not trace:
            if slow_request_threshold is not None:
                raise ValidationError(
                    "slow_request_threshold requires trace=True"
                )
            if profile_requests:
                raise ValidationError("profile_requests requires trace=True")
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            max_inflight=max_inflight,
            grace=grace,
            slow_request_threshold=slow_request_threshold,
            auth_token=auth_token,
            rate_limit=rate_limit,
            rate_limit_burst=rate_limit_burst,
            idempotency_capacity=idempotency_capacity,
            exempt_routes=exempt_routes,
        )
        self.broker = broker
        self.workers = workers
        self.trace = trace
        # The gateway holds no session; tracing/serving state lives in
        # the workers.  Kept as attributes for ServerHandle symmetry.
        self.tracer = None
        self.trace_store = None
        self._spawn_timeout = spawn_timeout
        self._worker_kwargs = dict(
            shards=shards,
            ingest_backend=ingest_backend,
            merge_interval=merge_interval,
            max_workers=max_workers,
            cache_capacity=cache_capacity,
            eval_backend=eval_backend,
            finished_job_ttl=finished_job_ttl,
            megabatch=megabatch,
            megabatch_window=megabatch_window,
            megabatch_max_rows=megabatch_max_rows,
            trace=trace,
            trace_capacity=trace_capacity,
            profile_requests=profile_requests,
            max_inflight=max_inflight,
        )
        self._token = secrets.token_hex(16)
        self._links: list[_WorkerLink | None] = [None] * workers
        self._epochs = [0] * workers
        self._procs: dict[int, object] = {}
        self._ready: list[asyncio.Event] = []
        self._reader_tasks: set[asyncio.Task] = set()
        self._respawn_tasks: set[asyncio.Task] = set()
        self._dispatch_server: asyncio.Server | None = None
        self._dispatch_port = 0
        self._next_request_id = 0
        self.metrics = GatewayMetrics(
            idempotency_store=self.idempotency,
            rate_limiter=self.rate_limiter,
            workers_alive=self._alive_count,
        )

    def _alive_count(self) -> float:
        return float(
            sum(1 for link in self._links if link is not None and link.alive)
        )

    # -- fleet lifecycle ---------------------------------------------------

    async def _start_resources(self) -> None:
        """Bring up the dispatch listener and the worker fleet."""
        self._ready = [asyncio.Event() for _ in range(self.workers)]
        self._dispatch_server = await asyncio.start_server(
            self._accept_worker, host="127.0.0.1", port=0
        )
        self._dispatch_port = (
            self._dispatch_server.sockets[0].getsockname()[1]
        )
        loop = asyncio.get_running_loop()
        for index in range(self.workers):
            self._procs[index] = await loop.run_in_executor(
                None, self._spawn_process, index, 0
            )
        waits = [event.wait() for event in self._ready]
        try:
            await asyncio.wait_for(
                asyncio.gather(*waits), timeout=self._spawn_timeout
            )
        except asyncio.TimeoutError:
            missing = [
                index
                for index, event in enumerate(self._ready)
                if not event.is_set()
            ]
            raise BrokerError(
                f"workers {missing} did not connect within "
                f"{self._spawn_timeout:.0f}s"
            ) from None
        logger.info(
            "gateway fleet up: %d workers on dispatch port %d",
            self.workers,
            self._dispatch_port,
        )

    def _spawn_process(self, index: int, epoch: int):
        """Start one worker (blocking; runs on the executor).

        Spawn, never fork: the gateway event loop already runs threads
        (the executor, the server thread under ``start_in_thread``),
        and forking a threaded process inherits locked locks.
        """
        spec = WorkerSpec(
            index=index,
            workers=self.workers,
            epoch=epoch,
            dispatch_port=self._dispatch_port,
            token=self._token,
            broker=self.broker,
            **self._worker_kwargs,
        )
        ctx = multiprocessing.get_context("spawn")
        # daemon=False: worker sessions may run the process eval
        # backend, and daemonic processes cannot have children.  The
        # worker self-exits on dispatch-link EOF instead.
        process = ctx.Process(
            target=worker_main,
            args=(spec,),
            name=f"repro-gateway-worker-{index}",
            daemon=False,
        )
        process.start()
        return process

    async def _accept_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Handshake one dialing worker onto the fleet."""
        try:
            hello, _ = await asyncio.wait_for(read_frame(reader), timeout=30.0)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            writer.close()
            return
        if (
            hello.get("kind") != "hello"
            or hello.get("token") != self._token
            or not isinstance(hello.get("index"), int)
            or not 0 <= hello["index"] < self.workers
        ):
            logger.warning("rejected dispatch connection: bad hello")
            writer.close()
            return
        index = hello["index"]
        link = _WorkerLink(
            index=index,
            epoch=int(hello.get("epoch", 0)),
            pid=int(hello.get("pid", 0)),
            reader=reader,
            writer=writer,
        )
        await send_frame(
            writer,
            link.lock,
            {"kind": "hello-ack", "gateway_perf": clock.perf_counter()},
        )
        self._links[index] = link
        task = asyncio.create_task(self._read_worker(link))
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)
        if index < len(self._ready):
            self._ready[index].set()

    async def _read_worker(self, link: _WorkerLink) -> None:
        """Demultiplex one worker's response frames until the link dies."""
        try:
            while True:
                header, body = await read_frame(link.reader)
                kind = header.get("kind")
                request_id = header.get("id")
                if kind == "response":
                    future = link.pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result((header, body))
                elif kind == "stream-head":
                    queue: asyncio.Queue = asyncio.Queue()
                    link.streams[request_id] = queue
                    future = link.pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result((header, queue))
                elif kind == "chunk":
                    queue = link.streams.get(request_id)
                    if queue is not None:
                        queue.put_nowait(body)
                elif kind == "stream-end":
                    queue = link.streams.pop(request_id, None)
                    if queue is not None:
                        queue.put_nowait(None)
                else:
                    logger.warning("unknown worker frame kind %r", kind)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass
        finally:
            link.alive = False
            error = WorkerUnavailable(
                f"worker {link.index} (pid {link.pid}) disconnected"
            )
            for future in link.pending.values():
                if not future.done():
                    future.set_exception(error)
            link.pending.clear()
            for queue in link.streams.values():
                queue.put_nowait(_LINK_DOWN)
            link.streams.clear()
            link.writer.close()
            if not self._stopped:
                logger.warning(
                    "worker %d (pid %d) died; respawning",
                    link.index,
                    link.pid,
                )
                task = asyncio.create_task(self._respawn(link.index))
                self._respawn_tasks.add(task)
                task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, index: int) -> None:
        """Supervisor: replace a dead worker at the same index.

        The new worker gets ``epoch + 1`` — its strided job-id block is
        disjoint from every id its predecessors minted, so a stale
        ``job-...`` id can never alias a fresh job.
        """
        self._epochs[index] += 1
        epoch = self._epochs[index]
        self.metrics.worker_restarts.inc()
        loop = asyncio.get_running_loop()
        old = self._procs.get(index)
        if old is not None:
            await loop.run_in_executor(None, lambda: old.join(5.0))
        if self._stopped:
            return
        self._procs[index] = await loop.run_in_executor(
            None, self._spawn_process, index, epoch
        )

    async def _close_resources(self) -> None:
        """Tear down the fleet: EOF the links, reap the processes."""
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(*self._respawn_tasks, return_exceptions=True)
        if self._dispatch_server is not None:
            self._dispatch_server.close()
            await self._dispatch_server.wait_closed()
        for link in self._links:
            if link is not None:
                link.writer.close()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()

        def reap() -> None:
            for process in self._procs.values():
                process.join(self.grace + 5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)

        await loop.run_in_executor(None, reap)

    # -- request forwarding ------------------------------------------------

    def _exact_link(self, partition: int) -> _WorkerLink:
        """The link at ``partition`` — dead means 503, never reroute.

        Job state is worker-local: polling another worker for a dead
        worker's job would turn "retry shortly" into a wrong 404.
        """
        link = self._links[partition]
        if link is None or not link.alive:
            raise WorkerUnavailable(
                f"worker {partition} is down (respawn in progress)"
            )
        return link

    def _alive_link(self, partition: int) -> _WorkerLink:
        """The link at ``partition``, falling forward past dead workers.

        Fresh envelope requests carry no worker-local state, so during
        a respawn window they run (colder) on the next live partition
        instead of failing.
        """
        for offset in range(self.workers):
            link = self._links[(partition + offset) % self.workers]
            if link is not None and link.alive:
                return link
        raise WorkerUnavailable("no worker processes are available")

    async def _forward(self, link: _WorkerLink, request: _Request) -> _Response:
        """Ship one request frame to a worker and await its response."""
        self._next_request_id += 1
        request_id = self._next_request_id
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        link.pending[request_id] = future
        try:
            await send_frame(
                link.writer,
                link.lock,
                {
                    "kind": "request",
                    "id": request_id,
                    "method": request.method,
                    "path": request.path,
                    "headers": request.headers,
                    "peer": request.peer,
                    "enqueued": clock.perf_counter(),
                },
                request.body,
            )
        except (ConnectionError, RuntimeError) as exc:
            link.pending.pop(request_id, None)
            raise WorkerUnavailable(
                f"worker {link.index} link write failed"
            ) from exc
        try:
            header, payload = await future
        except asyncio.CancelledError:
            link.pending.pop(request_id, None)
            raise
        if header["kind"] == "stream-head":
            return _Response(
                status=int(header["status"]),
                content_type=header.get("content_type", "application/json"),
                headers=dict(header.get("headers") or {}),
                stream=self._relay(link, request_id, payload),
            )
        replayable = header.get("replayable")
        return _Response(
            status=int(header["status"]),
            body=payload,
            content_type=header.get("content_type", "application/json"),
            headers=dict(header.get("headers") or {}),
            replayable=replayable if isinstance(replayable, bool) else None,
        )

    async def _relay(
        self, link: _WorkerLink, request_id: int, queue: asyncio.Queue
    ) -> AsyncIterator[bytes]:
        """Relay one worker stream chunk-for-chunk, boundaries intact."""
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return  # stream-end
                if item is _LINK_DOWN:
                    logger.warning(
                        "worker %d died mid-stream; truncating response",
                        link.index,
                    )
                    return
                yield item
        finally:
            if link.streams.pop(request_id, None) is not None:
                # Client went away before stream-end: tell the worker
                # so it cancels the batch and finalizes its jobs.
                try:
                    await send_frame(
                        link.writer,
                        link.lock,
                        {"kind": "cancel", "id": request_id},
                    )
                except (ConnectionError, RuntimeError):
                    pass

    # -- routing -----------------------------------------------------------

    def _route(self, request: _Request):
        route, param, envelope = resolve_route(request.method, request.path)
        if envelope is not None:
            return route, _error_handler(envelope)
        local = {
            "healthz": self._get_health,
            "metrics": self._get_metrics,
            "traces": self._get_traces,
            "ingest": self._broadcast_handler,
            "ingest-flush": self._broadcast_handler,
        }
        if route in local:
            return route, local[route]
        if route == "trace":
            return route, self._sweep_handler
        if route in ("job", "job-result"):
            return route, self._job_handler(param)
        assert route in ("recommend", "jobs", "batch"), route
        return route, self._envelope_handler(route)

    def _envelope_handler(self, route: str):
        async def handler(request: _Request) -> _Response:
            key_fn = batch_routing_key if route == "batch" else routing_key
            key = key_fn(request.body) or ""
            partition = partition_for(key, self.workers)
            try:
                return await self._forward(
                    self._alive_link(partition), request
                )
            except WorkerUnavailable as exc:
                raise _HttpError(_unavailable_envelope(str(exc))) from exc

        return handler

    def _job_handler(self, job_id: str):
        async def handler(request: _Request) -> _Response:
            partition = job_partition(job_id, self.workers)
            try:
                if partition is None:
                    # Not one of ours; any worker 404s it identically.
                    link = self._alive_link(
                        partition_for(job_id, self.workers)
                    )
                else:
                    link = self._exact_link(partition)
                return await self._forward(link, request)
            except WorkerUnavailable as exc:
                raise _HttpError(_unavailable_envelope(str(exc))) from exc

        return handler

    async def _broadcast_handler(self, request: _Request) -> _Response:
        """Ingest routes go to every worker; worker 0's bytes answer.

        Each worker holds its own copy of the telemetry store, and any
        of them may serve any unpinned request — so all of them need
        every record.  Acks are identical across workers (same shard
        count, same routing), making the lowest-index response safely
        representative.
        """
        links = [
            link for link in self._links if link is not None and link.alive
        ]
        if not links:
            raise _HttpError(
                _unavailable_envelope("no worker processes are available")
            )
        results = await asyncio.gather(
            *(self._forward(link, request) for link in links),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, _Response):
                return result
        raise _HttpError(
            _unavailable_envelope("every worker failed during broadcast")
        )

    async def _sweep_handler(self, request: _Request) -> _Response:
        """GET /v2/traces/{id}: try each worker until one has it."""
        last: _Response | None = None
        for link in self._links:
            if link is None or not link.alive:
                continue
            try:
                response = await self._forward(link, request)
            except WorkerUnavailable:
                continue
            last = response
            if response.status != 404:
                return response
        if last is None:
            raise _HttpError(
                _unavailable_envelope("no worker processes are available")
            )
        return last

    async def _get_traces(self, request: _Request) -> _Response:
        """GET /v2/traces: fan out and concatenate worker summaries."""
        links = [
            link for link in self._links if link is not None and link.alive
        ]
        if not links:
            raise _HttpError(
                _unavailable_envelope("no worker processes are available")
            )
        responses = []
        for link in links:
            try:
                responses.append(await self._forward(link, request))
            except WorkerUnavailable:
                continue
        if not responses:
            raise _HttpError(
                _unavailable_envelope("every worker failed during fan-out")
            )
        for response in responses:
            if response.status != 200:
                return response  # tracing-disabled 404 / bad-query 400
        if len(responses) == 1:
            return responses[0]
        query = parse_qs(request.path.partition("?")[2])
        try:
            limit = int(query.get("limit", ["50"])[0])
        except ValueError:
            limit = 50  # the workers already rejected bad queries above
        traces: list = []
        dropped = 0
        for response in responses:
            payload = json.loads(response.body)
            traces.extend(payload.get("traces") or [])
            dropped += int(payload.get("dropped") or 0)
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "traces",
                "traces": traces[:limit],
                "dropped": dropped,
            },
        )

    async def _get_metrics(self, request: _Request) -> _Response:
        """GET /metrics: merged worker exposition + gateway edge families."""
        links = [
            link for link in self._links if link is not None and link.alive
        ]
        texts: list[str] = []
        for link in links:
            try:
                response = await self._forward(link, request)
            except WorkerUnavailable:
                continue
            if response.status == 200:
                texts.append(response.body.decode("utf-8"))
        body = merge_expositions(texts) + self.metrics.render()
        return _Response(
            status=200, body=body.encode("utf-8"), content_type=_PROMETHEUS
        )

    async def _get_health(self, request: _Request) -> _Response:
        """GET /healthz: local aggregation; worker death surfaces here."""
        fleet = []
        for index in range(self.workers):
            link = self._links[index]
            alive = link is not None and link.alive
            fleet.append(
                {
                    "index": index,
                    "alive": alive,
                    "pid": link.pid if link is not None else None,
                    "epoch": self._epochs[index],
                }
            )
        degraded = any(not entry["alive"] for entry in fleet)
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "health",
                "status": "degraded" if degraded else "ok",
                "providers": sorted(self.broker.providers),
                "workers": fleet,
            },
        )
