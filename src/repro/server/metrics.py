"""Prometheus text-format metrics for the broker server.

A deliberately small, stdlib-only instrumentation layer: counters,
gauges and histograms registered on a :class:`MetricsRegistry`, rendered
in the Prometheus text exposition format (version 0.0.4) for the
server's ``/metrics`` endpoint.  Values can be stored (HTTP request
counters, latency observations) or read at scrape time from a callback
(engine-cache stats via :meth:`BrokerSession.metrics`, per-shard ingest
counters via :meth:`ShardedIngestor.metrics`) — scrape-time callbacks
keep the hot paths free of double bookkeeping.

:func:`parse_prometheus_text` is the matching reader, used by the tests
and the round-trip example to assert on exported samples.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import ValidationError

#: Latency buckets (seconds) tuned for millisecond-scale request serving.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Finer low-end buckets for per-phase span durations (spans like
#: ``parse`` and ``cache_lookup`` sit well under a millisecond).
SPAN_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Size buckets for the megabatch span-count histogram (requests per
#: stacked vector pass — small powers of two, not latencies).
MEGABATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: A rendered sample: (metric name, sorted label pairs) -> value.
SampleKey = tuple[str, tuple[tuple[str, str], ...]]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in labels.items()
    )
    return "{" + body + "}"


class _Metric:
    """Shared machinery: a named family of labelled sample values."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]):
        if not _METRIC_NAME.match(name):
            raise ValidationError(f"invalid metric name: {name!r}")
        for labelname in labelnames:
            if not _LABEL_NAME.match(labelname):
                raise ValidationError(
                    f"metric {name!r} has an invalid label name: {labelname!r}"
                )
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], float] = {}
        self._callbacks: dict[tuple[str, ...], Callable[[], float]] = {}

    def _key(self, labelvalues: tuple[str, ...]) -> tuple[str, ...]:
        if len(labelvalues) != len(self.labelnames):
            raise ValidationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )
        return tuple(str(value) for value in labelvalues)

    def set_function(self, fn: Callable[[], float], *labelvalues: str) -> None:
        """Read this sample from ``fn()`` at scrape time."""
        with self._lock:
            self._callbacks[self._key(labelvalues)] = fn

    def samples(self) -> Iterator[tuple[str, dict[str, str], float]]:
        with self._lock:
            stored = dict(self._values)
            callbacks = dict(self._callbacks)
        for key, value in stored.items():
            yield self.name, dict(zip(self.labelnames, key)), value
        for key, fn in callbacks.items():
            yield self.name, dict(zip(self.labelnames, key)), float(fn())

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        for name, labels, value in self.samples():
            lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
        return "\n".join(lines)


class Counter(_Metric):
    """A monotonically increasing sample (or family of them)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, *, labels: Sequence[str] = ()) -> None:
        if amount < 0:
            raise ValidationError(f"counters only go up, got {amount!r}")
        key = self._key(tuple(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A sample that can go up and down (or be read from a callback)."""

    type_name = "gauge"

    def set(self, value: float, *, labels: Sequence[str] = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            self._values[key] = float(value)


class Histogram(_Metric):
    """Cumulative-bucket latency histogram, Prometheus-style.

    Exports ``<name>_bucket{le=...}`` (cumulative counts),
    ``<name>_sum`` and ``<name>_count`` per label set.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        if "le" in self.labelnames:
            raise ValidationError(
                f"histogram {name!r} may not use the reserved label 'le'"
            )
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValidationError(
                f"histogram buckets must be sorted and non-empty: {buckets!r}"
            )
        self.buckets = tuple(buckets)
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}

    def observe(self, value: float, *, labels: Sequence[str] = ()) -> None:
        key = self._key(tuple(labels))
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            index = bisect_left(self.buckets, value)
            if index < len(counts):
                counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def samples(self) -> Iterator[tuple[str, dict[str, str], float]]:
        with self._lock:
            snapshot = {
                key: (list(counts), self._sums[key], self._totals[key])
                for key, counts in self._counts.items()
            }
        for key, (counts, total_sum, total) in snapshot.items():
            base = dict(zip(self.labelnames, key))
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                yield (
                    f"{self.name}_bucket",
                    {**base, "le": _format_value(bound)},
                    float(cumulative),
                )
            yield f"{self.name}_bucket", {**base, "le": "+Inf"}, float(total)
            yield f"{self.name}_sum", dict(base), total_sum
            yield f"{self.name}_count", dict(base), float(total)


class MetricsRegistry:
    """An ordered collection of metrics with one ``render()`` output."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValidationError(
                    f"metric {metric.name!r} is already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, buckets))

    def render(self) -> str:
        """The full exposition document (trailing newline included)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return "\n".join(metric.render() for metric in metrics) + "\n"


def _parse_sample_line(line: str) -> tuple[SampleKey, float]:
    """Parse one exposition sample line into its key and value."""
    name_part, _, value_part = line.rpartition(" ")
    if not name_part:
        raise ValidationError(f"unparseable metrics line: {line!r}")
    labels: dict[str, str] = {}
    if "{" in name_part:
        name, _, label_body = name_part.partition("{")
        label_body = label_body.rstrip("}")
        for pair in _split_label_pairs(label_body):
            label_name, _, label_value = pair.partition("=")
            # Exactly one quote per side: str.strip would also eat
            # an escaped quote at the end of the value.
            if len(label_value) >= 2 and label_value[0] == label_value[-1] == '"':
                label_value = label_value[1:-1]
            labels[label_name] = _unescape(label_value)
    else:
        name = name_part
    if value_part == "+Inf":
        value = float("inf")
    elif value_part == "-Inf":
        value = float("-inf")
    elif value_part == "NaN":
        value = float("nan")
    else:
        value = float(value_part)
    return (name, tuple(sorted(labels.items()))), value


def parse_prometheus_text(text: str) -> dict[SampleKey, float]:
    """Parse an exposition document back into ``{(name, labels): value}``.

    Supports exactly what :meth:`MetricsRegistry.render` emits (which is
    valid Prometheus text format); used by tests to assert on scraped
    samples without regex fishing.
    """
    samples: dict[SampleKey, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, value = _parse_sample_line(line)
        samples[key] = value
    return samples


def merge_expositions(texts: Sequence[str]) -> str:
    """Merge worker expositions into one fleet-wide document.

    Walks the first document line by line — HELP/TYPE comments and
    sample ordering are preserved verbatim — re-emitting each sample
    with its value summed across the matching samples of the remaining
    documents.  Samples that exist only in later documents (e.g. a
    label set one worker never touched) are appended at the end in
    sorted order, so no observation is dropped.  Counters and histogram
    buckets sum meaningfully; gauges sum to fleet-wide totals (e.g.
    ``repro_engines_cached`` becomes engines held across all workers).
    """
    texts = [text for text in texts if text]
    if not texts:
        return ""
    if len(texts) == 1:
        return texts[0]
    leftovers: dict[SampleKey, float] = {}
    for other in texts[1:]:
        for key, value in parse_prometheus_text(other).items():
            leftovers[key] = leftovers.get(key, 0.0) + value
    out: list[str] = []
    for line in texts[0].splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            out.append(line)
            continue
        key, value = _parse_sample_line(stripped)
        value += leftovers.pop(key, 0.0)
        (name, labelpairs) = key
        out.append(f"{name}{_render_labels(dict(labelpairs))} {_format_value(value)}")
    for (name, labelpairs), value in sorted(leftovers.items()):
        out.append(f"{name}{_render_labels(dict(labelpairs))} {_format_value(value)}")
    return "\n".join(out) + "\n"


def _unescape(value: str) -> str:
    """Invert :func:`_escape` with a left-to-right scan.

    Sequential ``str.replace`` calls mis-parse values whose escaped
    backslashes precede other escapes (``\\\\n`` is a backslash + ``n``,
    not a newline).
    """
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _split_label_pairs(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


class EdgeMetricsMixin:
    """The HTTP-edge metric families and their observation hooks.

    Factored out so the families are defined exactly once but can live
    at either tier: :class:`ServerMetrics` registers them when it runs
    at the edge (the in-process server), while the gateway's own metric
    set (:class:`repro.server.gateway.GatewayMetrics`) registers them at
    the edge of a worker fleet — where auth, rate limiting and replay
    actually execute — keeping worker expositions free of duplicate
    edge families.
    """

    def _register_edge_metrics(
        self, reg: MetricsRegistry, idempotency_store=None, rate_limiter=None
    ) -> None:
        self.http_requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status code.",
            ("route", "status"),
        )
        self.http_latency = reg.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency, by route.",
            ("route",),
        )
        self.rate_limited = reg.counter(
            "repro_rate_limited_total",
            "Requests rejected with 429 by the token-bucket rate "
            "limiter, by route.",
            ("route",),
        )
        self.auth_failures = reg.counter(
            "repro_auth_failures_total",
            "Requests rejected by bearer-token auth, by status "
            "(401 = no/malformed credential, 403 = wrong token).",
            ("status",),
        )
        self.idempotent_replays = reg.counter(
            "repro_idempotent_replays_total",
            "Requests answered from the idempotency replay table "
            "without re-execution, by route.",
            ("route",),
        )
        if idempotency_store is not None:
            self.idempotency_entries = reg.gauge(
                "repro_idempotency_entries",
                "Completed responses held in the idempotency replay "
                "table.",
            )
            self.idempotency_entries.set_function(
                lambda: float(len(idempotency_store))
            )
        if rate_limiter is not None:
            self.rate_limit_principals = reg.gauge(
                "repro_rate_limit_principals",
                "Distinct principals with live token buckets.",
            )
            self.rate_limit_principals.set_function(
                lambda: float(len(rate_limiter))
            )

    def observe_request(self, route: str, status: int, seconds: float) -> None:
        """Record one served HTTP request."""
        self.http_requests.inc(labels=(route, str(status)))
        self.http_latency.observe(seconds, labels=(route,))

    def observe_rate_limited(self, route: str) -> None:
        """Record one 429 rejection."""
        self.rate_limited.inc(labels=(route,))

    def observe_auth_failure(self, status: int) -> None:
        """Record one 401/403 rejection."""
        self.auth_failures.inc(labels=(str(status),))

    def observe_replay(self, route: str) -> None:
        """Record one idempotent replay served from the table."""
        self.idempotent_replays.inc(labels=(route,))


class ServerMetrics(EdgeMetricsMixin):
    """The broker server's metric set, bound to its live components.

    Engine-cache and job-table samples read
    :meth:`~repro.broker.api.BrokerSession.metrics` at scrape time;
    per-shard ingest samples read
    :meth:`~repro.server.ingest.ShardedIngestor.metrics`.  HTTP request
    counters and latency histograms are recorded by the transport via
    :meth:`observe_request`.

    One scrape takes exactly one :meth:`BrokerSession.metrics` call and
    one :meth:`ShardedIngestor.metrics` call — :meth:`render` snapshots
    both up front and the per-sample callbacks read from the snapshot,
    so scrape cost stays flat however many samples a subsystem exports.

    Worker-pool and term-table samples read the engines' shared
    :class:`~repro.optimizer.pools.PoolRegistry` (``pool_registry``,
    defaulting to the process-wide one) at scrape time.  When the
    session megabatches, ``repro_megabatch_size`` observes every flushed
    batch's span count through the stacker's observer hook.  When the
    server traces (``tracer`` given), ``repro_span_duration_seconds``
    observes every recorded span's duration, labelled by phase, through
    the tracer's observer hook.

    ``edge=False`` (used by gateway worker processes) skips the
    HTTP-edge families entirely: auth, rate limiting and idempotency
    run once at the gateway, so only the gateway exports them and the
    merged fleet exposition never double-counts an edge event.
    """

    def __init__(
        self,
        session,
        ingestor=None,
        pool_registry=None,
        tracer=None,
        idempotency_store=None,
        rate_limiter=None,
        edge: bool = True,
    ) -> None:
        from repro.optimizer.pools import default_registry

        self._session = session
        self._ingestor = ingestor
        self._pool_registry = (
            pool_registry if pool_registry is not None else default_registry()
        )
        self._session_snapshot: dict = {}
        self._ingest_snapshot: dict = {}
        self.registry = MetricsRegistry()
        reg = self.registry

        def cache_stat(field: str) -> Callable[[], float]:
            return lambda: self._session_snapshot["engine_cache"][field]

        self.cache_hits = reg.counter(
            "repro_engine_cache_hits_total", "Engine cache lookup hits."
        )
        self.cache_hits.set_function(cache_stat("hits"))
        self.cache_misses = reg.counter(
            "repro_engine_cache_misses_total", "Engine cache lookup misses."
        )
        self.cache_misses.set_function(cache_stat("misses"))
        self.cache_evictions = reg.counter(
            "repro_engine_cache_evictions_total", "Engines evicted (LRU)."
        )
        self.cache_evictions.set_function(cache_stat("evictions"))
        self.engines_cached = reg.gauge(
            "repro_engines_cached", "Engines currently held by the cache."
        )
        self.engines_cached.set_function(
            lambda: self._session_snapshot["engines_cached"]
        )
        self.jobs = reg.gauge(
            "repro_jobs", "Session jobs by lifecycle status.", ("status",)
        )
        for status in ("pending", "running", "done", "failed"):
            self.jobs.set_function(
                (lambda s: lambda: self._session_snapshot["jobs"][s])(status),
                status,
            )
        self.job_queue_depth = reg.gauge(
            "repro_job_queue_depth", "Jobs submitted but not yet finished."
        )
        self.job_queue_depth.set_function(
            lambda: self._session_snapshot["job_queue_depth"]
        )
        self.jobs_evicted = reg.counter(
            "repro_jobs_evicted_total",
            "Finished jobs evicted from the session table, by policy "
            "(retrieved = count cap on fetched jobs, ttl = age-based "
            "reclaim of fire-and-forget jobs).",
            ("policy",),
        )
        for policy in ("retrieved", "ttl"):
            self.jobs_evicted.set_function(
                (lambda p: lambda: self._session_snapshot["jobs_evicted"][p])(
                    policy
                ),
                policy,
            )

        if ingestor is not None:
            self.ingest_events = reg.counter(
                "repro_ingest_events_total",
                "Telemetry records ingested per shard (as of last merge).",
                ("shard",),
            )
            self.ingest_rejected = reg.counter(
                "repro_ingest_rejected_total",
                "Telemetry records rejected per shard (as of last merge).",
                ("shard",),
            )
            self.ingest_pending = reg.gauge(
                "repro_ingest_pending_batches",
                "Queued command batches per shard (approximate).",
                ("shard",),
            )

            def shard_stat(index: int, field: str) -> Callable[[], float]:
                return lambda: self._ingest_snapshot["shards"][index][field]

            for index in range(ingestor.num_shards):
                shard = str(index)
                self.ingest_events.set_function(
                    shard_stat(index, "ingested"), shard
                )
                self.ingest_rejected.set_function(
                    shard_stat(index, "rejected"), shard
                )
                self.ingest_pending.set_function(
                    shard_stat(index, "pending"), shard
                )
            self.ingest_merges = reg.counter(
                "repro_ingest_merges_total",
                "Snapshot merges published to the serving store.",
            )
            self.ingest_merges.set_function(
                lambda: self._ingest_snapshot["merges"]
            )

        self.pool_leases = reg.gauge(
            "repro_pool_leases",
            "Outstanding worker-pool leases across evaluation engines.",
        )
        self.pool_leases.set_function(self._pool_registry.live_leases)
        self.term_table_bytes = reg.gauge(
            "repro_term_table_bytes",
            "Bytes pinned in shared-memory term-table segments "
            "(0 under the manager-dict channel).",
        )
        self.term_table_bytes.set_function(self._pool_registry.term_table_bytes)

        self.megabatch_size = reg.histogram(
            "repro_megabatch_size",
            "Requests stacked per megabatch vector pass.",
            buckets=MEGABATCH_SIZE_BUCKETS,
        )
        stacker = getattr(session, "megabatch", None)
        if stacker is not None:
            stacker.observer = self._observe_megabatch

        self.span_duration = reg.histogram(
            "repro_span_duration_seconds",
            "Traced span durations, by phase (empty until tracing is on).",
            ("phase",),
            buckets=SPAN_BUCKETS,
        )
        if tracer is not None:
            tracer.observer = self._observe_span

        if edge:
            self._register_edge_metrics(
                reg,
                idempotency_store=idempotency_store,
                rate_limiter=rate_limiter,
            )

    def _observe_megabatch(self, spans: int) -> None:
        """Stacker observer hook: one sample per flushed batch."""
        self.megabatch_size.observe(float(spans))

    def _observe_span(self, record) -> None:
        """Tracer observer hook: one sample per recorded span."""
        self.span_duration.observe(
            record.end - record.start, labels=(record.name,)
        )

    def render(self) -> str:
        """The ``/metrics`` response body (one snapshot per subsystem)."""
        self._session_snapshot = self._session.metrics()
        if self._ingestor is not None:
            self._ingest_snapshot = self._ingestor.metrics()
        return self.registry.render()
