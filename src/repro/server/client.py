"""A synchronous client for the broker server's wire protocol.

:class:`ServerClient` is the reference consumer of
:mod:`repro.server.transport`: stdlib ``http.client`` underneath, typed
envelopes on top.  The CLI, the examples, the throughput benchmark and
the end-to-end tests all go through it, so the client doubles as the
protocol's executable documentation.

Server-reported failures surface as :class:`ServerError`, carrying the
HTTP status and the decoded
:class:`~repro.broker.envelope.ErrorEnvelope`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import replace
from typing import Any, Iterable, Sequence
from urllib.parse import urlsplit

from repro.broker.envelope import (
    ErrorEnvelope,
    RecommendEnvelope,
    ReportEnvelope,
)
from repro.broker.request import RecommendationRequest
from repro.errors import BrokerError, ValidationError
from repro.obs import clock
from repro.obs.trace import (
    SpanContext,
    SpanRecord,
    format_traceparent,
    new_span_id,
    new_trace_id,
)
from repro.server.ingest import TelemetryRecord, records_to_jsonl
from repro.server.metrics import SampleKey, parse_prometheus_text

#: Response header the server stamps with the request's trace id.
_TRACE_HEADER = "X-Repro-Trace-Id"

#: Job states the result poll loop treats as terminal.
_TERMINAL = {"done", "failed"}


class ServerError(BrokerError):
    """The server answered with an error envelope."""

    def __init__(self, status: int, envelope: ErrorEnvelope | None, body: str):
        self.status = status
        self.envelope = envelope
        detail = envelope.message if envelope is not None else body[:200]
        slug = envelope.error if envelope is not None else "unknown"
        super().__init__(f"server returned {status} ({slug}): {detail}")


class ServerClient:
    """Typed access to one running broker server.

    Connections are kept alive and reused per thread (matching the
    server's keep-alive support), so polling loops and benchmark fleets
    do not pay a TCP handshake per request.  A request that fails on a
    *reused* connection — the stale keep-alive case — is retried once
    on a fresh connection, but only when the retry cannot duplicate
    work: always after a send-phase failure (the request never reached
    the server), and after a response-phase failure only for idempotent
    methods.  A non-idempotent request whose response was lost (the
    server may already have run it — a retried ``POST /v2/jobs`` would
    submit a duplicate job, a retried ``POST /v2/ingest`` would
    double-count telemetry) raises instead; the caller decides.  A
    fresh connection's failure always propagates.
    """

    #: Methods safe to replay after a lost response (RFC 9110 §9.2.2).
    IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "OPTIONS", "PUT", "DELETE"})

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        trace: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Stamp outgoing recommend/submit envelopes with a fresh
        #: traceparent (client-originated trace ids).  Works against
        #: untraced servers too — the field is ignored there.
        self.trace = trace
        #: Trace id of the most recent traced response (the server's
        #: X-Repro-Trace-Id header), or None before the first one.
        self.last_trace_id: str | None = None
        self._local = threading.local()

    @classmethod
    def from_url(
        cls, url: str, timeout: float = 60.0, trace: bool = False
    ) -> "ServerClient":
        """Build a client from ``http://host:port``."""
        parts = urlsplit(url if "//" in url else f"//{url}")
        if parts.scheme not in ("", "http"):
            raise ValidationError(
                f"only http:// URLs are supported, got {url!r}"
            )
        if not parts.hostname or not parts.port:
            raise ValidationError(
                f"server URL must carry host and port, got {url!r}"
            )
        return cls(parts.hostname, parts.port, timeout=timeout, trace=trace)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        """Drop the calling thread's cached connection (if any)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """The thread's live connection, plus whether it is a reused one."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        self._local.connection = connection
        return connection, False

    def request_raw(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, str]:
        """One HTTP exchange; returns ``(status, body text)``.

        Exposed for tests probing wire-level behaviour; the typed
        methods below are the supported API.
        """
        if isinstance(body, str):
            body = body.encode("utf-8")
        while True:
            connection, reused = self._checkout()
            try:
                connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": content_type} if body else {},
                )
            except (http.client.HTTPException, ConnectionError, OSError):
                # Send-phase failure: the stale keep-alive socket died
                # at write time, before the server saw the request —
                # retrying is safe for any method.
                self.close()
                if reused:
                    continue
                raise
            try:
                response = connection.getresponse()
                text = response.read().decode("utf-8")
            except (http.client.HTTPException, ConnectionError, OSError):
                # Response-phase failure: the server may have processed
                # the request before the connection dropped, so an
                # automatic replay is safe only for idempotent methods.
                self.close()
                if reused and method in self.IDEMPOTENT_METHODS:
                    continue
                raise
            trace_id = response.getheader(_TRACE_HEADER)
            if trace_id is not None:
                self.last_trace_id = trace_id
            if response.will_close:
                self.close()
            return response.status, text

    def _request(self, method: str, path: str, body: bytes | str | None = None):
        status, text = self.request_raw(method, path, body)
        if status >= 400:
            envelope = None
            try:
                envelope = ErrorEnvelope.from_json(text)
            except ValidationError:
                pass
            raise ServerError(status, envelope, text)
        return status, text

    # -- recommendation ----------------------------------------------------

    def _as_envelope(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> RecommendEnvelope:
        if isinstance(request, RecommendEnvelope):
            envelope = request
        else:
            envelope = RecommendEnvelope(request=request)
        if self.trace and envelope.trace is None:
            # Client-originated trace: the server parents its request
            # span to this context, so the id below IS the trace id
            # `/v2/traces/{id}` answers to.
            envelope = replace(
                envelope,
                trace=format_traceparent(
                    SpanContext(
                        trace_id=new_trace_id(), span_id=new_span_id()
                    )
                ),
            )
        return envelope

    def recommend(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> ReportEnvelope:
        """Synchronous recommend: envelope over the wire, report back."""
        envelope = self._as_envelope(request)
        _, text = self._request("POST", "/v2/recommend", envelope.to_json())
        return ReportEnvelope.from_json(text)

    def batch(
        self, requests: Iterable[RecommendationRequest | RecommendEnvelope]
    ) -> list[ReportEnvelope | ErrorEnvelope]:
        """JSONL batch: one report (or error) envelope per request, in order."""
        payload = "\n".join(
            self._as_envelope(request).to_json() for request in requests
        )
        _, text = self._request("POST", "/v2/batch", payload)
        results: list[ReportEnvelope | ErrorEnvelope] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            if json.loads(line).get("kind") == "error":
                results.append(ErrorEnvelope.from_json(line))
            else:
                results.append(ReportEnvelope.from_json(line))
        return results

    # -- jobs --------------------------------------------------------------

    def submit(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> str:
        """Queue a request server-side; returns the job id."""
        envelope = self._as_envelope(request)
        _, text = self._request("POST", "/v2/jobs", envelope.to_json())
        return json.loads(text)["job_id"]

    def poll(self, job_id: str) -> str:
        """The job's lifecycle state (``pending``/``running``/...)."""
        _, text = self._request("GET", f"/v2/jobs/{job_id}")
        return json.loads(text)["status"]

    def result(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> ReportEnvelope:
        """Poll until the job finishes; returns (or raises) its outcome."""
        deadline = clock.monotonic() + timeout
        while True:
            status, text = self._request(
                "GET", f"/v2/jobs/{job_id}/result"
            )
            if status == 200:
                return ReportEnvelope.from_json(text)
            if clock.monotonic() >= deadline:
                raise BrokerError(
                    f"job {job_id!r} did not finish within {timeout}s "
                    f"(last status: {json.loads(text).get('status')})"
                )
            time.sleep(poll_interval)

    # -- telemetry ---------------------------------------------------------

    def ingest(self, records: Sequence[TelemetryRecord]) -> dict[str, Any]:
        """Ship telemetry records into the server's sharded pipeline."""
        _, text = self._request("POST", "/v2/ingest", records_to_jsonl(records))
        return json.loads(text)

    def ingest_jsonl(self, text: str) -> dict[str, Any]:
        """Ship an already-serialized JSONL trace."""
        _, body = self._request("POST", "/v2/ingest", text)
        return json.loads(body)

    def flush(self) -> dict[str, Any]:
        """Force a snapshot merge into the serving store."""
        _, text = self._request("POST", "/v2/ingest/flush", None)
        return json.loads(text)

    # -- observability -----------------------------------------------------

    def metrics_text(self) -> str:
        """The raw Prometheus exposition document."""
        _, text = self._request("GET", "/metrics")
        return text

    def metrics(self) -> dict[SampleKey, float]:
        """Scraped and parsed ``/metrics`` samples."""
        return parse_prometheus_text(self.metrics_text())

    def traces(
        self,
        min_duration: float | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Recent trace summaries (raises 404 ServerError when off)."""
        params = []
        if min_duration is not None:
            params.append(f"min_duration={min_duration}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = "?" + "&".join(params) if params else ""
        _, text = self._request("GET", f"/v2/traces{query}")
        return json.loads(text)

    def trace_spans(self, trace_id: str) -> list[SpanRecord]:
        """One trace's spans, decoded into :class:`SpanRecord` rows."""
        _, text = self._request("GET", f"/v2/traces/{trace_id}")
        return [
            SpanRecord.from_dict(payload)
            for payload in json.loads(text)["spans"]
        ]

    def health(self) -> dict[str, Any]:
        """The liveness document (raises :class:`ServerError` when sick)."""
        _, text = self._request("GET", "/healthz")
        return json.loads(text)
