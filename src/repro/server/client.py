"""A synchronous client for the broker server's wire protocol.

:class:`ServerClient` is the reference consumer of
:mod:`repro.server.transport`: stdlib ``http.client`` underneath, typed
envelopes on top.  The CLI, the examples, the throughput benchmark and
the end-to-end tests all go through it, so the client doubles as the
protocol's executable documentation.

Server-reported failures surface as :class:`ServerError`, carrying the
HTTP status and the decoded
:class:`~repro.broker.envelope.ErrorEnvelope`.

Hardened-protocol support (all optional per server configuration):

- every typed POST is stamped with a fresh ``Idempotency-Key`` (unless
  ``idempotency=False``), making retries after lost responses safe for
  *every* method — the server replays the original response instead of
  re-executing;
- ``429`` answers are honoured by sleeping out ``Retry-After`` and
  retrying, up to ``rate_limit_budget`` seconds per call;
- ``auth_token`` adds ``Authorization: Bearer`` to every request;
- a :class:`CircuitBreaker` opens after ``breaker_threshold``
  consecutive connect/5xx failures and fails fast with
  :class:`CircuitOpenError` until a cooldown passes, then lets one
  half-open probe through.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import replace
from typing import Any, Iterable, Sequence
from urllib.parse import urlsplit

from repro.broker.envelope import (
    ErrorEnvelope,
    RecommendEnvelope,
    ReportEnvelope,
)
from repro.broker.request import RecommendationRequest
from repro.errors import BrokerError, ValidationError
from repro.obs import clock
from repro.obs.trace import (
    SpanContext,
    SpanRecord,
    format_traceparent,
    new_span_id,
    new_trace_id,
)
from repro.server.ingest import TelemetryRecord, records_to_jsonl
from repro.server.metrics import SampleKey, parse_prometheus_text

#: Response header the server stamps with the request's trace id.
_TRACE_HEADER = "X-Repro-Trace-Id"

#: Job states the result poll loop treats as terminal.
_TERMINAL = {"done", "failed"}

#: Retry-After to assume when a 429 arrives without the header.
_DEFAULT_RETRY_AFTER = 0.05


class ServerError(BrokerError):
    """The server answered with an error envelope."""

    def __init__(self, status: int, envelope: ErrorEnvelope | None, body: str):
        self.status = status
        self.envelope = envelope
        detail = envelope.message if envelope is not None else body[:200]
        slug = envelope.error if envelope is not None else "unknown"
        super().__init__(f"server returned {status} ({slug}): {detail}")


class CircuitOpenError(BrokerError):
    """The client's circuit breaker is open; the request was not sent."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    ``threshold`` consecutive connect failures or 5xx responses open
    the circuit: further requests fail fast with
    :class:`CircuitOpenError` (no socket work) until ``cooldown``
    seconds pass.  Then exactly one caller is admitted as a half-open
    probe — its success closes the circuit, its failure re-opens it for
    another cooldown.  Thread-safe; shared by all of a client's
    per-thread connections, since "the server is down" is a
    per-endpoint fact, not a per-socket one.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 1.0,
        clock_fn=clock.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValidationError(
                f"breaker threshold must be >= 1, got {threshold!r}"
            )
        if cooldown <= 0.0:
            raise ValidationError(
                f"breaker cooldown must be > 0, got {cooldown!r}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock_fn
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (cooldown elapsed)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def admit(self) -> None:
        """Let a request proceed, or raise :class:`CircuitOpenError`."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half-open" and not self._probing:
                self._probing = True
                return
            assert self._opened_at is not None
            remaining = max(
                0.0, self.cooldown - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"circuit breaker is {state} after {self._failures} "
                f"consecutive failures; next probe in {remaining:.3f}s"
            )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._failures += 1
            if self._failures >= self.threshold:
                self._opened_at = self._clock()


class ServerClient:
    """Typed access to one running broker server.

    Connections are kept alive and reused per thread (matching the
    server's keep-alive support), so polling loops and benchmark fleets
    do not pay a TCP handshake per request.  A request that fails on a
    *reused* connection — the stale keep-alive case — is retried once
    on a fresh connection when the retry cannot duplicate work: always
    after a send-phase failure (the request never reached the server),
    and after a response-phase failure when the method is idempotent
    *or* the request carries an idempotency key (the server then
    replays the original response instead of re-executing, so a lost
    response is recoverable for any method).  An unkeyed non-idempotent
    request whose response was lost still raises; the caller decides.
    A fresh connection's failure always propagates.
    """

    #: Methods safe to replay after a lost response.  Deliberately
    #: narrower than RFC 9110 §9.2.2: this server serves no PUT/DELETE
    #: routes, and listing them here would silently grant a future
    #: accidentally-non-idempotent PUT unsafe automatic replay.  Tests
    #: assert this set against the served route table.
    IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "OPTIONS"})

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        trace: bool = False,
        auth_token: str | None = None,
        idempotency: bool = True,
        rate_limit_budget: float = 5.0,
        breaker_threshold: int | None = None,
        breaker_cooldown: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Stamp outgoing recommend/submit envelopes with a fresh
        #: traceparent (client-originated trace ids).  Works against
        #: untraced servers too — the field is ignored there.
        self.trace = trace
        #: Bearer token sent on every request (None = no auth header).
        self.auth_token = auth_token
        #: Stamp typed POSTs with fresh idempotency keys (safe against
        #: pre-hardening servers too — unknown headers are ignored and
        #: the envelope field round-trips).
        self.idempotency = idempotency
        #: Total seconds one call may spend sleeping out 429s.
        self.rate_limit_budget = rate_limit_budget
        self.breaker = (
            CircuitBreaker(breaker_threshold, breaker_cooldown)
            if breaker_threshold is not None
            else None
        )
        #: Trace id of the most recent traced response (the server's
        #: X-Repro-Trace-Id header), or None before the first one.
        self.last_trace_id: str | None = None
        #: Lower-cased headers of the most recent response.
        self.last_response_headers: dict[str, str] = {}
        self._local = threading.local()

    @classmethod
    def from_url(
        cls, url: str, timeout: float = 60.0, trace: bool = False, **kwargs
    ) -> "ServerClient":
        """Build a client from ``http://host:port``."""
        parts = urlsplit(url if "//" in url else f"//{url}")
        if parts.scheme not in ("", "http"):
            raise ValidationError(
                f"only http:// URLs are supported, got {url!r}"
            )
        if not parts.hostname or not parts.port:
            raise ValidationError(
                f"server URL must carry host and port, got {url!r}"
            )
        return cls(
            parts.hostname, parts.port, timeout=timeout, trace=trace, **kwargs
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        """Drop the calling thread's cached connection (if any)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """The thread's live connection, plus whether it is a reused one."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        self._local.connection = connection
        return connection, False

    def request_raw(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
        idempotent_replay: bool = False,
    ) -> tuple[int, str]:
        """One HTTP exchange; returns ``(status, body text)``.

        ``idempotent_replay=True`` declares the request safe to resend
        after a lost response regardless of method — the caller stamped
        an idempotency key, so the server dedups.  Exposed for tests
        probing wire-level behaviour; the typed methods below are the
        supported API.
        """
        if isinstance(body, str):
            body = body.encode("utf-8")
        # Content-Type accompanies any body, including an empty one —
        # `if body` would drop the header for b"".
        send_headers = {"Content-Type": content_type} if body is not None else {}
        if self.auth_token is not None:
            send_headers["Authorization"] = f"Bearer {self.auth_token}"
        if headers:
            send_headers.update(headers)
        budget = self.rate_limit_budget
        while True:
            if self.breaker is not None:
                self.breaker.admit()
            connection, reused = self._checkout()
            try:
                connection.request(method, path, body=body, headers=send_headers)
            except (http.client.HTTPException, ConnectionError, OSError):
                # Send-phase failure: the stale keep-alive socket died
                # at write time, before the server saw the request —
                # retrying is safe for any method.
                self.close()
                if reused:
                    continue
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            try:
                response = connection.getresponse()
                text = response.read().decode("utf-8")
            except (http.client.HTTPException, ConnectionError, OSError):
                # Response-phase failure: the server may have processed
                # the request before the connection dropped, so an
                # automatic replay is safe only when re-execution is
                # impossible — an idempotent method, or a keyed request
                # the server's replay table dedups.
                self.close()
                if reused and (
                    method in self.IDEMPOTENT_METHODS or idempotent_replay
                ):
                    continue
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            self.last_response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            trace_id = response.getheader(_TRACE_HEADER)
            if trace_id is not None:
                self.last_trace_id = trace_id
            if response.will_close:
                self.close()
            if self.breaker is not None:
                if response.status >= 500:
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            if response.status == 429:
                retry_after = _DEFAULT_RETRY_AFTER
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = max(0.0, float(header))
                    except ValueError:
                        pass
                if budget > 0.0 and retry_after <= budget:
                    # Honour the server's hint and resend (same key,
                    # same body) until the per-call budget runs out.
                    # The floor keeps a 0-second hint from looping
                    # without ever draining the budget.
                    retry_after = max(retry_after, 0.001)
                    budget -= retry_after
                    time.sleep(retry_after)
                    continue
            return response.status, text

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        headers: dict[str, str] | None = None,
        idempotent_replay: bool = False,
    ):
        status, text = self.request_raw(
            method,
            path,
            body,
            headers=headers,
            idempotent_replay=idempotent_replay,
        )
        if status >= 400:
            envelope = None
            try:
                envelope = ErrorEnvelope.from_json(text)
            except ValidationError:
                pass
            raise ServerError(status, envelope, text)
        return status, text

    # -- recommendation ----------------------------------------------------

    def _as_envelope(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> RecommendEnvelope:
        if isinstance(request, RecommendEnvelope):
            envelope = request
        else:
            envelope = RecommendEnvelope(request=request)
        if self.trace and envelope.trace is None:
            # Client-originated trace: the server parents its request
            # span to this context, so the id below IS the trace id
            # `/v2/traces/{id}` answers to.
            envelope = replace(
                envelope,
                trace=format_traceparent(
                    SpanContext(
                        trace_id=new_trace_id(), span_id=new_span_id()
                    )
                ),
            )
        if self.idempotency and envelope.idempotency_key is None:
            # One fresh key per logical request: every resend of this
            # envelope (stale-socket retry, 429 retry) carries the same
            # key, so the server executes it at most once.
            envelope = replace(envelope, idempotency_key=new_trace_id())
        return envelope

    def recommend(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> ReportEnvelope:
        """Synchronous recommend: envelope over the wire, report back."""
        envelope = self._as_envelope(request)
        _, text = self._request(
            "POST",
            "/v2/recommend",
            envelope.to_json(),
            idempotent_replay=envelope.idempotency_key is not None,
        )
        return ReportEnvelope.from_json(text)

    def batch(
        self, requests: Iterable[RecommendationRequest | RecommendEnvelope]
    ) -> list[ReportEnvelope | ErrorEnvelope]:
        """JSONL batch: one report (or error) envelope per request, in order."""
        payload = "\n".join(
            self._as_envelope(request).to_json() for request in requests
        )
        _, text = self._request("POST", "/v2/batch", payload)
        results: list[ReportEnvelope | ErrorEnvelope] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            if json.loads(line).get("kind") == "error":
                results.append(ErrorEnvelope.from_json(line))
            else:
                results.append(ReportEnvelope.from_json(line))
        return results

    # -- jobs --------------------------------------------------------------

    def submit(
        self, request: RecommendationRequest | RecommendEnvelope
    ) -> str:
        """Queue a request server-side; returns the job id."""
        envelope = self._as_envelope(request)
        _, text = self._request(
            "POST",
            "/v2/jobs",
            envelope.to_json(),
            idempotent_replay=envelope.idempotency_key is not None,
        )
        return json.loads(text)["job_id"]

    def poll(self, job_id: str) -> str:
        """The job's lifecycle state (``pending``/``running``/...)."""
        _, text = self._request("GET", f"/v2/jobs/{job_id}")
        return json.loads(text)["status"]

    def result(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> ReportEnvelope:
        """Poll until the job finishes; returns (or raises) its outcome."""
        deadline = clock.monotonic() + timeout
        while True:
            status, text = self._request(
                "GET", f"/v2/jobs/{job_id}/result"
            )
            if status == 200:
                return ReportEnvelope.from_json(text)
            if clock.monotonic() >= deadline:
                raise BrokerError(
                    f"job {job_id!r} did not finish within {timeout}s "
                    f"(last status: {json.loads(text).get('status')})"
                )
            time.sleep(poll_interval)

    # -- telemetry ---------------------------------------------------------

    def _ingest_headers(self) -> dict[str, str] | None:
        """A fresh Idempotency-Key header for one ingest shipment.

        Ingest bodies are raw JSONL (no envelope field to stamp), so
        the key rides the request header instead.
        """
        if not self.idempotency:
            return None
        return {"Idempotency-Key": new_trace_id()}

    def ingest(self, records: Sequence[TelemetryRecord]) -> dict[str, Any]:
        """Ship telemetry records into the server's sharded pipeline."""
        headers = self._ingest_headers()
        _, text = self._request(
            "POST",
            "/v2/ingest",
            records_to_jsonl(records),
            headers=headers,
            idempotent_replay=headers is not None,
        )
        return json.loads(text)

    def ingest_jsonl(self, text: str) -> dict[str, Any]:
        """Ship an already-serialized JSONL trace."""
        headers = self._ingest_headers()
        _, body = self._request(
            "POST",
            "/v2/ingest",
            text,
            headers=headers,
            idempotent_replay=headers is not None,
        )
        return json.loads(body)

    def flush(self) -> dict[str, Any]:
        """Force a snapshot merge into the serving store."""
        _, text = self._request("POST", "/v2/ingest/flush", None)
        return json.loads(text)

    # -- observability -----------------------------------------------------

    def metrics_text(self) -> str:
        """The raw Prometheus exposition document."""
        _, text = self._request("GET", "/metrics")
        return text

    def metrics(self) -> dict[SampleKey, float]:
        """Scraped and parsed ``/metrics`` samples."""
        return parse_prometheus_text(self.metrics_text())

    def traces(
        self,
        min_duration: float | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Recent trace summaries (raises 404 ServerError when off)."""
        params = []
        if min_duration is not None:
            params.append(f"min_duration={min_duration}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = "?" + "&".join(params) if params else ""
        _, text = self._request("GET", f"/v2/traces{query}")
        return json.loads(text)

    def trace_spans(self, trace_id: str) -> list[SpanRecord]:
        """One trace's spans, decoded into :class:`SpanRecord` rows."""
        _, text = self._request("GET", f"/v2/traces/{trace_id}")
        return [
            SpanRecord.from_dict(payload)
            for payload in json.loads(text)["spans"]
        ]

    def health(self) -> dict[str, Any]:
        """The liveness document (raises :class:`ServerError` when sick)."""
        _, text = self._request("GET", "/healthz")
        return json.loads(text)
