"""A gateway worker process: one partition of the serving fleet.

:func:`worker_main` is the spawn target. Each worker owns a full
:class:`~repro.server.core.RequestCore` — its own
:class:`~repro.broker.api.BrokerSession` (a disjoint partition of the
engine-cache keyspace, by consistent routing at the gateway), its own
sharded ingestor over its own copy of the broker's telemetry store,
and an edge-free metrics registry (``metrics_edge=False``; the gateway
exports the HTTP/hardening families exactly once).

The worker dials the gateway's dispatch port, authenticates with the
shared token, completes the clock-offset handshake (see
:mod:`repro.server.dispatch`), then serves ``request`` frames until
EOF.  Each request runs as its own task, bounded by the worker's
in-flight semaphore; streaming responses relay chunk-by-chunk with
boundaries preserved, so batch output is byte-identical to the
in-process server's.  EOF on the dispatch link — gateway shutdown or
gateway death — is the exit signal: the worker cancels in-flight
tasks, closes its session and leaves, so a dead gateway can never leak
worker processes.

No HTTP, no sockets beyond the dispatch link, and no hardening live
here: the gateway owns the edge.
"""

from __future__ import annotations

import asyncio
import logging
import os

from repro.obs import clock
from repro.server.core import (
    RequestCore,
    _error_response,
    _HttpError,
    _Request,
    error_envelope_for,
)
from repro.server.dispatch import (
    WorkerSpec,
    job_id_start,
    read_frame,
    send_frame,
)

logger = logging.getLogger("repro.server.worker")


def worker_main(spec: WorkerSpec) -> None:
    """Spawn entry point: serve one partition until the link closes."""
    asyncio.run(_serve_partition(spec))


async def _serve_partition(spec: WorkerSpec) -> None:
    core = RequestCore(
        spec.broker,
        shards=spec.shards,
        ingest_backend=spec.ingest_backend,
        merge_interval=spec.merge_interval,
        max_workers=spec.max_workers,
        cache_capacity=spec.cache_capacity,
        eval_backend=spec.eval_backend,
        finished_job_ttl=spec.finished_job_ttl,
        megabatch=spec.megabatch,
        megabatch_window=spec.megabatch_window,
        megabatch_max_rows=spec.megabatch_max_rows,
        trace=spec.trace,
        trace_capacity=spec.trace_capacity,
        profile_requests=spec.profile_requests,
        job_id_start=job_id_start(spec.index, spec.workers, spec.epoch),
        job_id_stride=spec.workers,
        metrics_edge=False,
    )
    try:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", spec.dispatch_port
        )
    except OSError:
        logger.exception("worker %d could not dial the gateway", spec.index)
        core.close()
        return
    lock = asyncio.Lock()
    hello_at = clock.perf_counter()
    await send_frame(
        writer,
        lock,
        {
            "kind": "hello",
            "token": spec.token,
            "index": spec.index,
            "pid": os.getpid(),
            "epoch": spec.epoch,
            "perf": hello_at,
        },
    )
    ack, _ = await read_frame(reader)
    ack_at = clock.perf_counter()
    if ack.get("kind") != "hello-ack":
        raise RuntimeError(f"expected hello-ack, got {ack.get('kind')!r}")
    # NTP midpoint: the gateway read its clock between our two reads.
    offset = (hello_at + ack_at) / 2.0 - float(ack["gateway_perf"])

    inflight = asyncio.Semaphore(spec.max_inflight)
    tasks: dict[int, asyncio.Task] = {}

    async def serve_one(header: dict, body: bytes, received: float) -> None:
        request_id = header["id"]
        enqueued = min(float(header["enqueued"]) + offset, received)
        request = _Request(
            method=header["method"],
            path=header["path"],
            headers=dict(header.get("headers") or {}),
            body=body,
            peer=header.get("peer", ""),
            ingress=(enqueued, received),
        )
        try:
            _route, handler = core.route(request)
            async with inflight:
                try:
                    response = await handler(request)
                except _HttpError as exc:
                    response = _error_response(exc.envelope)
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = _error_response(error_envelope_for(exc))
            if response.stream is None:
                await send_frame(
                    writer,
                    lock,
                    {
                        "kind": "response",
                        "id": request_id,
                        "status": response.status,
                        "content_type": response.content_type,
                        "headers": response.headers,
                        "replayable": response.replayable,
                    },
                    response.body,
                )
                return
            await send_frame(
                writer,
                lock,
                {
                    "kind": "stream-head",
                    "id": request_id,
                    "status": response.status,
                    "content_type": response.content_type,
                    "headers": response.headers,
                },
            )
            try:
                async for chunk in response.stream:
                    await send_frame(
                        writer, lock, {"kind": "chunk", "id": request_id}, chunk
                    )
            finally:
                # Cancelled relays must finalize the generator now —
                # batch streams mark their jobs retrieved in cleanup.
                await response.stream.aclose()
            await send_frame(writer, lock, {"kind": "stream-end", "id": request_id})
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # link is gone; the main loop is already exiting
        finally:
            tasks.pop(request_id, None)

    try:
        while True:
            try:
                header, body = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break  # gateway closed the link (shutdown or death)
            kind = header.get("kind")
            if kind == "request":
                received = clock.perf_counter()
                task = asyncio.create_task(serve_one(header, body, received))
                tasks[header["id"]] = task
            elif kind == "cancel":
                task = tasks.get(header.get("id"))
                if task is not None:
                    task.cancel()
            else:
                logger.warning("worker %d: unknown frame %r", spec.index, kind)
    finally:
        for task in list(tasks.values()):
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks.values(), return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, core.close)
