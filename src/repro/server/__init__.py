"""The broker as a network service: transport, ingestion, metrics.

The paper's broker is a *service* (§II-C): customers submit
requirements over a wire, and the broker continuously ingests
cross-cloud telemetry to keep its ``P̂/f̂/t̂`` database current.  This
package is that serving layer, stdlib-only:

- :mod:`repro.server.transport` — an asyncio HTTP server speaking the
  v2 envelope protocol (recommend / batch / jobs / ingest / metrics)
  with per-connection backpressure and graceful shutdown;
- :mod:`repro.server.ingest` — sharded telemetry ingestion:
  hash-partitioned shard workers owning private stores, merged into the
  serving store by lock-free snapshot publication;
- :mod:`repro.server.metrics` — Prometheus text-format export of
  engine-cache, job-table, ingest-shard and request-latency metrics;
- :mod:`repro.server.client` — the synchronous reference client.
"""

from repro.server.client import ServerClient, ServerError
from repro.server.ingest import (
    ExposureRecord,
    ShardedIngestor,
    record_from_dict,
    record_to_dict,
    records_from_jsonl,
    records_to_jsonl,
    shard_index,
)
from repro.server.metrics import (
    MetricsRegistry,
    ServerMetrics,
    parse_prometheus_text,
)
from repro.server.transport import (
    BrokerServer,
    ServerHandle,
    error_envelope_for,
    start_in_thread,
)

__all__ = [
    "BrokerServer",
    "ExposureRecord",
    "MetricsRegistry",
    "ServerClient",
    "ServerError",
    "ServerHandle",
    "ServerMetrics",
    "ShardedIngestor",
    "error_envelope_for",
    "parse_prometheus_text",
    "record_from_dict",
    "record_to_dict",
    "records_from_jsonl",
    "records_to_jsonl",
    "shard_index",
    "start_in_thread",
]
