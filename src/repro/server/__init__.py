"""The broker as a network service: transport, ingestion, metrics.

The paper's broker is a *service* (§II-C): customers submit
requirements over a wire, and the broker continuously ingests
cross-cloud telemetry to keep its ``P̂/f̂/t̂`` database current.  This
package is that serving layer, stdlib-only:

- :mod:`repro.server.transport` — the asyncio HTTP edge speaking the
  v2 envelope protocol (recommend / batch / jobs / ingest / metrics)
  with per-connection backpressure and graceful shutdown;
- :mod:`repro.server.core` — the frontend-agnostic serving core: route
  resolution and the envelope handlers over one broker session;
- :mod:`repro.server.gateway` / :mod:`repro.server.worker` /
  :mod:`repro.server.dispatch` — the multi-process mode (``repro serve
  --workers N``): one hardened gateway dispatching to a partitioned
  fleet of spawned worker processes over length-prefixed local sockets;
- :mod:`repro.server.ingest` — sharded telemetry ingestion:
  hash-partitioned shard workers owning private stores, merged into the
  serving store by lock-free snapshot publication;
- :mod:`repro.server.metrics` — Prometheus text-format export of
  engine-cache, job-table, ingest-shard and request-latency metrics;
- :mod:`repro.server.hardening` — idempotency-key replay, per-client
  token-bucket rate limiting and bearer-token auth, so retried POSTs
  execute at most once and untrusted traffic is bounded;
- :mod:`repro.server.client` — the synchronous reference client, with
  keyed safe retries, 429 honouring and a circuit breaker.
"""

from repro.server.client import (
    CircuitBreaker,
    CircuitOpenError,
    ServerClient,
    ServerError,
)
from repro.server.core import RequestCore, resolve_route
from repro.server.dispatch import (
    WorkerSpec,
    batch_routing_key,
    job_partition,
    partition_for,
    routing_key,
)
from repro.server.gateway import GatewayServer, WorkerUnavailable
from repro.server.hardening import (
    IDEMPOTENCY_KEY_HEADER,
    REPLAY_HEADER,
    IdempotencyStore,
    RateLimiter,
    authenticate,
    principal_for,
)
from repro.server.ingest import (
    ExposureRecord,
    ShardedIngestor,
    record_from_dict,
    record_to_dict,
    records_from_jsonl,
    records_to_jsonl,
    shard_index,
)
from repro.server.metrics import (
    MetricsRegistry,
    ServerMetrics,
    merge_expositions,
    parse_prometheus_text,
)
from repro.server.transport import (
    SERVED_ROUTES,
    BrokerServer,
    HttpEdge,
    ServerHandle,
    error_envelope_for,
    start_in_thread,
)

__all__ = [
    "IDEMPOTENCY_KEY_HEADER",
    "REPLAY_HEADER",
    "SERVED_ROUTES",
    "BrokerServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "ExposureRecord",
    "GatewayServer",
    "HttpEdge",
    "IdempotencyStore",
    "MetricsRegistry",
    "RateLimiter",
    "RequestCore",
    "ServerClient",
    "ServerError",
    "ServerHandle",
    "ServerMetrics",
    "ShardedIngestor",
    "WorkerSpec",
    "WorkerUnavailable",
    "authenticate",
    "batch_routing_key",
    "error_envelope_for",
    "job_partition",
    "merge_expositions",
    "parse_prometheus_text",
    "partition_for",
    "principal_for",
    "record_from_dict",
    "record_to_dict",
    "records_from_jsonl",
    "records_to_jsonl",
    "resolve_route",
    "routing_key",
    "shard_index",
    "start_in_thread",
]
