"""The broker as a network service: transport, ingestion, metrics.

The paper's broker is a *service* (§II-C): customers submit
requirements over a wire, and the broker continuously ingests
cross-cloud telemetry to keep its ``P̂/f̂/t̂`` database current.  This
package is that serving layer, stdlib-only:

- :mod:`repro.server.transport` — an asyncio HTTP server speaking the
  v2 envelope protocol (recommend / batch / jobs / ingest / metrics)
  with per-connection backpressure and graceful shutdown;
- :mod:`repro.server.ingest` — sharded telemetry ingestion:
  hash-partitioned shard workers owning private stores, merged into the
  serving store by lock-free snapshot publication;
- :mod:`repro.server.metrics` — Prometheus text-format export of
  engine-cache, job-table, ingest-shard and request-latency metrics;
- :mod:`repro.server.hardening` — idempotency-key replay, per-client
  token-bucket rate limiting and bearer-token auth, so retried POSTs
  execute at most once and untrusted traffic is bounded;
- :mod:`repro.server.client` — the synchronous reference client, with
  keyed safe retries, 429 honouring and a circuit breaker.
"""

from repro.server.client import (
    CircuitBreaker,
    CircuitOpenError,
    ServerClient,
    ServerError,
)
from repro.server.hardening import (
    IDEMPOTENCY_KEY_HEADER,
    REPLAY_HEADER,
    IdempotencyStore,
    RateLimiter,
    authenticate,
    principal_for,
)
from repro.server.ingest import (
    ExposureRecord,
    ShardedIngestor,
    record_from_dict,
    record_to_dict,
    records_from_jsonl,
    records_to_jsonl,
    shard_index,
)
from repro.server.metrics import (
    MetricsRegistry,
    ServerMetrics,
    parse_prometheus_text,
)
from repro.server.transport import (
    SERVED_ROUTES,
    BrokerServer,
    ServerHandle,
    error_envelope_for,
    start_in_thread,
)

__all__ = [
    "IDEMPOTENCY_KEY_HEADER",
    "REPLAY_HEADER",
    "SERVED_ROUTES",
    "BrokerServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "ExposureRecord",
    "IdempotencyStore",
    "MetricsRegistry",
    "RateLimiter",
    "ServerClient",
    "ServerError",
    "ServerHandle",
    "ServerMetrics",
    "ShardedIngestor",
    "authenticate",
    "error_envelope_for",
    "parse_prometheus_text",
    "principal_for",
    "record_from_dict",
    "record_to_dict",
    "records_from_jsonl",
    "records_to_jsonl",
    "shard_index",
    "start_in_thread",
]
