"""Sharded telemetry ingestion: the broker's write path at scale.

The paper's broker continuously ingests cross-cloud telemetry to keep
its ``P̂/f̂/t̂`` database fresh (§II-C).  A single
:class:`~repro.broker.telemetry.TelemetryStore` serializes every
recording call against every estimate query; this module splits the
write path off the read path:

- incoming records are hash-partitioned by ``(provider,
  component_kind)`` across N shard workers, each owning a *private*
  store that nothing else touches;
- estimate queries keep reading the broker's serving store, which the
  pipeline refreshes by merging shard snapshots and publishing the
  result with a single atomic reference swap
  (:meth:`TelemetryStore.adopt`) — readers never block on ingestion and
  never observe a half-merged state.

Because the partition key equals the store's accumulation key, every
record for one component class flows through exactly one shard in
submission order, so a drained pipeline reproduces single-store
ingestion **bit-for-bit** (asserted in ``tests/test_server_ingest.py``).

Two backends share one worker loop: ``thread`` (default — cheap,
in-process, ideal for isolating the serving store) and ``process``
(``multiprocessing`` — true parallelism for the parse-heavy JSONL path,
since workers decode their own lines; see
``benchmarks/bench_server_throughput.py`` for the scaling sweep).
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.broker.telemetry import TelemetryStore
from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.errors import BrokerError, ValidationError

#: Supported shard-worker backends.
INGEST_BACKENDS = ("thread", "process")

#: Wire kinds of one telemetry record line.
RECORD_KINDS = ("exposure", "failure", "repair", "failover")


# -- the record wire format -------------------------------------------------

@dataclass(frozen=True)
class ExposureRecord:
    """A fleet-exposure observation: N components watched for a span."""

    provider: str
    component_kind: str
    node_count: int
    horizon_minutes: float


#: What the pipeline routes: exposure registrations or resource events.
TelemetryRecord = ExposureRecord | ResourceEvent


def record_to_dict(record: TelemetryRecord) -> dict[str, Any]:
    """Serialize one telemetry record to a JSON-safe dict."""
    if isinstance(record, ExposureRecord):
        return {
            "kind": "exposure",
            "provider": record.provider,
            "component_kind": record.component_kind,
            "node_count": record.node_count,
            "horizon_minutes": record.horizon_minutes,
        }
    if isinstance(record, ResourceEvent):
        return {
            "kind": record.kind.value,
            "provider": record.provider,
            "component_kind": record.component_kind,
            "resource_id": record.resource_id,
            "time_minutes": record.time_minutes,
            "duration_minutes": record.duration_minutes,
        }
    raise ValidationError(
        f"cannot serialize telemetry record of type {type(record).__name__}"
    )


def record_from_dict(payload: Mapping[str, Any]) -> TelemetryRecord:
    """Deserialize one telemetry record; unknown kinds are rejected."""
    kind = payload.get("kind")
    if kind == "exposure":
        allowed = {
            "kind", "provider", "component_kind", "node_count",
            "horizon_minutes",
        }
        _check_keys(payload, allowed)
        return ExposureRecord(
            provider=payload["provider"],
            component_kind=payload["component_kind"],
            node_count=int(payload["node_count"]),
            horizon_minutes=float(payload["horizon_minutes"]),
        )
    if kind in (member.value for member in ResourceEventKind):
        allowed = {
            "kind", "provider", "component_kind", "resource_id",
            "time_minutes", "duration_minutes",
        }
        _check_keys(payload, allowed)
        return ResourceEvent(
            time_minutes=float(payload.get("time_minutes", 0.0)),
            provider=payload["provider"],
            component_kind=payload["component_kind"],
            resource_id=payload.get("resource_id", "unknown"),
            kind=ResourceEventKind(kind),
            duration_minutes=float(payload.get("duration_minutes", 0.0)),
        )
    raise ValidationError(
        f"unknown telemetry record kind {kind!r}; valid: {list(RECORD_KINDS)}"
    )


def record_to_json(record: TelemetryRecord) -> str:
    """One compact JSONL line for a record."""
    return json.dumps(record_to_dict(record), sort_keys=True)


def records_to_jsonl(records: Iterable[TelemetryRecord]) -> str:
    """A whole trace as JSON lines (one record per line)."""
    return "\n".join(record_to_json(record) for record in records) + "\n"


def records_from_jsonl(text: str) -> list[TelemetryRecord]:
    """Parse a JSONL trace; errors carry the 1-based line number."""
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(record_from_dict(json.loads(line)))
        except (json.JSONDecodeError, ValidationError, KeyError, TypeError) as exc:
            raise ValidationError(
                f"invalid telemetry record on line {number}: {exc}"
            ) from exc
    return records


def _check_keys(payload: Mapping[str, Any], allowed: set[str]) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ValidationError(
            f"unknown telemetry record keys: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


# -- partitioning -----------------------------------------------------------

def shard_index(provider: str, component_kind: str, num_shards: int) -> int:
    """Stable hash partition for one component class.

    CRC32 rather than ``hash()`` so the mapping is identical across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak
    into shard assignment).
    """
    key = f"{provider}\x1f{component_kind}".encode("utf-8")
    return zlib.crc32(key) % num_shards


def _string_field(line: str, name: str) -> str | None:
    """Cheaply extract ``"name": "value"`` from a compact JSON line.

    The fast path for routing raw JSONL without a full parse; returns
    None when the shape is unexpected (caller falls back to
    ``json.loads``).  Escapes never appear in provider/kind names we
    emit, and any line containing them simply takes the slow path.
    """
    needle = f'"{name}"'
    start = line.find(needle)
    if start < 0:
        return None
    cursor = start + len(needle)
    while cursor < len(line) and line[cursor] in ": \t":
        cursor += 1
    if cursor >= len(line) or line[cursor] != '"':
        return None
    end = line.find('"', cursor + 1)
    if end < 0 or "\\" in line[cursor + 1:end]:
        return None
    return line[cursor + 1:end]


def _route_line(line: str, num_shards: int, number: int) -> int:
    """Shard index for one raw JSONL line (fast extract, slow fallback)."""
    provider = _string_field(line, "provider")
    kind = _string_field(line, "component_kind")
    if provider is None or kind is None:
        try:
            payload = json.loads(line)
            provider = payload["provider"]
            kind = payload["component_kind"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValidationError(
                f"telemetry line {number} has no routable "
                f"provider/component_kind: {exc}"
            ) from exc
    return shard_index(provider, kind, num_shards)


# -- the shared worker loop -------------------------------------------------

def _apply_payload(store: TelemetryStore, payload: Mapping[str, Any]) -> None:
    """Apply one wire-form record dict to a store."""
    record = record_from_dict(payload)
    if isinstance(record, ExposureRecord):
        store.register_exposure(
            record.provider,
            record.component_kind,
            record.node_count,
            record.horizon_minutes,
        )
    else:
        store.ingest((record,))


def _shard_worker(in_queue, out_queue) -> None:
    """One shard's loop: drain commands, own a private store.

    Identical code runs as a thread target and as a child-process
    target; only the queue implementations differ.  Commands:

    - ``("lines", [str, ...])`` — parse and apply raw JSONL lines;
    - ``("payloads", [dict, ...])`` — apply pre-parsed record dicts;
    - ``("flush", seq)`` — emit ``(seq, ingested, rejected, snapshot)``
      for everything since the last flush and reset the private store
      (the echoed sequence number lets the router discard-merge late
      replies from flushes that timed out);
    - ``("stop", None)`` — exit the loop.

    A malformed or invalid record is *counted* (rejected) rather than
    raised, so one bad line cannot kill a shard mid-stream; routers
    surface the count through flush replies and ``/metrics``.
    """
    store = TelemetryStore()
    ingested = 0
    rejected = 0
    while True:
        command, payload = in_queue.get()
        if command == "stop":
            break
        if command == "flush":
            out_queue.put((payload, ingested, rejected, store.snapshot()))
            store = TelemetryStore()
            ingested = 0
            rejected = 0
            continue
        for item in payload:
            try:
                if command == "lines":
                    _apply_payload(store, json.loads(item))
                else:
                    _apply_payload(store, item)
                ingested += 1
            except (json.JSONDecodeError, ValidationError, KeyError, TypeError):
                rejected += 1


class _ThreadShard:
    """A shard worker hosted on a daemon thread (queue.Queue transport)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.in_queue: queue.Queue = queue.Queue()
        self.out_queue: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=_shard_worker,
            args=(self.in_queue, self.out_queue),
            name=f"ingest-shard-{index}",
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)


class _ProcessShard:
    """A shard worker hosted on a child process (multiprocessing queues)."""

    def __init__(self, index: int) -> None:
        self.index = index
        # Spawn, never fork (REP008): the server that builds shards is
        # already threaded, and forked children inherit mid-flight locks.
        context = multiprocessing.get_context("spawn")
        self.in_queue = context.Queue()
        self.out_queue = context.Queue()
        self._process = context.Process(
            target=_shard_worker,
            args=(self.in_queue, self.out_queue),
            name=f"ingest-shard-{index}",
            daemon=True,
        )
        self._process.start()

    def join(self, timeout: float) -> None:
        self._process.join(timeout)


@dataclass
class ShardStats:
    """Counters for one shard, as of the last flush."""

    submitted: int = 0
    ingested: int = 0
    rejected: int = 0


class ShardedIngestor:
    """Hash-partitioned telemetry ingestion in front of a serving store.

    ``submit``/``submit_jsonl`` enqueue records onto shard workers and
    return immediately; ``flush`` drains every shard and publishes the
    merged state into the serving store via the lock-free snapshot swap
    described in the module docstring.  Pass ``merge_interval`` to run
    that merge on a timer (the server does), or call :meth:`flush`
    explicitly for deterministic tests.

    The serving store must not be written to directly while the
    ingestor is open — route all recording through the pipeline (or do
    it before construction); reads are always safe.
    """

    def __init__(
        self,
        serving_store: TelemetryStore,
        num_shards: int = 4,
        *,
        backend: str = "thread",
        merge_interval: float | None = None,
        batch_size: int = 2048,
        flush_timeout: float = 60.0,
    ) -> None:
        if num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {num_shards!r}"
            )
        if batch_size < 1:
            raise ValidationError(
                f"batch_size must be >= 1, got {batch_size!r}"
            )
        if flush_timeout <= 0.0:
            raise ValidationError(
                f"flush_timeout must be > 0, got {flush_timeout!r}"
            )
        if backend not in INGEST_BACKENDS:
            raise ValidationError(
                f"unknown ingest backend {backend!r}; valid: {INGEST_BACKENDS}"
            )
        if merge_interval is not None and merge_interval <= 0.0:
            raise ValidationError(
                f"merge_interval must be > 0, got {merge_interval!r}"
            )
        self.serving_store = serving_store
        self.num_shards = num_shards
        self.backend = backend
        self.batch_size = batch_size
        self.flush_timeout = flush_timeout
        shard_type = _ThreadShard if backend == "thread" else _ProcessShard
        self._shards = [shard_type(index) for index in range(num_shards)]
        self._stats = [ShardStats() for _ in range(num_shards)]
        self._merges = 0
        self._flush_seq = 0
        self._closed = False
        self._lock = threading.Lock()
        self._stop_timer = threading.Event()
        self._timer: threading.Thread | None = None
        if merge_interval is not None:
            self._timer = threading.Thread(
                target=self._merge_periodically,
                args=(merge_interval,),
                name="ingest-merger",
                daemon=True,
            )
            self._timer.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ShardedIngestor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Reject new submissions, final-flush, stop every worker.

        Idempotent.  ``_closed`` flips *before* the final drain so no
        submission can be acknowledged after it — an ack would otherwise
        race the drain and its records would die unflushed in a
        stopping worker.  Workers are told to stop even when the final
        flush fails (e.g. a dead shard timing out), so close never
        strands the healthy ones.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stop_timer.set()
        if self._timer is not None:
            self._timer.join(timeout=10.0)
        try:
            with self._lock:
                self._drain_locked()
        finally:
            with self._lock:
                for shard in self._shards:
                    shard.in_queue.put(("stop", None))
            for shard in self._shards:
                shard.join(timeout=10.0)

    # -- submission --------------------------------------------------------

    def submit(self, records: Iterable[TelemetryRecord]) -> int:
        """Route parsed records to their shards; returns records queued."""
        batches: dict[int, list[dict[str, Any]]] = {}
        for record in records:
            payload = record_to_dict(record)
            index = shard_index(
                payload["provider"], payload["component_kind"], self.num_shards
            )
            batches.setdefault(index, []).append(payload)
        return self._enqueue("payloads", batches)

    def submit_jsonl(self, text_or_lines: str | Sequence[str]) -> int:
        """Route raw JSONL lines; shard workers do the parsing.

        Routing reads only the ``provider``/``component_kind`` fields
        (cheap string scan, full parse as fallback); a line that cannot
        be routed at all raises :class:`ValidationError` with its line
        number, before anything is enqueued.
        """
        if isinstance(text_or_lines, str):
            lines = text_or_lines.splitlines()
        else:
            lines = list(text_or_lines)
        batches: dict[int, list[str]] = {}
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            index = _route_line(line, self.num_shards, number)
            batches.setdefault(index, []).append(line)
        return self._enqueue("lines", batches)

    def _enqueue(self, command: str, batches: Mapping[int, list]) -> int:
        with self._lock:
            if self._closed:
                raise ValidationError("ingestor is closed; no further records")
            for index, batch in batches.items():
                # Chunked hand-off so workers start on the head of a
                # large submission while the tail is still in transit
                # (matters for the process backend, where each chunk is
                # pickled through a pipe).
                for start in range(0, len(batch), self.batch_size):
                    chunk = batch[start:start + self.batch_size]
                    self._shards[index].in_queue.put((command, chunk))
                self._stats[index].submitted += len(batch)
        return sum(len(batch) for batch in batches.values())

    # -- merging -----------------------------------------------------------

    def flush(self) -> int:
        """Drain every shard and publish the merged serving store.

        Blocks until all records submitted before this call are applied
        (the flush command queues FIFO behind them).  The merge runs on
        the caller's thread against a private copy, then lands in one
        atomic swap; estimate readers never wait.  Returns the number
        of records merged in.

        A shard that does not answer within ``flush_timeout`` seconds
        (a crashed worker, or a worker more than a timeout behind on
        its backlog) raises :class:`BrokerError` instead of wedging the
        pipeline — and, transitively, server shutdown — forever.
        """
        with self._lock:
            if self._closed:
                return 0
            return self._drain_locked()

    def _drain_locked(self) -> int:
        """The flush body; the caller holds ``_lock``."""
        self._flush_seq += 1
        seq = self._flush_seq
        for shard in self._shards:
            shard.in_queue.put(("flush", seq))
        deltas: list[TelemetryStore] = []
        total = 0
        silent: list[int] = []
        for shard, stats in zip(self._shards, self._stats):
            answered = False
            while not answered:
                try:
                    reply_seq, ingested, rejected, snapshot = (
                        shard.out_queue.get(timeout=self.flush_timeout)
                    )
                except queue.Empty:
                    silent.append(shard.index)
                    break
                stats.ingested += ingested
                stats.rejected += rejected
                total += ingested
                if snapshot["components"]:
                    deltas.append(TelemetryStore.from_snapshot(snapshot))
                # A stale sequence is a late reply from a flush that
                # timed out: its delta is kept above (never lost), and
                # we keep waiting for the current answer.
                answered = reply_seq == seq
        if deltas:
            # Publish what the responsive shards handed over even when
            # one timed out — their private stores already reset, so
            # skipping the adopt would drop their deltas on the floor.
            # An all-empty drain (the idle periodic-merge case) skips
            # the serving-store copy entirely.
            merged_store = self.serving_store.copy()
            for delta in deltas:
                merged_store.merge(delta)
            self.serving_store.adopt(merged_store)
            self._merges += 1
        if silent:
            raise BrokerError(
                f"ingest shard(s) {silent} did not answer a flush "
                f"within {self.flush_timeout}s; workers may have died "
                "or are too far behind (responsive shards were merged)"
            )
        return total

    def _merge_periodically(self, interval: float) -> None:
        import logging

        while not self._stop_timer.wait(interval):
            try:
                self.flush()
            except BrokerError as exc:
                # A dead shard: keep the timer alive so healthy shards
                # still merge; the condition also shows in /metrics.
                logging.getLogger("repro.server").warning(
                    "periodic telemetry merge failed: %s", exc
                )

    # -- observability -----------------------------------------------------

    def pending(self) -> tuple[int, ...]:
        """Approximate queued-command depth per shard.

        -1 where the platform cannot answer (``multiprocessing`` queues
        raise ``NotImplementedError`` from ``qsize()`` on macOS).
        """
        depths = []
        for shard in self._shards:
            try:
                depths.append(shard.in_queue.qsize())
            except NotImplementedError:
                depths.append(-1)
        return tuple(depths)

    def shard_stats(self) -> tuple[ShardStats, ...]:
        """Per-shard counters (records *ingested* lag until a flush)."""
        with self._lock:
            return tuple(
                ShardStats(s.submitted, s.ingested, s.rejected)
                for s in self._stats
            )

    @property
    def merges(self) -> int:
        """How many snapshot merges have been published."""
        return self._merges

    def metrics(self) -> dict[str, object]:
        """JSON-safe counters, shaped for the ``/metrics`` exporter."""
        stats = self.shard_stats()
        return {
            "backend": self.backend,
            "num_shards": self.num_shards,
            "merges": self.merges,
            "shards": [
                {
                    "shard": index,
                    "submitted": entry.submitted,
                    "ingested": entry.ingested,
                    "rejected": entry.rejected,
                    "pending": depth,
                }
                for index, (entry, depth) in enumerate(
                    zip(stats, self.pending())
                )
            ],
        }
