"""Protocol hardening: idempotency replay, rate limiting, token auth.

PR 5 fixed a real data-corruption bug — a retried ``POST /v2/jobs``
after a lost response duplicated the job — by *forbidding* the client
from retrying non-idempotent requests after a response-phase failure.
That band-aid left every caller holding the bag whenever a keep-alive
connection dropped mid-response.  This module is the production fix,
plus the two other guards the serving layer needs before it can face
untrusted marketplace traffic instead of benchmark fleets:

- :class:`IdempotencyStore` — a bounded-LRU replay table keyed by
  ``(principal, route, key)``.  The first request carrying an
  ``Idempotency-Key`` executes and its response is recorded; any retry
  with the same key replays the recorded response **byte-identically**
  without re-executing the handler.  Concurrent duplicates race to one
  execution: the first writer claims the key, later arrivals await its
  outcome.  With replay in place, the client may retry *every* method
  safely — the PR-5 restriction is lifted in
  :class:`~repro.server.client.ServerClient`.
- :class:`RateLimiter` — per-principal token buckets.  A request that
  finds its bucket empty is answered ``429`` with a ``Retry-After``
  hint by the transport; the bucket refills continuously at ``rate``
  requests/second up to ``burst``.
- :func:`authenticate` — shared-token bearer auth: missing or malformed
  credentials are ``401``, a wrong token is ``403``, both as structured
  :class:`~repro.broker.envelope.ErrorEnvelope` responses.

The store is **event-loop confined**: ``begin``/``commit``/``abandon``
run only on the transport's asyncio loop (waiters are plain
``asyncio.Future``\\ s), so it needs no lock.  The rate limiter and the
authenticator are also called from the loop but keep a lock so tests
and future multi-loop fronts can drive them directly.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.broker.envelope import ErrorEnvelope
from repro.errors import ValidationError
from repro.obs import clock

#: Response header stamped on replayed responses so clients and the
#: conformance suite can tell a replay from a re-execution.
REPLAY_HEADER = "Idempotency-Replayed"

#: Request header carrying the client's idempotency key.
IDEMPOTENCY_KEY_HEADER = "Idempotency-Key"

#: Longest accepted idempotency key (a DoS guard: keys are dict keys).
MAX_IDEMPOTENCY_KEY_LENGTH = 256


# -- idempotency ------------------------------------------------------------

@dataclass
class StoredResponse:
    """One recorded response, byte-exact: status + type + body + headers."""

    status: int
    content_type: str
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)


#: A replay-table key: (principal, route, discriminator, key/path).
ReplayKey = tuple[str, str, str, str]


class IdempotencyStore:
    """Bounded-LRU replay table deduplicating keyed requests.

    Entries are either a :class:`StoredResponse` (completed — replay
    it) or an ``asyncio.Future`` (in flight — await the first writer's
    outcome).  Only completed entries count against ``capacity``;
    in-flight claims are never evicted, so a slow leader cannot be
    yanked out from under its waiters.

    Failed executions are *not* recorded: the claim is abandoned and
    waiters re-enter the claim race, so a transient error never pins a
    poisoned response under the client's key.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValidationError(
                f"idempotency capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[ReplayKey, StoredResponse | asyncio.Future]"
        self._entries = OrderedDict()
        self.replays = 0
        self.evictions = 0
        self.stored = 0

    def __len__(self) -> int:
        """Completed (replayable) entries currently held."""
        count = 0
        for entry in self._entries.values():
            if isinstance(entry, StoredResponse):
                count += 1
        return count

    def begin(
        self, key: ReplayKey
    ) -> tuple[str, "StoredResponse | asyncio.Future"]:
        """Open one keyed execution: ``(action, entry)``.

        - ``("replay", stored)`` — a completed response exists; replay
          it (the entry is refreshed to most-recently-used).
        - ``("wait", future)`` — another request holds the key; await
          the future.  A :class:`StoredResponse` result means replay
          it; ``None`` means the leader failed — call :meth:`begin`
          again to race for the claim.
        - ``("claim", future)`` — the caller is now the leader and must
          finish with exactly one of :meth:`commit` or :meth:`abandon`.
        """
        entry = self._entries.get(key)
        if isinstance(entry, StoredResponse):
            self._entries.move_to_end(key)
            self.replays += 1
            return "replay", entry
        if entry is not None:
            return "wait", entry
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._entries[key] = future
        return "claim", future

    def commit(
        self, key: ReplayKey, future: asyncio.Future, stored: StoredResponse
    ) -> None:
        """Record the leader's response and wake every waiter with it."""
        self._entries[key] = stored
        self._entries.move_to_end(key)
        self.stored += 1
        self._evict()
        future.set_result(stored)

    def abandon(self, key: ReplayKey, future: asyncio.Future) -> None:
        """Drop the leader's claim (failed execution); waiters re-race."""
        if self._entries.get(key) is future:
            del self._entries[key]
        future.set_result(None)

    def _evict(self) -> None:
        while len(self) > self.capacity:
            for key, entry in self._entries.items():
                if isinstance(entry, StoredResponse):
                    del self._entries[key]
                    self.evictions += 1
                    break

    def metrics(self) -> dict[str, int]:
        """JSON-safe counters for ``/metrics`` and tests."""
        return {
            "entries": len(self),
            "replays": self.replays,
            "evictions": self.evictions,
            "stored": self.stored,
        }


# -- rate limiting ----------------------------------------------------------

@dataclass
class _Bucket:
    tokens: float
    updated: float


class RateLimiter:
    """Per-principal token buckets: ``rate`` req/s refill, ``burst`` cap.

    :meth:`check` consumes one token and returns ``0.0`` when the
    request may proceed, or the seconds until a token will be available
    (the transport's ``Retry-After`` hint) when the bucket is empty.
    Buckets are held in a bounded LRU so an open server cannot be
    memory-exhausted by principal churn; an evicted principal simply
    starts over with a full bucket.
    """

    def __init__(
        self,
        rate: float,
        burst: int | None = None,
        *,
        max_principals: int = 4096,
        clock_fn: Callable[[], float] = clock.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValidationError(f"rate must be > 0 req/s, got {rate!r}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValidationError(f"burst must be >= 1, got {burst!r}")
        self.max_principals = max_principals
        self._clock = clock_fn
        self._buckets: "OrderedDict[str, _Bucket]" = OrderedDict()
        self._lock = threading.Lock()
        self.limited = 0

    def __len__(self) -> int:
        """Distinct principals with live buckets (a /metrics gauge)."""
        with self._lock:
            return len(self._buckets)

    def check(self, principal: str) -> float:
        """Try to take one token; 0.0 = allowed, else retry-after seconds."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(principal)
            if bucket is None:
                bucket = _Bucket(tokens=self.burst, updated=now)
                self._buckets[principal] = bucket
                while len(self._buckets) > self.max_principals:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(principal)
                bucket.tokens = min(
                    self.burst,
                    bucket.tokens + (now - bucket.updated) * self.rate,
                )
                bucket.updated = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return 0.0
            self.limited += 1
            return (1.0 - bucket.tokens) / self.rate


# -- token auth -------------------------------------------------------------

def principal_for(
    headers: Mapping[str, str], peer: str, auth_enabled: bool
) -> str:
    """The rate-limit/replay principal for one request.

    With auth enabled, the presented bearer token (hashed — the
    principal string appears in logs and metrics, the credential must
    not) identifies the client; otherwise the peer address does.
    """
    if auth_enabled:
        token = _bearer_token(headers)
        if token is not None:
            digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
            return f"token:{digest[:16]}"
    return f"addr:{peer or 'unknown'}"


def _bearer_token(headers: Mapping[str, str]) -> str | None:
    header = headers.get("authorization")
    if header is None:
        return None
    scheme, _, credential = header.partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        return None
    return credential.strip()


def authenticate(
    expected: str, headers: Mapping[str, str]
) -> ErrorEnvelope | None:
    """Check a request's bearer token against the server's.

    Returns ``None`` on success, a ``401`` envelope when no (or a
    malformed) credential was presented, and a ``403`` envelope when a
    well-formed token does not match.  Comparison is constant-time.
    """
    presented = _bearer_token(headers)
    if presented is None:
        return ErrorEnvelope(
            401,
            "unauthorized",
            "this server requires token auth; send "
            "'Authorization: Bearer <token>'",
        )
    if not hmac.compare_digest(
        presented.encode("utf-8"), expected.encode("utf-8")
    ):
        return ErrorEnvelope(
            403, "forbidden", "the presented bearer token is not valid"
        )
    return None
