"""The serving core: route resolution and v2 envelope handlers.

PR 10 split the monolithic ``transport.py`` into two layers so the same
request-handling machinery can run behind *any* frontend:

- this module — the wire-format primitives (:class:`_Request`,
  :class:`_Response`, :func:`error_envelope_for`), the pure route
  resolver (:func:`resolve_route`) and :class:`RequestCore`, which owns
  a :class:`~repro.broker.api.BrokerSession`, a
  :class:`~repro.server.ingest.ShardedIngestor` and the route handlers;
- :mod:`repro.server.transport` — the asyncio socket frontend
  (:class:`~repro.server.transport.HttpEdge`) plus the in-process
  :class:`~repro.server.transport.BrokerServer` composing both.

A :class:`RequestCore` is frontend-agnostic on purpose: the in-process
server routes HTTP requests straight into it, while
:mod:`repro.server.worker` runs one per worker process and feeds it
requests received over the gateway's dispatch protocol.  Requests that
crossed a process boundary carry an ``ingress`` timestamp pair; traced
handlers turn it into ``queue_wait``/``dispatch`` spans under the
request root, so per-phase latency attribution survives the hop.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping
from urllib.parse import parse_qs

from repro.broker.envelope import (
    ENVELOPE_SCHEMA_VERSION,
    ErrorEnvelope,
    RecommendEnvelope,
)
from repro.broker.service import BrokerService
from repro.errors import (
    BrokerError,
    InsufficientTelemetryError,
    ReproError,
    UnknownNameError,
    ValidationError,
)
from repro.obs import clock
from repro.obs.profile import maybe_profile, profile_summary
from repro.obs.trace import SpanContext, Tracer, TraceStore, parse_traceparent
from repro.server.ingest import ShardedIngestor
from repro.server.metrics import ServerMetrics

logger = logging.getLogger("repro.server")

#: Reason phrases for the statuses this server emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Response header carrying the request's trace id when tracing is on.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Every (method, route-pattern) pair this server serves — the single
#: source of truth tests assert client retry policy against: a method
#: appears in :data:`~repro.server.client.ServerClient.IDEMPOTENT_METHODS`
#: only if every route serving it really is idempotent.
SERVED_ROUTES: tuple[tuple[str, str], ...] = (
    ("POST", "/v2/recommend"),
    ("POST", "/v2/batch"),
    ("POST", "/v2/jobs"),
    ("GET", "/v2/jobs/{id}"),
    ("GET", "/v2/jobs/{id}/result"),
    ("POST", "/v2/ingest"),
    ("POST", "/v2/ingest/flush"),
    ("GET", "/v2/traces"),
    ("GET", "/v2/traces/{id}"),
    ("GET", "/metrics"),
    ("GET", "/healthz"),
)

#: Routes accepting an explicit ``Idempotency-Key`` (header or envelope
#: field); ``job-result`` additionally replays implicitly, keyed by path.
KEYED_ROUTES = frozenset({"recommend", "jobs", "ingest"})


def error_envelope_for(
    exc: BaseException, request_id: str | None = None
) -> ErrorEnvelope:
    """Map an exception to its wire form (status + stable error slug)."""
    if isinstance(exc, UnknownNameError):
        return ErrorEnvelope(404, "unknown-name", str(exc), request_id)
    if isinstance(exc, InsufficientTelemetryError):
        return ErrorEnvelope(422, "insufficient-telemetry", str(exc), request_id)
    if isinstance(exc, ValidationError):
        return ErrorEnvelope(400, "validation-error", str(exc), request_id)
    if isinstance(exc, BrokerError):
        return ErrorEnvelope(400, "broker-error", str(exc), request_id)
    if isinstance(exc, ReproError):
        return ErrorEnvelope(400, "error", str(exc), request_id)
    # Unexpected failure: log the traceback server-side, never wire it.
    logger.exception("internal error serving request", exc_info=exc)
    return ErrorEnvelope(
        500, "internal-error",
        f"internal server error ({type(exc).__name__})", request_id,
    )


class _HttpError(Exception):
    """Internal: short-circuit a request with a ready error envelope."""

    def __init__(self, envelope: ErrorEnvelope) -> None:
        super().__init__(envelope.message)
        self.envelope = envelope


@dataclass
class _Request:
    """One parsed HTTP request.

    ``ingress`` is set only on requests that crossed the gateway →
    worker process boundary: ``(enqueued, received)`` perf-counter
    timestamps *in the receiving process's clock* (the dispatch
    handshake estimates the cross-process offset — see
    :mod:`repro.server.dispatch`).  Traced handlers back-date the
    request root to ``enqueued`` and record ``queue_wait``/``dispatch``
    child spans from the pair.
    """

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    peer: str = ""
    ingress: tuple[float, float] | None = None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class _Response:
    """One response: either a complete body or an async chunk stream.

    ``replayable`` lets a handler override the idempotency store's
    default commit policy (2xx on keyed routes): ``True`` forces a
    response to be recorded (e.g. a job's *terminal* error — that error
    IS the result and must replay), ``False`` forbids it, ``None``
    defers to the policy.
    """

    status: int
    body: bytes = b""
    content_type: str = _JSON
    stream: AsyncIterator[bytes] | None = None
    headers: dict[str, str] = field(default_factory=dict)
    replayable: bool | None = None


def _json_response(status: int, payload: Mapping[str, Any] | str) -> _Response:
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _Response(status=status, body=body)


def _error_response(envelope: ErrorEnvelope) -> _Response:
    return _json_response(envelope.status, envelope.to_json())


# -- route resolution --------------------------------------------------------

#: Exact-match (method, path) -> route name; parameterised routes
#: (jobs, traces) are resolved by prefix in :func:`resolve_route`.
_ROUTE_TABLE: dict[tuple[str, str], str] = {
    ("POST", "/v2/recommend"): "recommend",
    ("POST", "/v2/batch"): "batch",
    ("POST", "/v2/jobs"): "jobs",
    ("POST", "/v2/ingest"): "ingest",
    ("POST", "/v2/ingest/flush"): "ingest-flush",
    ("GET", "/v2/traces"): "traces",
    ("GET", "/metrics"): "metrics",
    ("GET", "/healthz"): "healthz",
}

_KNOWN_PATHS = sorted(
    {path for _, path in _ROUTE_TABLE}
    | {"/v2/jobs/{id}", "/v2/jobs/{id}/result", "/v2/traces/{id}"}
)


def _method_not_allowed_envelope(method: str, raw_path: str) -> ErrorEnvelope:
    return ErrorEnvelope(
        405, "method-not-allowed",
        f"{method} is not supported on {raw_path}",
    )


def _unknown_route_envelope(raw_path: str) -> ErrorEnvelope:
    return ErrorEnvelope(
        404, "unknown-route",
        f"no route for {raw_path!r}; available: {_KNOWN_PATHS}",
    )


def resolve_route(
    method: str, raw_path: str
) -> tuple[str, str | None, ErrorEnvelope | None]:
    """Classify a request: ``(route, path parameter, error envelope)``.

    Pure — no handlers involved — so the gateway can route a request to
    its worker partition (and answer 404/405 locally, byte-identical to
    the in-process server) without constructing a serving core.  Routes
    on the path component only; query strings are accepted (and
    ignored) on every endpoint, per standard request-target handling.
    """
    path = raw_path.split("?", 1)[0].rstrip("/") or "/"
    if (method, path) in _ROUTE_TABLE:
        return _ROUTE_TABLE[(method, path)], None, None
    if path.startswith("/v2/traces/"):
        trace_id = path[len("/v2/traces/"):]
        if "/" not in trace_id:
            if method == "GET":
                return "trace", trace_id, None
            return (
                "unmatched", None,
                _method_not_allowed_envelope(method, raw_path),
            )
        return "unmatched", None, _unknown_route_envelope(raw_path)
    if path.startswith("/v2/jobs/"):
        tail = path[len("/v2/jobs/"):]
        if tail.endswith("/result"):
            job_id = tail[: -len("/result")]
            if "/" not in job_id:
                if method == "GET":
                    return "job-result", job_id, None
                return (
                    "unmatched", None,
                    _method_not_allowed_envelope(method, raw_path),
                )
        elif "/" not in tail:
            if method == "GET":
                return "job", tail, None
            return (
                "unmatched", None,
                _method_not_allowed_envelope(method, raw_path),
            )
        # Deeper job subpaths are unknown routes, not method errors.
        return "unmatched", None, _unknown_route_envelope(raw_path)
    if any(path == known for _, known in _ROUTE_TABLE):
        return "unmatched", None, _method_not_allowed_envelope(method, raw_path)
    return "unmatched", None, _unknown_route_envelope(raw_path)


def _error_handler(envelope: ErrorEnvelope):
    async def handler(request: _Request) -> _Response:
        raise _HttpError(envelope)

    return handler


class RequestCore:
    """The frontend-agnostic serving core over one broker.

    Owns a :class:`~repro.broker.api.BrokerSession` (the cross-request
    engine cache and job table), a
    :class:`~repro.server.ingest.ShardedIngestor` over the broker's
    serving telemetry store, and a :class:`ServerMetrics` registry.
    :meth:`route` resolves a request to ``(route name, async handler)``;
    frontends own everything around that call — sockets, hardening,
    request accounting.

    ``job_id_start``/``job_id_stride`` thread through to the session so
    partitioned worker processes mint job ids from disjoint arithmetic
    progressions; ``metrics_edge=False`` keeps the HTTP/hardening
    metric families off a worker's exposition (the gateway exports
    those exactly once, at the edge).
    """

    def __init__(
        self,
        broker: BrokerService,
        *,
        shards: int = 4,
        ingest_backend: str = "thread",
        merge_interval: float | None = 0.5,
        max_workers: int = 4,
        cache_capacity: int = 16,
        eval_backend: str | None = None,
        finished_job_ttl: float | None = None,
        megabatch: bool = False,
        megabatch_window: float | None = None,
        megabatch_max_rows: int | None = None,
        trace: bool = False,
        trace_capacity: int = 256,
        profile_requests: bool = False,
        job_id_start: int = 1,
        job_id_stride: int = 1,
        metrics_edge: bool = True,
        idempotency_store=None,
        rate_limiter=None,
    ) -> None:
        self.broker = broker
        self.profile_requests = profile_requests
        if trace:
            self.trace_store: TraceStore | None = TraceStore(
                capacity=trace_capacity
            )
            self.tracer: Tracer | None = Tracer(self.trace_store)
        else:
            self.trace_store = None
            self.tracer = None
        if megabatch:
            from repro.optimizer.megabatch import MegabatchConfig

            defaults = MegabatchConfig()
            megabatch_arg: object = MegabatchConfig(
                window_seconds=(
                    defaults.window_seconds
                    if megabatch_window is None
                    else megabatch_window
                ),
                max_rows=(
                    defaults.max_rows
                    if megabatch_max_rows is None
                    else megabatch_max_rows
                ),
            )
        else:
            megabatch_arg = False
        self.session = broker.session(
            cache_capacity=cache_capacity,
            max_workers=max_workers,
            backend=eval_backend,
            finished_job_ttl=finished_job_ttl,
            megabatch=megabatch_arg,
            tracer=self.tracer,
            job_id_start=job_id_start,
            job_id_stride=job_id_stride,
        )
        self.ingestor = ShardedIngestor(
            broker.telemetry,
            num_shards=shards,
            backend=ingest_backend,
            merge_interval=merge_interval,
        )
        self.metrics = ServerMetrics(
            self.session,
            self.ingestor,
            tracer=self.tracer,
            idempotency_store=idempotency_store,
            rate_limiter=rate_limiter,
            edge=metrics_edge,
        )

    def close(self) -> None:
        """Tear down the session and the ingestion pipeline (blocking)."""
        self.session.close()
        self.ingestor.close()

    # -- routing -----------------------------------------------------------

    def route(self, request: _Request):
        """Resolve one request to ``(route name, bound async handler)``."""
        route, param, envelope = resolve_route(request.method, request.path)
        if envelope is not None:
            return route, _error_handler(envelope)
        handlers = {
            "recommend": self._post_recommend,
            "batch": self._post_batch,
            "jobs": self._post_jobs,
            "ingest": self._post_ingest,
            "ingest-flush": self._post_flush,
            "traces": self._get_traces,
            "metrics": self._get_metrics,
            "healthz": self._get_health,
        }
        if route in handlers:
            return route, handlers[route]
        if route == "trace":
            return route, self._trace_handler(param)
        if route == "job":
            return route, self._job_poll_handler(param)
        assert route == "job-result", route
        return route, self._job_result_handler(param)

    # -- handlers ----------------------------------------------------------

    def _parse_envelope(self, body: bytes) -> RecommendEnvelope:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"request body is not UTF-8: {exc}") from exc
        return RecommendEnvelope.from_json(text)

    async def _post_recommend(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        if self.tracer is not None:
            payload, trace_id = await loop.run_in_executor(
                None, self._traced_recommend, request
            )
            response = _json_response(200, payload)
            response.headers[TRACE_HEADER] = trace_id
            return response
        envelope = self._parse_envelope(request.body)
        try:
            report = await loop.run_in_executor(
                None, self.session.recommend_envelope, envelope
            )
        except ReproError as exc:
            raise _HttpError(error_envelope_for(exc, envelope.request_id))
        return _json_response(200, report.to_json())

    @staticmethod
    def _envelope_trace_parent(envelope: RecommendEnvelope) -> SpanContext | None:
        """The client's traceparent, if present and well-formed."""
        if envelope.trace is None:
            return None
        try:
            return parse_traceparent(envelope.trace)
        except ValidationError:
            return None  # garbage traceparent: start a fresh trace

    def _record_ingress(self, tracer, span, request, parse_started: float) -> None:
        """Attribute the gateway → worker hop under the request root.

        ``queue_wait`` covers gateway enqueue → worker frame receipt,
        ``dispatch`` covers receipt → handler start.  Timestamps are
        clamped monotone so the clock-offset estimate can never produce
        an inverted span tree.
        """
        assert request.ingress is not None
        enqueued, received = request.ingress
        received = min(received, parse_started)
        enqueued = min(enqueued, received)
        tracer.record(
            "queue_wait", parent=span.context, start=enqueued, end=received
        )
        tracer.record(
            "dispatch", parent=span.context, start=received, end=parse_started
        )

    def _traced_recommend(self, request: _Request) -> tuple[str, str]:
        """Synchronous traced recommend path; runs on the executor.

        Opens the request's root span here (back-dated to when parsing
        started — or to gateway enqueue, when the request crossed the
        process boundary) so the whole pipeline — parse, session,
        backend chunks, serialization — nests under one trace.  The
        session sees an active context and therefore does not open its
        own root.  Returns ``(report JSON, trace id)``.
        """
        tracer = self.tracer
        assert tracer is not None
        parse_started = clock.perf_counter()
        envelope = self._parse_envelope(request.body)
        parse_ended = clock.perf_counter()
        root_start = (
            min(request.ingress[0], parse_started)
            if request.ingress is not None
            else parse_started
        )
        with tracer.span(
            "request",
            parent=self._envelope_trace_parent(envelope),
            start=root_start,
            attrs={
                "route": "recommend",
                "request_id": envelope.request_id or "",
            },
        ) as span:
            if request.ingress is not None:
                self._record_ingress(tracer, span, request, parse_started)
            tracer.record(
                "parse",
                parent=span.context,
                start=parse_started,
                end=parse_ended,
            )
            try:
                with maybe_profile(self.profile_requests) as profiler:
                    report = self.session.recommend_envelope(envelope)
            except ReproError as exc:
                span.attrs["status"] = "error"
                raise _HttpError(
                    error_envelope_for(exc, envelope.request_id)
                ) from exc
            if profiler is not None:
                logger.info(
                    "request profile",
                    extra={
                        "trace_id": span.context.trace_id,
                        "profile": profile_summary(profiler),
                    },
                )
            with tracer.span("serialize"):
                payload = report.to_json()
            span.attrs["status"] = "done"
            return payload, span.context.trace_id

    async def _post_batch(self, request: _Request) -> _Response:
        lines = [
            line
            for line in request.body.decode("utf-8", errors="replace").splitlines()
            if line.strip()
        ]
        if not lines:
            raise ValidationError("batch body contains no request envelopes")
        envelopes = []
        for number, line in enumerate(lines, start=1):
            try:
                envelopes.append(RecommendEnvelope.from_json(line))
            except ValidationError as exc:
                raise ValidationError(f"batch line {number}: {exc}") from exc
        job_ids = [self.session.submit(envelope) for envelope in envelopes]
        loop = asyncio.get_running_loop()

        async def stream() -> AsyncIterator[bytes]:
            # In submission order; jobs run concurrently on the pool.
            try:
                for job_id, envelope in zip(job_ids, envelopes):
                    try:
                        report = await loop.run_in_executor(
                            None, self.session.result_envelope, job_id
                        )
                        line = report.to_json()
                    except ReproError as exc:
                        line = error_envelope_for(
                            exc, envelope.request_id
                        ).to_json()
                    yield line.encode("utf-8") + b"\n"
            finally:
                # The batch's jobs belong to this response: if the
                # client disconnects mid-stream, nothing else holds the
                # ids, so un-streamed reports would be unretrievable
                # AND retention-exempt.  Mark them all retrieved.
                for job_id in job_ids:
                    try:
                        self.session.job(job_id).retrieved = True
                    except UnknownNameError:
                        pass  # already evicted

        return _Response(status=200, stream=stream(), content_type=_JSON)

    async def _post_jobs(self, request: _Request) -> _Response:
        if self.tracer is not None:
            job_id, trace_id = self._traced_submit(request)
            response = _json_response(202, self._job_payload(job_id))
            response.headers[TRACE_HEADER] = trace_id
            return response
        envelope = self._parse_envelope(request.body)
        job_id = self.session.submit(envelope)
        return _json_response(202, self._job_payload(job_id))

    def _traced_submit(self, request: _Request) -> tuple[str, str]:
        """Traced job submission: the job's span tree parents here.

        The request span closes when the 202 goes out; the job span it
        parents starts at submission and outlives it (children may end
        after their parent — readers sort by start time, not nesting).
        """
        tracer = self.tracer
        assert tracer is not None
        parse_started = clock.perf_counter()
        envelope = self._parse_envelope(request.body)
        parse_ended = clock.perf_counter()
        root_start = (
            min(request.ingress[0], parse_started)
            if request.ingress is not None
            else parse_started
        )
        with tracer.span(
            "request",
            parent=self._envelope_trace_parent(envelope),
            start=root_start,
            attrs={
                "route": "jobs",
                "request_id": envelope.request_id or "",
            },
        ) as span:
            if request.ingress is not None:
                self._record_ingress(tracer, span, request, parse_started)
            tracer.record(
                "parse",
                parent=span.context,
                start=parse_started,
                end=parse_ended,
            )
            job_id = self.session.submit(envelope)
            span.attrs["job_id"] = job_id
            return job_id, span.context.trace_id

    def _job_payload(self, job_id: str) -> dict[str, Any]:
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "job",
            "job_id": job_id,
            "status": self.session.poll(job_id),
        }

    def _job_poll_handler(self, job_id: str):
        async def handler(request: _Request) -> _Response:
            return _json_response(200, self._job_payload(job_id))

        return handler

    def _job_result_handler(self, job_id: str):
        async def handler(request: _Request) -> _Response:
            job = self.session.job(job_id)
            if not job.done.is_set():
                return _json_response(202, self._job_payload(job_id))
            if job.error is not None:
                # The error IS the result: mark it retrieved so failed
                # jobs participate in retention eviction too, and
                # commit it to the replay table — retrieval may evict
                # the job, so a retried GET must replay, not 404.
                job.retrieved = True
                response = _error_response(
                    error_envelope_for(job.error, job.envelope.request_id)
                )
                response.replayable = True
                return response
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                None, self.session.result_envelope, job_id
            )
            response = _json_response(200, report.to_json())
            response.replayable = True
            return response

        return handler

    async def _post_ingest(self, request: _Request) -> _Response:
        text = request.body.decode("utf-8", errors="replace")
        if not text.strip():
            raise ValidationError("ingest body contains no telemetry records")
        loop = asyncio.get_running_loop()
        routed = await loop.run_in_executor(
            None, self.ingestor.submit_jsonl, text
        )
        return _json_response(
            202,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "ingest-ack",
                "routed": routed,
                "shards": self.ingestor.num_shards,
            },
        )

    async def _post_flush(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        merged = await loop.run_in_executor(None, self.ingestor.flush)
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "ingest-ack",
                "merged": merged,
                "merges": self.ingestor.merges,
            },
        )

    def _require_trace_store(self) -> "TraceStore":
        store = self.trace_store
        if store is None:
            raise _HttpError(
                ErrorEnvelope(
                    404, "tracing-disabled",
                    "tracing is disabled on this server; restart it with "
                    "trace=True (repro serve --trace)",
                )
            )
        return store

    async def _get_traces(self, request: _Request) -> _Response:
        store = self._require_trace_store()
        query = parse_qs(request.path.partition("?")[2])
        try:
            min_duration = float(query.get("min_duration", ["0"])[0])
            limit = int(query.get("limit", ["50"])[0])
        except ValueError as exc:
            raise ValidationError(f"bad traces query parameter: {exc}") from exc
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "traces",
                "traces": store.summaries(
                    min_duration=min_duration, limit=limit
                ),
                "dropped": store.dropped,
            },
        )

    def _trace_handler(self, trace_id: str):
        async def handler(request: _Request) -> _Response:
            store = self._require_trace_store()
            spans = store.get(trace_id)
            if spans is None:
                raise _HttpError(
                    ErrorEnvelope(
                        404, "unknown-name",
                        f"no trace {trace_id!r} in the store (it may have "
                        "been evicted; raise trace_capacity)",
                    )
                )
            return _json_response(
                200,
                {
                    "schema_version": ENVELOPE_SCHEMA_VERSION,
                    "kind": "trace",
                    "trace_id": trace_id,
                    "spans": [span.to_dict() for span in spans],
                },
            )

        return handler

    async def _get_metrics(self, request: _Request) -> _Response:
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, self.metrics.render)
        return _Response(
            status=200, body=body.encode("utf-8"), content_type=_PROMETHEUS
        )

    async def _get_health(self, request: _Request) -> _Response:
        return _json_response(
            200,
            {
                "schema_version": ENVELOPE_SCHEMA_VERSION,
                "kind": "health",
                "status": "ok",
                "providers": sorted(self.broker.providers),
            },
        )
