"""The discrete-event simulation engine.

A classic event-queue loop: node failures and repairs are scheduled from
the exponential processes, failover windows end at their scheduled time,
and between consecutive events the system occupies exactly one state —
up, failover, or breakdown — whose duration is accumulated into the
metrics.  All randomness flows from one seeded stream per run.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.rng import make_rng
from repro.simulation.distributions import EXPONENTIAL, DurationDistribution
from repro.simulation.events import EventKind, SimulationEvent
from repro.simulation.metrics import DowntimeMetrics
from repro.simulation.processes import NodeProcess
from repro.simulation.state import ClusterState
from repro.errors import SimulationError
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR

#: Optional observer invoked for every event (used by telemetry capture).
EventObserver = Callable[[SimulationEvent], None]


@dataclass(frozen=True, slots=True)
class SimulationOptions:
    """Knobs for one simulation run.

    Parameters
    ----------
    horizon_minutes:
        Simulated duration; defaults to one year.
    seed:
        Seed for the run's private random stream.
    up_distribution / down_distribution:
        Holding-time shapes for node up/down durations.  Means always
        come from the node specs; shapes default to exponential and can
        be varied to probe distributional robustness (ablation A4).
    """

    horizon_minutes: float = float(MINUTES_PER_YEAR)
    seed: int | None = None
    up_distribution: DurationDistribution = EXPONENTIAL
    down_distribution: DurationDistribution = EXPONENTIAL

    def __post_init__(self) -> None:
        if self.horizon_minutes <= 0.0:
            raise SimulationError(
                f"horizon_minutes must be > 0, got {self.horizon_minutes!r}"
            )


def simulate(
    system: SystemTopology,
    options: SimulationOptions | None = None,
    observer: EventObserver | None = None,
    interval_log: list[tuple[float, float, str]] | None = None,
) -> DowntimeMetrics:
    """Run one replication and return its downtime metrics.

    ``observer``, when given, receives every event as it fires — the
    broker's telemetry capture plugs in here without the engine knowing
    about brokers.

    ``interval_log``, when given, receives every *down* span as a
    ``(start_minute, end_minute, cause)`` triple with cause
    ``"breakdown"`` or ``"failover"`` — the raw timeline used by SLA
    compliance measurement and the correlated-failure ablation.
    """
    options = options or SimulationOptions()
    rng = make_rng(options.seed)
    horizon = options.horizon_minutes

    clusters = {cluster.name: ClusterState(cluster) for cluster in system.clusters}
    processes = {
        cluster.name: NodeProcess.from_spec(
            cluster.node,
            up_distribution=options.up_distribution,
            down_distribution=options.down_distribution,
        )
        for cluster in system.clusters
    }

    queue: list[SimulationEvent] = []
    sequence = 0

    def push(time_minutes: float, kind: EventKind, cluster_name: str, node_index: int) -> None:
        nonlocal sequence
        if time_minutes > horizon or math.isinf(time_minutes):
            return
        heapq.heappush(
            queue,
            SimulationEvent(
                time_minutes=time_minutes,
                sequence=sequence,
                kind=kind,
                cluster_name=cluster_name,
                node_index=node_index,
            ),
        )
        sequence += 1

    # Seed initial failures for every node.
    for name, state in clusters.items():
        process = processes[name]
        for node_index in range(state.spec.total_nodes):
            push(process.sample_up_duration(rng), EventKind.NODE_FAILED, name, node_index)

    breakdown_minutes = 0.0
    failover_minutes = 0.0
    overlap_minutes = 0.0
    now = 0.0

    def account(until: float) -> None:
        """Attribute the interval [now, until) to one system state."""
        nonlocal breakdown_minutes, failover_minutes, overlap_minutes
        span = until - now
        if span <= 0.0:
            return
        any_broken = any(state.is_broken for state in clusters.values())
        any_failover = any(state.in_failover(now) for state in clusters.values())
        if any_broken:
            breakdown_minutes += span
            if any_failover:
                overlap_minutes += span
            if interval_log is not None:
                interval_log.append((now, until, "breakdown"))
        elif any_failover:
            failover_minutes += span
            if interval_log is not None:
                interval_log.append((now, until, "failover"))

    while queue:
        event = heapq.heappop(queue)
        # Failover windows may end between queue events; they are queued
        # as events too, so states only change at event timestamps.
        account(event.time_minutes)
        now = event.time_minutes
        state = clusters[event.cluster_name]
        process = processes[event.cluster_name]

        if event.kind is EventKind.NODE_FAILED:
            triggered = state.fail_node(event.node_index, now)
            push(
                now + process.sample_down_duration(rng),
                EventKind.NODE_REPAIRED,
                event.cluster_name,
                event.node_index,
            )
            if triggered:
                push(
                    state.failover_until,
                    EventKind.FAILOVER_ENDED,
                    event.cluster_name,
                    event.node_index,
                )
        elif event.kind is EventKind.NODE_REPAIRED:
            state.repair_node(event.node_index)
            push(
                now + process.sample_up_duration(rng),
                EventKind.NODE_FAILED,
                event.cluster_name,
                event.node_index,
            )
        elif event.kind is EventKind.FAILOVER_ENDED:
            pass  # state change is implicit: in_failover() reads the clock
        else:  # pragma: no cover - exhaustive enum guard
            raise SimulationError(f"unknown event kind {event.kind!r}")

        if observer is not None:
            observer(event)

    account(horizon)

    return DowntimeMetrics(
        horizon_minutes=horizon,
        breakdown_minutes=breakdown_minutes,
        failover_minutes=failover_minutes,
        overlap_minutes=overlap_minutes,
        failover_events=sum(state.failover_count for state in clusters.values()),
        breakdown_events=sum(state.breakdown_count for state in clusters.values()),
    )
