"""Failure/repair stochastic processes.

Nodes alternate exponentially distributed up and down periods whose
means reproduce the spec's steady-state numbers:

- cycle length (up + down) = hours-per-year / ``failures_per_year``;
- mean down time = ``down_probability`` * cycle (so the long-run
  fraction of time down equals ``P_i``);
- mean up time = cycle - mean down time.

Exponential holding times make the node a two-state Markov process —
the memoryless counterpart of the analytic model's i.i.d. snapshot.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simulation.distributions import EXPONENTIAL, DurationDistribution
from repro.topology.node import NodeSpec
from repro.units import MINUTES_PER_HOUR, HOURS_PER_YEAR


@dataclass(frozen=True, slots=True)
class NodeProcess:
    """Sampling distributions for one node class, in minutes.

    Defaults to exponential holding times (the memoryless counterpart of
    the analytic model); other mean-preserving shapes can be supplied to
    probe the model's distributional robustness (ablation A4).
    """

    mean_up_minutes: float
    mean_down_minutes: float
    up_distribution: DurationDistribution = EXPONENTIAL
    down_distribution: DurationDistribution = EXPONENTIAL

    @classmethod
    def from_spec(
        cls,
        node: NodeSpec,
        up_distribution: DurationDistribution = EXPONENTIAL,
        down_distribution: DurationDistribution = EXPONENTIAL,
    ) -> "NodeProcess":
        """Derive the process means from a node spec.

        A node that never fails (``failures_per_year == 0``) gets an
        infinite mean up time; sampling returns ``inf`` and the engine
        simply never schedules its failure.
        """
        if node.failures_per_year == 0.0:
            return cls(
                mean_up_minutes=math.inf,
                mean_down_minutes=0.0,
                up_distribution=up_distribution,
                down_distribution=down_distribution,
            )
        cycle_minutes = (HOURS_PER_YEAR / node.failures_per_year) * MINUTES_PER_HOUR
        mean_down = node.down_probability * cycle_minutes
        mean_up = cycle_minutes - mean_down
        if mean_up <= 0.0:
            raise SimulationError(
                f"node {node.kind!r} has non-positive mean up time; "
                "its down_probability and failures_per_year are inconsistent"
            )
        return cls(
            mean_up_minutes=mean_up,
            mean_down_minutes=mean_down,
            up_distribution=up_distribution,
            down_distribution=down_distribution,
        )

    def sample_up_duration(self, rng: random.Random) -> float:
        """Minutes until the next failure of an up node."""
        return self.up_distribution.sample(self.mean_up_minutes, rng)

    def sample_down_duration(self, rng: random.Random) -> float:
        """Minutes until a failed node is repaired."""
        return self.down_distribution.sample(self.mean_down_minutes, rng)
