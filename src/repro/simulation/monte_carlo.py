"""Monte Carlo driver: many replications with confidence intervals.

Each replication runs the engine with an independent child seed derived
from one master stream, so a ``MonteCarloResult`` is reproducible from
``(system, options, seed)`` alone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.rng import make_rng
from repro.simulation.distributions import EXPONENTIAL, DurationDistribution
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.metrics import DowntimeMetrics
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR

#: Two-sided 95% normal quantile used for the confidence intervals.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregated outcome of ``replications`` independent runs."""

    replications: int
    horizon_minutes: float
    runs: tuple[DowntimeMetrics, ...]

    @property
    def mean_availability(self) -> float:
        """Sample mean of per-run availability."""
        return _mean([run.availability for run in self.runs])

    @property
    def availability_stderr(self) -> float:
        """Standard error of the availability estimate."""
        return _stderr([run.availability for run in self.runs])

    @property
    def availability_ci95(self) -> tuple[float, float]:
        """95% normal-approximation confidence interval."""
        mean = self.mean_availability
        half = _Z95 * self.availability_stderr
        return (mean - half, mean + half)

    @property
    def mean_breakdown_fraction(self) -> float:
        """Sample mean of the breakdown (``B_s``) fraction."""
        return _mean([run.breakdown_fraction for run in self.runs])

    @property
    def mean_failover_fraction(self) -> float:
        """Sample mean of the failover (``F_s``) fraction."""
        return _mean([run.failover_fraction for run in self.runs])

    @property
    def mean_overlap_fraction(self) -> float:
        """Mean fraction of time both conditions held (footnote-2 error)."""
        return _mean(
            [run.overlap_minutes / run.horizon_minutes for run in self.runs]
        )

    def contains(self, availability: float) -> bool:
        """True when ``availability`` lies inside the 95% CI."""
        low, high = self.availability_ci95
        return low <= availability <= high

    def describe(self) -> str:
        """Multi-line summary of the aggregate estimates."""
        low, high = self.availability_ci95
        return "\n".join(
            [
                f"Monte Carlo: {self.replications} runs x "
                f"{self.horizon_minutes / MINUTES_PER_YEAR:.1f} simulated years",
                f"  availability = {self.mean_availability:.6f} "
                f"(95% CI [{low:.6f}, {high:.6f}])",
                f"  breakdown fraction = {self.mean_breakdown_fraction:.6e}",
                f"  failover fraction  = {self.mean_failover_fraction:.6e}",
            ]
        )


def monte_carlo(
    system: SystemTopology,
    replications: int = 100,
    horizon_minutes: float = float(MINUTES_PER_YEAR),
    seed: int | random.Random | None = None,
    up_distribution: "DurationDistribution" = EXPONENTIAL,
    down_distribution: "DurationDistribution" = EXPONENTIAL,
) -> MonteCarloResult:
    """Run ``replications`` independent simulations of ``system``."""
    if replications < 1:
        raise SimulationError(
            f"replications must be >= 1, got {replications!r}"
        )
    master = make_rng(seed)
    runs = []
    for _ in range(replications):
        options = SimulationOptions(
            horizon_minutes=horizon_minutes,
            seed=master.getrandbits(64),
            up_distribution=up_distribution,
            down_distribution=down_distribution,
        )
        runs.append(simulate(system, options))
    return MonteCarloResult(
        replications=replications,
        horizon_minutes=horizon_minutes,
        runs=tuple(runs),
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _stderr(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance / len(values))
