"""Downtime accounting for simulation runs.

Every simulated minute is attributed to exactly one of three states —
up, breakdown, or failover — with breakdown taking priority when both
conditions hold at once (the analytic model's footnote 2 treats them as
mutually exclusive; the simulator resolves the overlap explicitly and
reports how much time was double-conditioned so the approximation error
is visible).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class DowntimeMetrics:
    """Outcome of one simulation replication.

    Attributes
    ----------
    horizon_minutes:
        Simulated wall-clock length of the run.
    breakdown_minutes:
        Minutes with at least one cluster broken beyond tolerance.
    failover_minutes:
        Minutes inside a failover window with no cluster broken.
    overlap_minutes:
        Minutes that were simultaneously within a failover window *and*
        a breakdown (attributed to breakdown above; reported so the
        footnote-2 approximation can be quantified).
    failover_events / breakdown_events:
        Transition counts across all clusters.
    """

    horizon_minutes: float
    breakdown_minutes: float
    failover_minutes: float
    overlap_minutes: float
    failover_events: int
    breakdown_events: int

    def __post_init__(self) -> None:
        if self.horizon_minutes <= 0.0:
            raise SimulationError(
                f"horizon_minutes must be > 0, got {self.horizon_minutes!r}"
            )
        downtime = self.breakdown_minutes + self.failover_minutes
        if downtime > self.horizon_minutes + 1e-6:
            raise SimulationError(
                "accounted downtime exceeds the simulation horizon: "
                f"{downtime} > {self.horizon_minutes}"
            )

    @property
    def downtime_minutes(self) -> float:
        """Total system downtime over the run."""
        return self.breakdown_minutes + self.failover_minutes

    @property
    def availability(self) -> float:
        """Observed fraction of the horizon the system was up."""
        return 1.0 - self.downtime_minutes / self.horizon_minutes

    @property
    def breakdown_fraction(self) -> float:
        """Observed ``B_s`` estimate."""
        return self.breakdown_minutes / self.horizon_minutes

    @property
    def failover_fraction(self) -> float:
        """Observed ``F_s`` estimate."""
        return self.failover_minutes / self.horizon_minutes

    def describe(self) -> str:
        """One-line run summary."""
        return (
            f"availability={self.availability:.6f} "
            f"(breakdown {self.breakdown_minutes:.1f}m, "
            f"failover {self.failover_minutes:.1f}m over "
            f"{self.horizon_minutes:.0f}m; "
            f"{self.breakdown_events} breakdowns, "
            f"{self.failover_events} failovers)"
        )
