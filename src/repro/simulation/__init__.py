"""Discrete-event Monte Carlo failure simulator.

The analytic model (Eq. 1-4) makes two stated approximations: it treats
breakdown and failover downtime as mutually exclusive (footnote 2) and
ignores overlapping failover windows (footnote 3).  This simulator plays
the actual failure/repair/failover dynamics of a topology over simulated
years, attributing every downtime minute to its cause, so the analytic
numbers can be validated empirically (experiment E6) — and it doubles as
the event source for the broker's telemetry (experiment E5).

Entry points:

- :func:`~repro.simulation.engine.simulate` — one replication.
- :func:`~repro.simulation.monte_carlo.monte_carlo` — many replications
  with confidence intervals.
- :func:`~repro.simulation.validation.validate_against_model` —
  side-by-side analytic vs simulated comparison.
"""

from repro.simulation.correlated import (
    CorrelatedRunResult,
    ZoneOutageSpec,
    correlated_monte_carlo,
    simulate_with_zones,
    zone_aware_uptime,
)
from repro.simulation.distributions import (
    DETERMINISTIC,
    EXPONENTIAL,
    HEAVY_TAILED,
    LOW_VARIANCE,
    DurationDistribution,
)
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.events import EventKind, SimulationEvent
from repro.simulation.metrics import DowntimeMetrics
from repro.simulation.monte_carlo import MonteCarloResult, monte_carlo
from repro.simulation.trace import TraceRecorder, ingest_trace, trace_to_resource_events
from repro.simulation.validation import ValidationReport, validate_against_model

__all__ = [
    "CorrelatedRunResult",
    "DETERMINISTIC",
    "DowntimeMetrics",
    "DurationDistribution",
    "EXPONENTIAL",
    "HEAVY_TAILED",
    "LOW_VARIANCE",
    "EventKind",
    "MonteCarloResult",
    "SimulationEvent",
    "SimulationOptions",
    "TraceRecorder",
    "ValidationReport",
    "ZoneOutageSpec",
    "ingest_trace",
    "trace_to_resource_events",
    "correlated_monte_carlo",
    "monte_carlo",
    "simulate",
    "simulate_with_zones",
    "validate_against_model",
    "zone_aware_uptime",
]
