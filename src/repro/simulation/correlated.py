"""Correlated (zone-level) failures: an ablation on node independence.

Eq. 2 assumes node failures are independent.  Real clouds also suffer
*zone events* — a power feed, a top-of-rack switch, a control-plane
incident — that take a whole cluster down at once.  The paper's §IV
(construct validity) implicitly excludes these; this module measures
what they do to the model's accuracy.

A zone process per cluster is an independent two-state alternating
renewal process (exponential occurrence, exponential duration).  System
downtime becomes the *union* of node-level downtime (from the base
engine) and zone downtime.  The analytic counterpart multiplies each
cluster's Eq. 2 up-probability by its zone availability:

    Pr[cluster up] = binomial_up * (1 - P_zone),
    P_zone = d_z / (T_z + d_z)

where ``T_z`` is the mean time between zone events and ``d_z`` the mean
outage length.  Experiment A2 (``bench_ablation_correlated.py``)
compares the naive Eq. 2, this zone-aware analytic model, and the
merged-timeline simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.availability.cluster_math import cluster_up_probability
from repro.availability.failover import failover_downtime_probability
from repro.errors import SimulationError, ValidationError
from repro.rng import make_rng
from repro.simulation.engine import SimulationOptions, simulate
from repro.simulation.metrics import DowntimeMetrics
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class ZoneOutageSpec:
    """Zone-event process of one cluster.

    Parameters
    ----------
    events_per_year:
        Mean zone events per year affecting the cluster.
    mean_outage_minutes:
        Mean duration of one zone event.
    """

    events_per_year: float
    mean_outage_minutes: float

    def __post_init__(self) -> None:
        if self.events_per_year < 0.0:
            raise ValidationError(
                f"events_per_year must be >= 0, got {self.events_per_year!r}"
            )
        if self.mean_outage_minutes < 0.0:
            raise ValidationError(
                f"mean_outage_minutes must be >= 0, got {self.mean_outage_minutes!r}"
            )

    @property
    def unavailability(self) -> float:
        """Steady-state probability the zone is down (``P_zone``)."""
        if self.events_per_year == 0.0 or self.mean_outage_minutes == 0.0:
            return 0.0
        mean_up = MINUTES_PER_YEAR / self.events_per_year - self.mean_outage_minutes
        if mean_up <= 0.0:
            raise SimulationError(
                "zone outage spec implies the zone is down more than up; "
                f"events_per_year={self.events_per_year}, "
                f"mean_outage_minutes={self.mean_outage_minutes}"
            )
        return self.mean_outage_minutes / (mean_up + self.mean_outage_minutes)

    def sample_intervals(
        self, horizon_minutes: float, rng: random.Random
    ) -> list[tuple[float, float]]:
        """Zone-down intervals over a horizon (clipped to it)."""
        if self.events_per_year == 0.0 or self.mean_outage_minutes == 0.0:
            return []
        mean_up = MINUTES_PER_YEAR / self.events_per_year - self.mean_outage_minutes
        intervals = []
        clock = rng.expovariate(1.0 / mean_up)
        while clock < horizon_minutes:
            outage = rng.expovariate(1.0 / self.mean_outage_minutes)
            intervals.append((clock, min(clock + outage, horizon_minutes)))
            clock = clock + outage + rng.expovariate(1.0 / mean_up)
        return intervals


def zone_aware_uptime(
    system: SystemTopology,
    zones: dict[str, ZoneOutageSpec],
) -> float:
    """Analytic ``U_s`` with per-cluster zone availability factored in.

    Clusters absent from ``zones`` are assumed zone-perfect.  The
    failover term is unchanged (zone events are breakdowns, not
    failovers).
    """
    product = 1.0
    for cluster in system.clusters:
        up = cluster_up_probability(cluster)
        zone = zones.get(cluster.name)
        if zone is not None:
            up *= 1.0 - zone.unavailability
        product *= up
    breakdown = 1.0 - product
    return 1.0 - breakdown - failover_downtime_probability(system)


def merge_downtime(
    spans: list[tuple[float, float]], horizon_minutes: float
) -> float:
    """Total length of the union of (possibly overlapping) spans."""
    if not spans:
        return 0.0
    merged_total = 0.0
    current_start, current_end = None, None
    for start, end in sorted(spans):
        start = max(0.0, start)
        end = min(end, horizon_minutes)
        if end <= start:
            continue
        if current_start is None:
            current_start, current_end = start, end
        elif start <= current_end:
            current_end = max(current_end, end)
        else:
            merged_total += current_end - current_start
            current_start, current_end = start, end
    if current_start is not None:
        merged_total += current_end - current_start
    return merged_total


@dataclass(frozen=True)
class CorrelatedRunResult:
    """One replication with zone events merged in."""

    base_metrics: DowntimeMetrics
    zone_downtime_minutes: float
    total_downtime_minutes: float
    horizon_minutes: float

    @property
    def availability(self) -> float:
        """Observed uptime fraction including zone events."""
        return 1.0 - self.total_downtime_minutes / self.horizon_minutes

    @property
    def correlation_penalty(self) -> float:
        """Extra downtime fraction the zone process added."""
        base = self.base_metrics.downtime_minutes
        return (self.total_downtime_minutes - base) / self.horizon_minutes


def simulate_with_zones(
    system: SystemTopology,
    zones: dict[str, ZoneOutageSpec],
    options: SimulationOptions | None = None,
    seed: int | random.Random | None = None,
) -> CorrelatedRunResult:
    """Run one replication with zone outages unioned into the timeline.

    Node-level dynamics come from the standard engine; zone intervals
    are sampled independently per cluster and merged: the system is down
    whenever node-level downtime *or* any zone outage is active.
    """
    unknown = set(zones) - set(system.cluster_names)
    if unknown:
        raise SimulationError(
            f"zone specs reference unknown clusters: {sorted(unknown)}"
        )
    options = options or SimulationOptions()
    rng = make_rng(seed)

    interval_log: list[tuple[float, float, str]] = []
    base_metrics = simulate(system, options, interval_log=interval_log)

    spans = [(start, end) for start, end, _cause in interval_log]
    zone_spans: list[tuple[float, float]] = []
    for cluster_name in system.cluster_names:
        zone = zones.get(cluster_name)
        if zone is not None:
            zone_spans.extend(
                zone.sample_intervals(options.horizon_minutes, rng)
            )

    total = merge_downtime(spans + zone_spans, options.horizon_minutes)
    return CorrelatedRunResult(
        base_metrics=base_metrics,
        zone_downtime_minutes=merge_downtime(zone_spans, options.horizon_minutes),
        total_downtime_minutes=total,
        horizon_minutes=options.horizon_minutes,
    )


def correlated_monte_carlo(
    system: SystemTopology,
    zones: dict[str, ZoneOutageSpec],
    replications: int = 50,
    horizon_minutes: float = float(MINUTES_PER_YEAR),
    seed: int | random.Random | None = None,
) -> list[CorrelatedRunResult]:
    """Independent replications of :func:`simulate_with_zones`."""
    if replications < 1:
        raise SimulationError(f"replications must be >= 1, got {replications!r}")
    master = make_rng(seed)
    runs = []
    for _ in range(replications):
        options = SimulationOptions(
            horizon_minutes=horizon_minutes, seed=master.getrandbits(64)
        )
        runs.append(
            simulate_with_zones(system, zones, options, seed=master.getrandbits(64))
        )
    return runs
