"""Simulation traces: capture, export, and replay into broker telemetry.

The fault injector (``repro.cloud.faults``) synthesizes the broker's
history from a provider's *declared* ground truth.  A stricter pipeline
replays what the discrete-event engine *actually did*: capture its
event stream, convert it to the broker's observation vocabulary, and
ingest it.  Estimates learned this way must agree with the node specs
the simulation ran on — a cross-check wired into the test suite.

Traces also serialize to JSON so a run can be archived and re-ingested
later (mirroring how a production broker would consume monitoring logs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cloud.events import ResourceEvent, ResourceEventKind
from repro.errors import SimulationError, ValidationError
from repro.simulation.events import EventKind, SimulationEvent
from repro.topology.cluster import COMPONENT_KIND_BY_LAYER
from repro.topology.system import SystemTopology

if TYPE_CHECKING:  # avoid a module-level simulation -> broker cycle
    from repro.broker.telemetry import TelemetryStore

#: Current trace wire-format version.
TRACE_VERSION = 1


@dataclass
class TraceRecorder:
    """An engine observer that accumulates the full event stream.

    Pass ``recorder`` as the engine's ``observer``::

        recorder = TraceRecorder()
        simulate(system, options, observer=recorder)
    """

    events: list[SimulationEvent] = field(default_factory=list)

    def __call__(self, event: SimulationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe trace document."""
        return {
            "trace_version": TRACE_VERSION,
            "events": [
                {
                    "time_minutes": event.time_minutes,
                    "sequence": event.sequence,
                    "kind": event.kind.value,
                    "cluster_name": event.cluster_name,
                    "node_index": event.node_index,
                }
                for event in self.events
            ],
        }

    def to_json(self) -> str:
        """Serialize the trace to JSON."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceRecorder":
        """Restore a trace from its document form."""
        version = payload.get("trace_version")
        if version != TRACE_VERSION:
            raise ValidationError(
                f"unsupported trace_version {version!r}; this library "
                f"reads version {TRACE_VERSION}"
            )
        recorder = cls()
        for entry in payload.get("events", []):
            recorder.events.append(
                SimulationEvent(
                    time_minutes=float(entry["time_minutes"]),
                    sequence=int(entry["sequence"]),
                    kind=EventKind(entry["kind"]),
                    cluster_name=entry["cluster_name"],
                    node_index=int(entry["node_index"]),
                )
            )
        return recorder

    @classmethod
    def from_json(cls, text: str) -> "TraceRecorder":
        """Restore a trace from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid trace JSON: {exc}") from exc
        return cls.from_dict(payload)


def trace_to_resource_events(
    system: SystemTopology,
    trace: TraceRecorder,
    provider_name: str,
) -> list[ResourceEvent]:
    """Convert an engine trace into broker observations.

    Failure/repair pairs become FAILURE + REPAIR (with the measured
    outage duration); each failover window becomes a FAILOVER carrying
    the cluster's configured takeover time.  Unclosed outages at the
    end of the trace are dropped (a real monitoring pipeline would hold
    them open too).
    """
    kind_by_cluster = {
        cluster.name: COMPONENT_KIND_BY_LAYER[cluster.layer]
        for cluster in system.clusters
    }
    failover_by_cluster = {
        cluster.name: cluster.failover_minutes for cluster in system.clusters
    }

    open_outages: dict[tuple[str, int], float] = {}
    observations: list[ResourceEvent] = []
    for event in trace.events:
        key = (event.cluster_name, event.node_index)
        if event.cluster_name not in kind_by_cluster:
            raise SimulationError(
                f"trace references unknown cluster {event.cluster_name!r}"
            )
        kind = kind_by_cluster[event.cluster_name]
        resource_id = f"{event.cluster_name}/{event.node_index}"
        if event.kind is EventKind.NODE_FAILED:
            open_outages[key] = event.time_minutes
            observations.append(
                ResourceEvent(
                    time_minutes=event.time_minutes,
                    provider=provider_name,
                    component_kind=kind,
                    resource_id=resource_id,
                    kind=ResourceEventKind.FAILURE,
                )
            )
        elif event.kind is EventKind.NODE_REPAIRED:
            started = open_outages.pop(key, None)
            if started is None:
                raise SimulationError(
                    f"trace repairs {resource_id} without a prior failure"
                )
            observations.append(
                ResourceEvent(
                    time_minutes=event.time_minutes,
                    provider=provider_name,
                    component_kind=kind,
                    resource_id=resource_id,
                    kind=ResourceEventKind.REPAIR,
                    duration_minutes=event.time_minutes - started,
                )
            )
        elif event.kind is EventKind.FAILOVER_ENDED:
            observations.append(
                ResourceEvent(
                    time_minutes=event.time_minutes,
                    provider=provider_name,
                    component_kind=kind,
                    resource_id=resource_id,
                    kind=ResourceEventKind.FAILOVER,
                    duration_minutes=failover_by_cluster[event.cluster_name],
                )
            )
    return observations


def ingest_trace(
    store: "TelemetryStore",
    system: SystemTopology,
    trace: TraceRecorder,
    provider_name: str,
    horizon_minutes: float,
) -> int:
    """Register exposure and ingest a trace; returns observations read.

    Exposure is derived from the topology: every node of every cluster
    was watched for the whole horizon.
    """
    if horizon_minutes <= 0.0:
        raise ValidationError(
            f"horizon_minutes must be > 0, got {horizon_minutes!r}"
        )
    kind_counts: dict[str, int] = {}
    for cluster in system.clusters:
        kind = COMPONENT_KIND_BY_LAYER[cluster.layer]
        kind_counts[kind] = kind_counts.get(kind, 0) + cluster.total_nodes
    for kind, count in kind_counts.items():
        store.register_exposure(provider_name, kind, count, horizon_minutes)
    observations = trace_to_resource_events(system, trace, provider_name)
    return store.ingest(observations)
