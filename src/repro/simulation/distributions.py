"""Holding-time distributions for the failure simulator.

The analytic model only consumes *steady-state* quantities (``P_i``,
``f_i``), and by the renewal-reward theorem the long-run availability of
an alternating renewal process depends only on the *means* of the up
and down durations — not their shapes.  The engine's default
exponential processes are therefore not load-bearing for ``U_s``;
what the shape does change is the *variance* of monthly downtime, which
drives the realized-penalty ablation (A3/A4).

This module provides mean-parameterized families so the engine can run
the same topology under different shapes:

- ``exponential`` — the memoryless default (CV = 1);
- ``weibull(k)`` — heavier tail for ``k < 1`` (CV > 1), lighter for
  ``k > 1`` (CV < 1), scaled so the mean is preserved;
- ``deterministic`` — fixed durations (CV = 0), the variance floor.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class DurationDistribution:
    """A mean-parameterized duration family.

    Parameters
    ----------
    family:
        ``"exponential"``, ``"weibull"`` or ``"deterministic"``.
    weibull_shape:
        The Weibull ``k`` (only used by the weibull family).  ``k < 1``
        produces occasional very long durations; ``k > 1`` concentrates
        around the mean.
    """

    family: str = "exponential"
    weibull_shape: float = 1.0

    _FAMILIES = ("exponential", "weibull", "deterministic")

    def __post_init__(self) -> None:
        if self.family not in self._FAMILIES:
            raise ValidationError(
                f"unknown duration family {self.family!r}; "
                f"choose one of {self._FAMILIES}"
            )
        if self.weibull_shape <= 0.0:
            raise ValidationError(
                f"weibull_shape must be > 0, got {self.weibull_shape!r}"
            )

    def sample(self, mean: float, rng: random.Random) -> float:
        """Draw one duration with the given mean.

        Infinite means return ``inf`` (a never-failing node); zero means
        return 0.
        """
        if math.isinf(mean):
            return math.inf
        if mean <= 0.0:
            return 0.0
        if self.family == "exponential":
            return rng.expovariate(1.0 / mean)
        if self.family == "deterministic":
            return mean
        # Weibull with mean preserved: scale = mean / Gamma(1 + 1/k).
        shape = self.weibull_shape
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return rng.weibullvariate(scale, shape)

    def coefficient_of_variation(self) -> float:
        """Std/mean of the family (0 for deterministic, 1 for expo)."""
        if self.family == "deterministic":
            return 0.0
        if self.family == "exponential":
            return 1.0
        shape = self.weibull_shape
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        return math.sqrt(max(g2 / (g1 * g1) - 1.0, 0.0))


#: The engine default.
EXPONENTIAL = DurationDistribution("exponential")
#: Heavy-tailed repairs (occasional marathon outages).
HEAVY_TAILED = DurationDistribution("weibull", weibull_shape=0.5)
#: Tightly scheduled repairs.
LOW_VARIANCE = DurationDistribution("weibull", weibull_shape=3.0)
#: Clockwork durations (variance floor).
DETERMINISTIC = DurationDistribution("deterministic")
