"""Event vocabulary of the failure simulator.

Three event kinds drive the state machine; everything else (cluster
breakdown, system outage) is *derived* state recomputed when an event
fires.  Traces of these events feed the broker's telemetry store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(str, enum.Enum):
    """What happened at an event timestamp."""

    NODE_FAILED = "node-failed"
    NODE_REPAIRED = "node-repaired"
    FAILOVER_ENDED = "failover-ended"


@dataclass(frozen=True, slots=True, order=True)
class SimulationEvent:
    """One timestamped event, orderable for the event queue.

    ``sequence`` breaks timestamp ties deterministically so runs with the
    same seed replay identically.
    """

    time_minutes: float
    sequence: int
    kind: EventKind
    cluster_name: str
    node_index: int

    def describe(self) -> str:
        """E.g. ``[t=123.4m] node-failed compute/2``."""
        return (
            f"[t={self.time_minutes:.1f}m] {self.kind.value} "
            f"{self.cluster_name}/{self.node_index}"
        )
