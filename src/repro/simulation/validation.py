"""Analytic-vs-simulated comparison (experiment E6).

``validate_against_model`` evaluates Eq. 1-4 for a topology and runs the
Monte Carlo simulator on the same topology, reporting both estimates of
``U_s``, ``B_s`` and ``F_s`` side by side plus whether the analytic
uptime falls inside the simulation's 95% confidence interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.availability.model import AvailabilityReport, evaluate_availability
from repro.simulation.monte_carlo import MonteCarloResult, monte_carlo
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR


@dataclass(frozen=True)
class ValidationReport:
    """Side-by-side analytic and simulated availability estimates."""

    system_name: str
    analytic: AvailabilityReport
    simulated: MonteCarloResult

    @property
    def analytic_uptime(self) -> float:
        """``U_s`` from Eq. 4."""
        return self.analytic.uptime_probability

    @property
    def simulated_uptime(self) -> float:
        """Mean availability across replications."""
        return self.simulated.mean_availability

    @property
    def absolute_error(self) -> float:
        """``|analytic - simulated|`` uptime gap."""
        return abs(self.analytic_uptime - self.simulated_uptime)

    @property
    def analytic_inside_ci(self) -> bool:
        """Whether Eq. 4 lands inside the simulation's 95% CI."""
        return self.simulated.contains(self.analytic_uptime)

    def describe(self) -> str:
        """Multi-line comparison table."""
        low, high = self.simulated.availability_ci95
        return "\n".join(
            [
                f"Validation of {self.system_name!r}:",
                f"  analytic  U_s = {self.analytic_uptime:.6f} "
                f"(B_s={self.analytic.breakdown_probability:.3e}, "
                f"F_s={self.analytic.failover_probability:.3e})",
                f"  simulated U_s = {self.simulated_uptime:.6f} "
                f"(B_s={self.simulated.mean_breakdown_fraction:.3e}, "
                f"F_s={self.simulated.mean_failover_fraction:.3e})",
                f"  95% CI [{low:.6f}, {high:.6f}] "
                f"{'contains' if self.analytic_inside_ci else 'MISSES'} analytic",
                f"  |gap| = {self.absolute_error:.2e}; overlap fraction "
                f"(footnote-2 error) = {self.simulated.mean_overlap_fraction:.2e}",
            ]
        )


def validate_against_model(
    system: SystemTopology,
    replications: int = 100,
    horizon_minutes: float = float(MINUTES_PER_YEAR),
    seed: int | random.Random | None = None,
) -> ValidationReport:
    """Run both estimators on ``system`` and return the comparison."""
    return ValidationReport(
        system_name=system.name,
        analytic=evaluate_availability(system),
        simulated=monte_carlo(
            system,
            replications=replications,
            horizon_minutes=horizon_minutes,
            seed=seed,
        ),
    )
