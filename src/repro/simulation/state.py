"""Mutable cluster state tracked during a simulation run.

A cluster distinguishes *active* nodes (serving traffic) from *standby*
nodes.  The failure semantics mirror §II-A:

- an **active** node failing with an up standby available triggers a
  *failover*: the standby is promoted and the cluster is unavailable
  for the failover window;
- a **standby** node failing causes no outage by itself;
- whenever more than ``K̂`` nodes are down simultaneously the cluster is
  **broken** (down until repairs bring it back within tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.topology.cluster import ClusterSpec


@dataclass
class ClusterState:
    """Live state of one cluster during a run."""

    spec: ClusterSpec
    node_up: list[bool] = field(init=False)
    active: set[int] = field(init=False)
    failover_until: float = field(default=0.0, init=False)
    failover_count: int = field(default=0, init=False)
    breakdown_count: int = field(default=0, init=False)
    _was_broken: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.node_up = [True] * self.spec.total_nodes
        # The first K - K̂ nodes start active; the rest are standby.
        self.active = set(range(self.spec.active_nodes))

    @property
    def down_count(self) -> int:
        """Nodes currently failed."""
        return self.node_up.count(False)

    @property
    def is_broken(self) -> bool:
        """More simultaneous failures than the HA budget tolerates."""
        return self.down_count > self.spec.standby_tolerance

    def in_failover(self, now: float) -> bool:
        """True while a failover window is still running."""
        return now < self.failover_until

    def note_breakdown_transition(self) -> None:
        """Count entry edges into the broken state (for reporting)."""
        if self.is_broken and not self._was_broken:
            self.breakdown_count += 1
        self._was_broken = self.is_broken

    def fail_node(self, node_index: int, now: float) -> bool:
        """Mark a node failed; returns True when this triggers a failover.

        A failover happens when the failed node was active, the cluster
        still has its tolerance intact (not broken), and an up standby
        exists to promote.
        """
        if not self.node_up[node_index]:
            raise SimulationError(
                f"node {self.spec.name}/{node_index} failed while already down"
            )
        self.node_up[node_index] = False
        was_active = node_index in self.active
        if was_active:
            self.active.discard(node_index)
        triggers_failover = False
        if was_active and not self.is_broken and self.spec.standby_tolerance > 0:
            standby = self._find_up_standby()
            if standby is not None:
                self.active.add(standby)
                self.failover_until = max(
                    self.failover_until, now + self.spec.failover_minutes
                )
                self.failover_count += 1
                triggers_failover = True
        self.note_breakdown_transition()
        return triggers_failover

    def repair_node(self, node_index: int) -> None:
        """Mark a node repaired; it returns as standby (or active if the
        active set is short, e.g. when recovering from a breakdown)."""
        if self.node_up[node_index]:
            raise SimulationError(
                f"node {self.spec.name}/{node_index} repaired while already up"
            )
        self.node_up[node_index] = True
        if len(self.active) < self.spec.active_nodes:
            self.active.add(node_index)
        self.note_breakdown_transition()

    def _find_up_standby(self) -> int | None:
        """An up node outside the active set, if any."""
        for index, is_up in enumerate(self.node_up):
            if is_up and index not in self.active:
                return index
        return None
