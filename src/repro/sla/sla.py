"""Uptime service-level agreement.

``U_SLA`` in the paper is expressed as a percentage (e.g. 98).  The SLA
object converts between the percentage, the fraction, and the monthly
downtime allowance implied by the contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.units import HOURS_PER_MONTH


@dataclass(frozen=True, slots=True)
class UptimeSLA:
    """A contractual uptime target.

    Parameters
    ----------
    target_percent:
        ``U_SLA`` as a percentage in (0, 100], e.g. ``98.0`` or ``99.95``.
    """

    target_percent: float

    def __post_init__(self) -> None:
        if not 0.0 < self.target_percent <= 100.0:
            raise ValidationError(
                f"target_percent must be in (0, 100], got {self.target_percent!r}"
            )

    @property
    def target_fraction(self) -> float:
        """``U_SLA / 100``: the target as a probability."""
        return self.target_percent / 100.0

    @property
    def allowed_downtime_hours_per_month(self) -> float:
        """Downtime hours/month the contract tolerates without penalty."""
        return (1.0 - self.target_fraction) * HOURS_PER_MONTH

    def is_met_by(self, uptime_probability: float) -> bool:
        """True when an expected uptime meets or exceeds the target."""
        return uptime_probability >= self.target_fraction

    def is_met_by_vector(self, uptime_probabilities):
        """Vectorized :meth:`is_met_by` over a float64 uptime array."""
        return uptime_probabilities >= self.target_fraction

    def describe(self) -> str:
        """E.g. ``98.0% uptime (<= 14.60 h/month down)``."""
        return (
            f"{self.target_percent:g}% uptime "
            f"(<= {self.allowed_downtime_hours_per_month:.2f} h/month down)"
        )
