"""Penalty clauses: dollars owed for SLA slippage.

The paper uses a single shape — a flat rate ``S_P`` per hour of
unavailability beyond the SLA (:class:`LinearPenalty`, Eq. 5).  Real
contracts also use tiered rates, monthly caps, and service credits; those
are provided as extensions behind the same interface so the optimizer is
agnostic to penalty shape.

All clauses map *slippage hours per month* (already net of the SLA
allowance; always >= 0) to a monthly dollar amount.

Every clause also answers :meth:`~PenaltyClause.monthly_penalty_vector`
— the same mapping over a float64 array of slippage hours, one element
per candidate.  The vector paths perform the *same float operations in
the same order* as the scalar paths (explicit per-tier masks instead of
``np.searchsorted`` binning, gather/scatter on the still-live lanes
instead of data-dependent ``break``), so each element is byte-identical
to the scalar result; the optimizer's vectorized evaluation backend
relies on that to stay bit-identical to serial evaluation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ValidationError


def _numpy():
    """Import numpy for a vector penalty path, with a clear failure."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - vector callers guard
        raise ValidationError(
            "vectorized penalty evaluation requires numpy "
            "(pip install .[vector])"
        ) from exc
    return numpy


class PenaltyClause(abc.ABC):
    """Interface: monthly penalty as a function of slippage hours."""

    @abc.abstractmethod
    def monthly_penalty(self, slippage_hours: float) -> float:
        """Dollars owed for ``slippage_hours`` of excess downtime.

        Must return 0 for 0 slippage and be non-decreasing in slippage;
        the optimizer's pruning rule (§III-C) relies on monotonicity.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable clause summary."""

    def monthly_penalty_vector(self, slippage_hours):
        """Vectorized :meth:`monthly_penalty` over a float64 array.

        ``slippage_hours`` is a one-dimensional float64 ndarray (one
        element per candidate); the result is a float64 ndarray whose
        every element is byte-identical to the scalar
        :meth:`monthly_penalty` of the same input.  This base
        implementation loops over the scalar method so custom clause
        subclasses stay correct without writing vector code; the
        built-in shapes all override it with true vector math.
        """
        np = _numpy()
        return np.array(
            [self.monthly_penalty(hours) for hours in slippage_hours.tolist()],
            dtype=float,
        )

    def _check_slippage(self, slippage_hours: float) -> None:
        if slippage_hours < 0.0:
            raise ValidationError(
                f"slippage_hours must be >= 0, got {slippage_hours!r}; "
                "slippage is computed net of the SLA allowance"
            )

    def _check_slippage_vector(self, slippage_hours) -> None:
        """Array form of :meth:`_check_slippage` (same error contract)."""
        if slippage_hours.size and bool((slippage_hours < 0.0).any()):
            worst = float(slippage_hours.min())
            raise ValidationError(
                f"slippage_hours must be >= 0, got {worst!r}; "
                "slippage is computed net of the SLA allowance"
            )


@dataclass(frozen=True)
class NoPenalty(PenaltyClause):
    """A contract with no financial penalty (best-effort SLA)."""

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return 0.0

    def monthly_penalty_vector(self, slippage_hours):
        np = _numpy()
        self._check_slippage_vector(slippage_hours)
        return np.zeros(slippage_hours.shape, dtype=float)

    def describe(self) -> str:
        return "no penalty"


@dataclass(frozen=True)
class LinearPenalty(PenaltyClause):
    """The paper's clause: a flat ``S_P`` dollars per slippage hour."""

    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0.0:
            raise ValidationError(
                f"rate_per_hour must be >= 0, got {self.rate_per_hour!r}"
            )

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return self.rate_per_hour * slippage_hours

    def monthly_penalty_vector(self, slippage_hours):
        _numpy()
        self._check_slippage_vector(slippage_hours)
        # Elementwise float64 multiply is the exact scalar operation.
        return self.rate_per_hour * slippage_hours

    def describe(self) -> str:
        return f"${self.rate_per_hour:,.2f}/hour of slippage"


@dataclass(frozen=True)
class TieredPenalty(PenaltyClause):
    """Escalating rates: each tier prices the hours that fall inside it.

    ``tiers`` is a sequence of ``(width_hours, rate_per_hour)`` pairs;
    the final tier's rate applies to all remaining hours when
    ``open_ended`` (the default).  Example: first 2 hours at $100/h, next
    8 at $250/h, everything beyond at $500/h::

        TieredPenalty(((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0)))
    """

    tiers: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValidationError("TieredPenalty requires at least one tier")
        for width, rate in self.tiers:
            if width <= 0.0:
                raise ValidationError(f"tier width must be > 0, got {width!r}")
            if rate < 0.0:
                raise ValidationError(f"tier rate must be >= 0, got {rate!r}")
        widths = [width for width, _ in self.tiers[:-1]]
        if any(width == float("inf") for width in widths):
            raise ValidationError("only the final tier may be open-ended")

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        remaining = slippage_hours
        total = 0.0
        for width, rate in self.tiers:
            hours_in_tier = min(remaining, width)
            total += hours_in_tier * rate
            remaining -= hours_in_tier
            if remaining <= 0.0:
                break
        if remaining > 0.0:
            # Slippage beyond the last closed tier keeps the final rate.
            total += remaining * self.tiers[-1][1]
        return total

    def monthly_penalty_vector(self, slippage_hours):
        np = _numpy()
        self._check_slippage_vector(slippage_hours)
        # Gather/compute/scatter on the still-live lanes mirrors the
        # scalar loop exactly: each lane sees min -> multiply-accumulate
        # -> subtract in tier order and stops contributing once its
        # remainder hits zero, so no dead lane ever computes (which a
        # np.where over all lanes would, diverging for e.g. inf rates).
        remaining = np.array(slippage_hours, dtype=float)
        total = np.zeros(remaining.shape, dtype=float)
        alive = np.arange(remaining.size)
        for width, rate in self.tiers:
            if not alive.size:
                break
            lane_remaining = remaining[alive]
            hours_in_tier = np.minimum(lane_remaining, width)
            total[alive] += hours_in_tier * rate
            lane_remaining = lane_remaining - hours_in_tier
            remaining[alive] = lane_remaining
            alive = alive[lane_remaining > 0.0]
        if alive.size:
            # Slippage beyond the last closed tier keeps the final rate.
            total[alive] += remaining[alive] * self.tiers[-1][1]
        return total

    def describe(self) -> str:
        parts = [f"{width:g}h@${rate:,.0f}" for width, rate in self.tiers]
        return "tiered: " + ", ".join(parts)


@dataclass(frozen=True)
class CappedPenalty(PenaltyClause):
    """Wrap another clause with a monthly cap (common in real contracts)."""

    inner: PenaltyClause
    monthly_cap: float

    def __post_init__(self) -> None:
        if self.monthly_cap < 0.0:
            raise ValidationError(
                f"monthly_cap must be >= 0, got {self.monthly_cap!r}"
            )

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return min(self.inner.monthly_penalty(slippage_hours), self.monthly_cap)

    def monthly_penalty_vector(self, slippage_hours):
        np = _numpy()
        self._check_slippage_vector(slippage_hours)
        inner = self.inner.monthly_penalty_vector(slippage_hours)
        return np.minimum(inner, self.monthly_cap)

    def describe(self) -> str:
        return f"{self.inner.describe()}, capped at ${self.monthly_cap:,.2f}/month"


@dataclass(frozen=True)
class ServiceCreditPenalty(PenaltyClause):
    """Service credits: a fraction of the monthly contract value.

    ``schedule`` maps slippage-hour thresholds to credit fractions; the
    highest threshold not exceeding the observed slippage applies.  This
    is how hyperscaler SLAs are written (e.g. "10% credit below 99.9%").

    Example: 10% credit after 2 slippage hours, 25% after 10::

        ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25)))
    """

    monthly_contract_value: float
    schedule: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.monthly_contract_value < 0.0:
            raise ValidationError(
                "monthly_contract_value must be >= 0, got "
                f"{self.monthly_contract_value!r}"
            )
        if not self.schedule:
            raise ValidationError("ServiceCreditPenalty requires a schedule")
        previous_threshold = -1.0
        previous_fraction = -1.0
        for threshold, fraction in self.schedule:
            if threshold <= previous_threshold:
                raise ValidationError("schedule thresholds must be increasing")
            if not 0.0 <= fraction <= 1.0:
                raise ValidationError(
                    f"credit fraction must be in [0, 1], got {fraction!r}"
                )
            if fraction < previous_fraction:
                raise ValidationError("credit fractions must be non-decreasing")
            previous_threshold = threshold
            previous_fraction = fraction

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        applicable = 0.0
        for threshold, fraction in self.schedule:
            if slippage_hours >= threshold:
                applicable = fraction
        return applicable * self.monthly_contract_value

    def monthly_penalty_vector(self, slippage_hours):
        np = _numpy()
        self._check_slippage_vector(slippage_hours)
        applicable = np.zeros(slippage_hours.shape, dtype=float)
        for threshold, fraction in self.schedule:
            # Successive overwrite: the highest satisfied threshold wins,
            # exactly like the scalar walk over the schedule.
            applicable = np.where(slippage_hours >= threshold, fraction, applicable)
        return applicable * self.monthly_contract_value

    def describe(self) -> str:
        steps = ", ".join(
            f">={threshold:g}h: {fraction * 100:g}%"
            for threshold, fraction in self.schedule
        )
        return (
            f"service credits on ${self.monthly_contract_value:,.2f}/month "
            f"({steps})"
        )
