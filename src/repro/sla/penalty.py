"""Penalty clauses: dollars owed for SLA slippage.

The paper uses a single shape — a flat rate ``S_P`` per hour of
unavailability beyond the SLA (:class:`LinearPenalty`, Eq. 5).  Real
contracts also use tiered rates, monthly caps, and service credits; those
are provided as extensions behind the same interface so the optimizer is
agnostic to penalty shape.

All clauses map *slippage hours per month* (already net of the SLA
allowance; always >= 0) to a monthly dollar amount.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ValidationError


class PenaltyClause(abc.ABC):
    """Interface: monthly penalty as a function of slippage hours."""

    @abc.abstractmethod
    def monthly_penalty(self, slippage_hours: float) -> float:
        """Dollars owed for ``slippage_hours`` of excess downtime.

        Must return 0 for 0 slippage and be non-decreasing in slippage;
        the optimizer's pruning rule (§III-C) relies on monotonicity.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable clause summary."""

    def _check_slippage(self, slippage_hours: float) -> None:
        if slippage_hours < 0.0:
            raise ValidationError(
                f"slippage_hours must be >= 0, got {slippage_hours!r}; "
                "slippage is computed net of the SLA allowance"
            )


@dataclass(frozen=True)
class NoPenalty(PenaltyClause):
    """A contract with no financial penalty (best-effort SLA)."""

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return 0.0

    def describe(self) -> str:
        return "no penalty"


@dataclass(frozen=True)
class LinearPenalty(PenaltyClause):
    """The paper's clause: a flat ``S_P`` dollars per slippage hour."""

    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0.0:
            raise ValidationError(
                f"rate_per_hour must be >= 0, got {self.rate_per_hour!r}"
            )

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return self.rate_per_hour * slippage_hours

    def describe(self) -> str:
        return f"${self.rate_per_hour:,.2f}/hour of slippage"


@dataclass(frozen=True)
class TieredPenalty(PenaltyClause):
    """Escalating rates: each tier prices the hours that fall inside it.

    ``tiers`` is a sequence of ``(width_hours, rate_per_hour)`` pairs;
    the final tier's rate applies to all remaining hours when
    ``open_ended`` (the default).  Example: first 2 hours at $100/h, next
    8 at $250/h, everything beyond at $500/h::

        TieredPenalty(((2.0, 100.0), (8.0, 250.0), (float("inf"), 500.0)))
    """

    tiers: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValidationError("TieredPenalty requires at least one tier")
        for width, rate in self.tiers:
            if width <= 0.0:
                raise ValidationError(f"tier width must be > 0, got {width!r}")
            if rate < 0.0:
                raise ValidationError(f"tier rate must be >= 0, got {rate!r}")
        widths = [width for width, _ in self.tiers[:-1]]
        if any(width == float("inf") for width in widths):
            raise ValidationError("only the final tier may be open-ended")

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        remaining = slippage_hours
        total = 0.0
        for width, rate in self.tiers:
            hours_in_tier = min(remaining, width)
            total += hours_in_tier * rate
            remaining -= hours_in_tier
            if remaining <= 0.0:
                break
        if remaining > 0.0:
            # Slippage beyond the last closed tier keeps the final rate.
            total += remaining * self.tiers[-1][1]
        return total

    def describe(self) -> str:
        parts = [f"{width:g}h@${rate:,.0f}" for width, rate in self.tiers]
        return "tiered: " + ", ".join(parts)


@dataclass(frozen=True)
class CappedPenalty(PenaltyClause):
    """Wrap another clause with a monthly cap (common in real contracts)."""

    inner: PenaltyClause
    monthly_cap: float

    def __post_init__(self) -> None:
        if self.monthly_cap < 0.0:
            raise ValidationError(
                f"monthly_cap must be >= 0, got {self.monthly_cap!r}"
            )

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        return min(self.inner.monthly_penalty(slippage_hours), self.monthly_cap)

    def describe(self) -> str:
        return f"{self.inner.describe()}, capped at ${self.monthly_cap:,.2f}/month"


@dataclass(frozen=True)
class ServiceCreditPenalty(PenaltyClause):
    """Service credits: a fraction of the monthly contract value.

    ``schedule`` maps slippage-hour thresholds to credit fractions; the
    highest threshold not exceeding the observed slippage applies.  This
    is how hyperscaler SLAs are written (e.g. "10% credit below 99.9%").

    Example: 10% credit after 2 slippage hours, 25% after 10::

        ServiceCreditPenalty(5000.0, ((2.0, 0.10), (10.0, 0.25)))
    """

    monthly_contract_value: float
    schedule: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.monthly_contract_value < 0.0:
            raise ValidationError(
                "monthly_contract_value must be >= 0, got "
                f"{self.monthly_contract_value!r}"
            )
        if not self.schedule:
            raise ValidationError("ServiceCreditPenalty requires a schedule")
        previous_threshold = -1.0
        previous_fraction = -1.0
        for threshold, fraction in self.schedule:
            if threshold <= previous_threshold:
                raise ValidationError("schedule thresholds must be increasing")
            if not 0.0 <= fraction <= 1.0:
                raise ValidationError(
                    f"credit fraction must be in [0, 1], got {fraction!r}"
                )
            if fraction < previous_fraction:
                raise ValidationError("credit fractions must be non-decreasing")
            previous_threshold = threshold
            previous_fraction = fraction

    def monthly_penalty(self, slippage_hours: float) -> float:
        self._check_slippage(slippage_hours)
        applicable = 0.0
        for threshold, fraction in self.schedule:
            if slippage_hours >= threshold:
                applicable = fraction
        return applicable * self.monthly_contract_value

    def describe(self) -> str:
        steps = ", ".join(
            f">={threshold:g}h: {fraction * 100:g}%"
            for threshold, fraction in self.schedule
        )
        return (
            f"service credits on ${self.monthly_contract_value:,.2f}/month "
            f"({steps})"
        )
