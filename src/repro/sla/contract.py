"""Contract: an uptime SLA paired with a penalty clause.

This is the commercial input to the brokered service (§II-C items 2):
the customer's uptime requirement and what slippage costs the provider.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sla.penalty import LinearPenalty, PenaltyClause
from repro.sla.sla import UptimeSLA
from repro.sla.slippage import (
    expected_slippage_hours_per_month,
    expected_slippage_hours_per_month_vector,
)


@dataclass(frozen=True, slots=True)
class Contract:
    """An uptime SLA and the financial consequence of missing it."""

    sla: UptimeSLA
    penalty: PenaltyClause

    @classmethod
    def linear(cls, target_percent: float, penalty_per_hour: float) -> "Contract":
        """The paper's contract shape: ``U_SLA`` % and ``S_P`` $/hour."""
        return cls(
            sla=UptimeSLA(target_percent),
            penalty=LinearPenalty(penalty_per_hour),
        )

    def expected_slippage_hours(self, uptime_probability: float) -> float:
        """Expected slippage hours/month at the given uptime."""
        return expected_slippage_hours_per_month(uptime_probability, self.sla)

    def expected_monthly_penalty(self, uptime_probability: float) -> float:
        """Expected penalty dollars/month at the given uptime.

        Zero whenever the uptime meets the SLA (Eq. 5, second line).
        """
        hours = self.expected_slippage_hours(uptime_probability)
        return self.penalty.monthly_penalty(hours)

    def expected_slippage_hours_vector(self, uptime_probabilities):
        """Vectorized :meth:`expected_slippage_hours` (float64 ndarray).

        Each element is byte-identical to the scalar method of the same
        uptime; the vector evaluation backend relies on that.
        """
        return expected_slippage_hours_per_month_vector(
            uptime_probabilities, self.sla
        )

    def expected_monthly_penalty_vector(self, uptime_probabilities):
        """Vectorized :meth:`expected_monthly_penalty` (float64 ndarray)."""
        hours = self.expected_slippage_hours_vector(uptime_probabilities)
        return self.penalty.monthly_penalty_vector(hours)

    def describe(self) -> str:
        """E.g. ``98% uptime (<= 14.60 h/month down); $100.00/hour...``."""
        return f"{self.sla.describe()}; penalty: {self.penalty.describe()}"
