"""Realized SLA compliance: expectation vs what the provider pays.

Eq. 5 prices the penalty on the *expected* uptime: penalty of the mean.
Contracts, however, are settled monthly on *realized* downtime, and
``max(0, X - allowance)`` is convex, so by Jensen's inequality the mean
realized penalty is at least the penalty of the mean — strictly more
whenever downtime straddles the allowance.  A provider pricing HA with
Eq. 5 alone systematically underestimates the payout.

This module bins a simulated downtime timeline into contract months,
applies the penalty clause to each month's realized slippage, and
reports the distribution — giving the broker (and experiment A3) the
gap between the paper's expectation-based TCO and settled reality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.rng import make_rng
from repro.simulation.engine import SimulationOptions, simulate
from repro.sla.contract import Contract
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_HOUR, MINUTES_PER_YEAR, MONTHS_PER_YEAR

#: Settlement-month length used to bin timelines (delta / 12).
MONTH_MINUTES = MINUTES_PER_YEAR / MONTHS_PER_YEAR


@dataclass(frozen=True)
class MonthlySettlement:
    """One contract month's realized outcome."""

    month_index: int
    downtime_minutes: float
    slippage_hours: float
    penalty: float

    @property
    def slipped(self) -> bool:
        """Did this month breach the SLA allowance?"""
        return self.slippage_hours > 0.0


@dataclass(frozen=True)
class ComplianceReport:
    """Realized monthly settlements of one (or more) simulated years."""

    system_name: str
    contract: Contract
    months: tuple[MonthlySettlement, ...]
    expected_monthly_penalty: float

    def __post_init__(self) -> None:
        if not self.months:
            raise ValidationError("compliance report needs at least one month")

    @property
    def mean_realized_penalty(self) -> float:
        """Average dollars actually paid per month."""
        total = 0.0
        for month in self.months:  # chronological order, pinned (REP001)
            total += month.penalty
        return total / len(self.months)

    @property
    def worst_month_penalty(self) -> float:
        """The most expensive single month."""
        return max(month.penalty for month in self.months)

    @property
    def breach_fraction(self) -> float:
        """Fraction of months that breached the SLA."""
        breaches = sum(  # repro: lint-ok[REP001] integer breach count, order-free
            1 for month in self.months if month.slipped
        )
        return breaches / len(self.months)

    @property
    def jensen_gap(self) -> float:
        """Mean realized minus expectation-based penalty (>= 0 - noise).

        The systematic underestimate of Eq. 5's penalty term.
        """
        return self.mean_realized_penalty - self.expected_monthly_penalty

    def describe(self) -> str:
        """Multi-line settlement summary."""
        return "\n".join(
            [
                f"SLA compliance of {self.system_name!r} over "
                f"{len(self.months)} settled months:",
                f"  contract: {self.contract.describe()}",
                f"  months breaching SLA: {self.breach_fraction * 100:.1f}%",
                f"  Eq. 5 expected penalty: ${self.expected_monthly_penalty:,.2f}/mo",
                f"  mean realized penalty:  ${self.mean_realized_penalty:,.2f}/mo "
                f"(worst month ${self.worst_month_penalty:,.2f})",
                f"  Jensen gap (realized - expected): ${self.jensen_gap:,.2f}/mo",
            ]
        )


def _bin_downtime_by_month(
    spans: list[tuple[float, float, str]], horizon_minutes: float
) -> list[float]:
    """Split down spans across month boundaries; returns minutes/month."""
    month_count = int(round(horizon_minutes / MONTH_MINUTES))
    if month_count < 1:
        raise ValidationError(
            f"horizon {horizon_minutes} shorter than one settlement month"
        )
    minutes = [0.0] * month_count
    for start, end, _cause in spans:
        position = start
        while position < end:
            index = min(int(position // MONTH_MINUTES), month_count - 1)
            month_end = (index + 1) * MONTH_MINUTES
            chunk = min(end, month_end) - position
            minutes[index] += chunk
            position += chunk
    return minutes


def measure_compliance(
    system: SystemTopology,
    contract: Contract,
    years: float = 10.0,
    seed: int | random.Random | None = None,
) -> ComplianceReport:
    """Simulate ``years`` of operation and settle each month.

    Returns the realized settlement distribution next to the Eq. 5
    expectation computed from the analytic model.
    """
    if years <= 0.0:
        raise ValidationError(f"years must be > 0, got {years!r}")
    from repro.availability.model import evaluate_availability

    rng = make_rng(seed)
    horizon = years * MINUTES_PER_YEAR
    interval_log: list[tuple[float, float, str]] = []
    simulate(
        system,
        SimulationOptions(horizon_minutes=horizon, seed=rng.getrandbits(64)),
        interval_log=interval_log,
    )

    allowance_minutes = (
        contract.sla.allowed_downtime_hours_per_month * MINUTES_PER_HOUR
    )
    months = []
    for index, downtime in enumerate(_bin_downtime_by_month(interval_log, horizon)):
        slippage_minutes = max(0.0, downtime - allowance_minutes)
        slippage_hours = slippage_minutes / MINUTES_PER_HOUR
        months.append(
            MonthlySettlement(
                month_index=index,
                downtime_minutes=downtime,
                slippage_hours=slippage_hours,
                penalty=contract.penalty.monthly_penalty(slippage_hours),
            )
        )

    analytic_uptime = evaluate_availability(system).uptime_probability
    return ComplianceReport(
        system_name=system.name,
        contract=contract,
        months=tuple(months),
        expected_monthly_penalty=contract.expected_monthly_penalty(analytic_uptime),
    )
