"""SLA, penalty clauses and slippage computation.

The paper's contract input (§II-C) is an uptime SLA percentage ``U_SLA``
plus a slippage penalty ``S_P`` per hour of unavailability beyond the
SLA.  This package models that — and, as extensions, the tiered /
capped / service-credit penalty shapes found in real cloud contracts —
behind one :class:`~repro.sla.penalty.PenaltyClause` interface.
"""

from repro.sla.contract import Contract
from repro.sla.measurement import (
    ComplianceReport,
    MonthlySettlement,
    measure_compliance,
)
from repro.sla.penalty import (
    CappedPenalty,
    LinearPenalty,
    NoPenalty,
    PenaltyClause,
    ServiceCreditPenalty,
    TieredPenalty,
)
from repro.sla.sla import UptimeSLA
from repro.sla.slippage import expected_slippage_hours_per_month

__all__ = [
    "CappedPenalty",
    "ComplianceReport",
    "Contract",
    "MonthlySettlement",
    "measure_compliance",
    "LinearPenalty",
    "NoPenalty",
    "PenaltyClause",
    "ServiceCreditPenalty",
    "TieredPenalty",
    "UptimeSLA",
    "expected_slippage_hours_per_month",
]
