"""Expected SLA slippage, the time term of Eq. 5.

The paper converts the uptime shortfall into monthly slippage hours:

    slippage_hours/month = (U_SLA/100 - U_s) * delta / (12 * 60)

clamped at zero when the system exceeds its SLA (Eq. 5's second line:
no negative penalties).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.sla.sla import UptimeSLA
from repro.units import MINUTES_PER_HOUR, MINUTES_PER_YEAR, MONTHS_PER_YEAR


def expected_slippage_hours_per_month(
    uptime_probability: float,
    sla: UptimeSLA,
) -> float:
    """Expected hours/month of downtime beyond the SLA allowance.

    Returns 0 when ``uptime_probability >= U_SLA/100``.
    """
    if not 0.0 <= uptime_probability <= 1.0:
        raise ValidationError(
            f"uptime_probability must be in [0, 1], got {uptime_probability!r}"
        )
    shortfall = sla.target_fraction - uptime_probability
    if shortfall <= 0.0:
        return 0.0
    return shortfall * MINUTES_PER_YEAR / (MONTHS_PER_YEAR * MINUTES_PER_HOUR)


def expected_slippage_hours_per_month_vector(uptime_probabilities, sla: UptimeSLA):
    """Vectorized :func:`expected_slippage_hours_per_month`.

    Takes a one-dimensional float64 ndarray of uptimes; each element of
    the result is byte-identical to the scalar function of the same
    input (same subtract/multiply/divide sequence; the met-SLA clamp is
    applied by mask instead of an early return).
    """
    import numpy as np

    if uptime_probabilities.size and not bool(
        ((uptime_probabilities >= 0.0) & (uptime_probabilities <= 1.0)).all()
    ):
        bad = uptime_probabilities[
            ~((uptime_probabilities >= 0.0) & (uptime_probabilities <= 1.0))
        ]
        raise ValidationError(
            f"uptime_probability must be in [0, 1], got {float(bad[0])!r}"
        )
    shortfall = sla.target_fraction - uptime_probabilities
    hours = shortfall * MINUTES_PER_YEAR / (MONTHS_PER_YEAR * MINUTES_PER_HOUR)
    return np.where(shortfall <= 0.0, 0.0, hours)
