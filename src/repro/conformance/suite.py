"""The v2 protocol conformance checks and their report.

Consumer-driven contract testing: each check drives a live server over
the real wire (via :class:`~repro.server.client.ServerClient`) and
asserts one observable protocol obligation — never implementation
detail.  Checks are independent; a failure carries enough detail to
diagnose the violating build without re-running.

Outcome semantics:

- ``pass`` — the obligation was exercised and held;
- ``fail`` — the server violated it (the report's exit code goes 1);
- ``skip`` — the obligation could not be exercised against this
  deployment (feature disabled, insufficient telemetry) — recorded, not
  counted as conformant.

Hardening features are *optional per deployment* but their shapes are
not: a server without a rate limiter skips the 429 check, while a
server that emits a 429 missing ``Retry-After`` fails it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.broker.envelope import (
    ENVELOPE_SCHEMA_VERSION,
    ErrorEnvelope,
    RecommendEnvelope,
    ReportEnvelope,
)
from repro.broker.request import three_tier_request
from repro.obs import clock
from repro.obs.trace import new_trace_id
from repro.server.client import ServerClient
from repro.sla.contract import Contract

#: Seconds of polling granted to the async-job replay check.
_JOB_DEADLINE = 60.0


class _Fail(Exception):
    """Internal: the check's obligation was violated."""


class _Skip(Exception):
    """Internal: the obligation cannot be exercised on this deployment."""


@dataclass(frozen=True)
class CheckResult:
    """One check's outcome."""

    check: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ConformanceReport:
    """The full suite outcome for one server."""

    url: str
    results: tuple[CheckResult, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> int:
        return sum(1 for result in self.results if result.status == "pass")

    @property
    def failed(self) -> int:
        return sum(1 for result in self.results if result.status == "fail")

    @property
    def skipped(self) -> int:
        return sum(1 for result in self.results if result.status == "skip")

    @property
    def ok(self) -> bool:
        """Conformant: every exercised check passed."""
        return self.failed == 0

    def to_dict(self) -> dict:
        return {
            "schema_version": ENVELOPE_SCHEMA_VERSION,
            "kind": "conformance-report",
            "url": self.url,
            "ok": self.ok,
            "passed": self.passed,
            "failed": self.failed,
            "skipped": self.skipped,
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Human-readable report (the CLI's stdout)."""
        marks = {"pass": "PASS", "fail": "FAIL", "skip": "skip"}
        lines = [f"v2 conformance against {self.url}:"]
        for result in self.results:
            line = f"  [{marks[result.status]}] {result.check}"
            if result.detail:
                line += f" — {result.detail}"
            lines.append(line)
        verdict = "CONFORMANT" if self.ok else "NOT CONFORMANT"
        lines.append(
            f"{verdict}: {self.passed} passed, {self.failed} failed, "
            f"{self.skipped} skipped"
        )
        return "\n".join(lines)


class ConformanceSuite:
    """Run the protocol checks against one server URL.

    ``auth_token`` is the credential for servers running with auth; the
    auth-shape check additionally probes *without* it to verify the
    401/403 envelopes.  Checks run in a fixed order with the
    rate-limit burst probe last, so its token spend cannot starve the
    earlier checks.
    """

    def __init__(
        self,
        url: str,
        auth_token: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.auth_token = auth_token
        self.timeout = timeout
        # The main client waits out 429s (rate_limit_budget) so a
        # limited deployment doesn't fail unrelated checks; the probe
        # client surfaces them (budget 0) for the shape checks.
        self.client = ServerClient.from_url(
            self.url,
            timeout=timeout,
            auth_token=auth_token,
            idempotency=False,
            rate_limit_budget=10.0,
        )
        self.probe = ServerClient.from_url(
            self.url,
            timeout=timeout,
            auth_token=auth_token,
            idempotency=False,
            rate_limit_budget=0.0,
        )

    def run(self) -> ConformanceReport:
        """Execute every check; exceptions become failures, not crashes."""
        checks = (
            ("health-endpoint", self.check_health),
            ("error-envelope-shape", self.check_error_envelope),
            ("envelope-key-discipline", self.check_key_discipline),
            ("recommend-round-trip", self.check_recommend_round_trip),
            ("trace-header-behaviour", self.check_trace_header),
            ("idempotent-recommend-replay", self.check_recommend_replay),
            ("idempotent-submit-replay", self.check_submit_replay),
            ("idempotent-ingest-replay", self.check_ingest_replay),
            ("job-result-replay", self.check_job_result_replay),
            ("cross-worker-replay", self.check_cross_worker_replay),
            ("auth-error-shape", self.check_auth_shape),
            ("rate-limit-shape", self.check_rate_limit_shape),
        )
        results = []
        for name, check in checks:
            try:
                detail = check() or ""
                results.append(CheckResult(name, "pass", detail))
            except _Skip as skip:
                results.append(CheckResult(name, "skip", str(skip)))
            except _Fail as failure:
                results.append(CheckResult(name, "fail", str(failure)))
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                results.append(
                    CheckResult(
                        name, "fail", f"{type(exc).__name__}: {exc}"
                    )
                )
        return ConformanceReport(url=self.url, results=tuple(results))

    # -- request material ---------------------------------------------------

    def _envelope(self, **overrides) -> RecommendEnvelope:
        """A minimal valid recommend envelope (pruned three-tier)."""
        request = three_tier_request(
            Contract.linear(98.0, 100.0), compute_nodes=2
        )
        return RecommendEnvelope(request=request, **overrides)

    @staticmethod
    def _ingest_line() -> str:
        return json.dumps(
            {
                "kind": "exposure",
                "provider": "conformance-probe",
                "component_kind": "probe-node",
                "node_count": 1,
                "horizon_minutes": 1.0,
            }
        )

    @staticmethod
    def _error_envelope(status: int, text: str) -> ErrorEnvelope:
        try:
            envelope = ErrorEnvelope.from_json(text)
        except Exception as exc:  # noqa: BLE001 - shape check
            raise _Fail(
                f"{status} response body is not a parseable ErrorEnvelope: "
                f"{exc}; body: {text[:200]!r}"
            ) from exc
        if envelope.status != status:
            raise _Fail(
                f"error envelope status field {envelope.status} disagrees "
                f"with the HTTP status {status}"
            )
        return envelope

    def _post_recommend(self, envelope: RecommendEnvelope) -> tuple[int, str]:
        status, text = self.client.request_raw(
            "POST", "/v2/recommend", envelope.to_json(), idempotent_replay=True
        )
        if status == 422:
            raise _Skip(
                "server has insufficient telemetry for the probe request "
                "(observe providers before serving to exercise this check)"
            )
        return status, text

    # -- checks -------------------------------------------------------------

    def check_health(self) -> str:
        status, text = self.client.request_raw("GET", "/healthz")
        if status != 200:
            raise _Fail(f"GET /healthz returned {status}, want 200")
        payload = json.loads(text)
        if payload.get("kind") != "health" or payload.get("status") != "ok":
            raise _Fail(f"unexpected health document: {text[:200]!r}")
        return "healthy"

    def check_error_envelope(self) -> str:
        status, text = self.client.request_raw(
            "GET", "/v2/definitely-not-a-route"
        )
        if status != 404:
            raise _Fail(f"unknown route returned {status}, want 404")
        envelope = self._error_envelope(status, text)
        if not envelope.error:
            raise _Fail("404 envelope is missing its error slug")
        return f"404 envelope slug {envelope.error!r}"

    def check_key_discipline(self) -> str:
        payload = self._envelope().to_dict()
        payload["unexpected_field"] = True
        status, text = self.client.request_raw(
            "POST", "/v2/recommend", json.dumps(payload)
        )
        if status != 400:
            raise _Fail(
                f"envelope with an unknown key returned {status}, want 400"
            )
        self._error_envelope(status, text)
        return "unknown envelope keys rejected with a 400 envelope"

    def check_recommend_round_trip(self) -> str:
        envelope = self._envelope(request_id="conform-round-trip")
        status, text = self._post_recommend(envelope)
        if status != 200:
            raise _Fail(f"POST /v2/recommend returned {status}, want 200")
        report = ReportEnvelope.from_json(text)
        if report.request_id != "conform-round-trip":
            raise _Fail(
                f"report echoed request_id {report.request_id!r}, "
                "want 'conform-round-trip'"
            )
        return "request_id echoed through a full report round-trip"

    def check_trace_header(self) -> str:
        trace_id = new_trace_id()
        envelope = self._envelope(
            trace=f"00-{trace_id}-{'ab' * 8}-01"
        )
        status, _ = self._post_recommend(envelope)
        if status != 200:
            raise _Fail(f"traced recommend returned {status}, want 200")
        header = self.client.last_response_headers.get("x-repro-trace-id")
        if header is None:
            return "trace field accepted (tracing off: no trace header)"
        if header != trace_id:
            raise _Fail(
                f"X-Repro-Trace-Id {header!r} does not honour the "
                f"client-stamped trace id {trace_id!r}"
            )
        return "client-stamped trace id honoured in X-Repro-Trace-Id"

    def _assert_replay(
        self, first: tuple[int, str], second: tuple[int, str], what: str
    ) -> None:
        if second[0] != first[0]:
            raise _Fail(
                f"replayed {what} returned {second[0]}, original {first[0]}"
            )
        if second[1] != first[1]:
            raise _Fail(
                f"replayed {what} body is not byte-identical to the "
                f"original ({len(second[1])} vs {len(first[1])} chars)"
            )
        marker = self.client.last_response_headers.get(
            "idempotency-replayed"
        )
        if marker != "true":
            raise _Fail(
                f"repeated keyed {what} was re-executed, not replayed "
                "(no 'Idempotency-Replayed: true' header)"
            )

    def check_recommend_replay(self) -> str:
        envelope = self._envelope(idempotency_key=new_trace_id())
        first = self._post_recommend(envelope)
        if first[0] != 200:
            raise _Fail(f"keyed recommend returned {first[0]}, want 200")
        second = self._post_recommend(envelope)
        self._assert_replay(first, second, "recommend")
        return "byte-identical replay with the replay marker"

    def check_submit_replay(self) -> str:
        envelope = self._envelope(idempotency_key=new_trace_id())
        first = self.client.request_raw(
            "POST", "/v2/jobs", envelope.to_json(), idempotent_replay=True
        )
        if first[0] != 202:
            raise _Fail(f"keyed submit returned {first[0]}, want 202")
        second = self.client.request_raw(
            "POST", "/v2/jobs", envelope.to_json(), idempotent_replay=True
        )
        self._assert_replay(first, second, "submit")
        job_ids = {
            json.loads(first[1])["job_id"],
            json.loads(second[1])["job_id"],
        }
        if len(job_ids) != 1:
            raise _Fail(
                f"duplicate keyed submissions created distinct jobs: "
                f"{sorted(job_ids)}"
            )
        return f"one job ({job_ids.pop()}) for duplicate submissions"

    def check_ingest_replay(self) -> str:
        key = new_trace_id()
        line = self._ingest_line()
        first = self.client.request_raw(
            "POST",
            "/v2/ingest",
            line,
            headers={"Idempotency-Key": key},
            idempotent_replay=True,
        )
        if first[0] != 202:
            raise _Fail(f"keyed ingest returned {first[0]}, want 202")
        second = self.client.request_raw(
            "POST",
            "/v2/ingest",
            line,
            headers={"Idempotency-Key": key},
            idempotent_replay=True,
        )
        self._assert_replay(first, second, "ingest")
        return "repeated ingest acked from the replay table (no recount)"

    def check_job_result_replay(self) -> str:
        envelope = self._envelope(idempotency_key=new_trace_id())
        status, text = self.client.request_raw(
            "POST", "/v2/jobs", envelope.to_json(), idempotent_replay=True
        )
        if status != 202:
            raise _Fail(f"submit for result replay returned {status}")
        job_id = json.loads(text)["job_id"]
        deadline = clock.monotonic() + min(_JOB_DEADLINE, self.timeout)
        while True:
            first = self.client.request_raw(
                "GET", f"/v2/jobs/{job_id}/result"
            )
            if first[0] != 202:
                break
            if clock.monotonic() >= deadline:
                raise _Skip(
                    f"job {job_id} did not finish within the deadline"
                )
            time.sleep(0.05)
        second = self.client.request_raw("GET", f"/v2/jobs/{job_id}/result")
        self._assert_replay(first, second, "job result")
        return (
            f"terminal result ({first[0]}) replayed byte-identically "
            "after retrieval"
        )

    def check_cross_worker_replay(self) -> str:
        """Replay must precede routing: same key, different body.

        Partitioned deployments (``repro serve --workers N``) route
        requests to workers by content key, so a retry whose body
        drifted (a client rebuilding the request) would land on a
        *different* worker than the original.  The idempotency
        obligation is on the key alone: the deployment must answer with
        the original bytes — which requires the replay table to sit at
        the edge, in front of routing.  Single-process servers satisfy
        this trivially; gateways only satisfy it if the table was never
        pushed down into the workers.
        """
        key = new_trace_id()
        first_envelope = self._envelope(idempotency_key=key)
        first = self._post_recommend(first_envelope)
        if first[0] != 200:
            raise _Fail(
                f"keyed recommend returned {first[0]}, want 200"
            )
        # Same key, different request content — routes to a different
        # partition under content-keyed routing.
        drifted = RecommendEnvelope(
            request=three_tier_request(
                Contract.linear(98.0, 150.0), compute_nodes=3
            ),
            idempotency_key=key,
        )
        second = self._post_recommend(drifted)
        self._assert_replay(first, second, "cross-partition recommend")
        return (
            "drifted-body retry under the original key replayed the "
            "original bytes"
        )

    def check_auth_shape(self) -> str:
        bare = ServerClient.from_url(
            self.url,
            timeout=self.timeout,
            idempotency=False,
            rate_limit_budget=0.0,
        )
        status, text = bare.request_raw("GET", "/v2/jobs/conform-auth-probe")
        if status != 401:
            raise _Skip(
                f"credential-less probe returned {status}; auth appears "
                "to be disabled on this deployment"
            )
        envelope = self._error_envelope(status, text)
        challenge = bare.last_response_headers.get("www-authenticate", "")
        if "bearer" not in challenge.lower():
            raise _Fail(
                "401 response is missing a Bearer WWW-Authenticate "
                f"challenge (got {challenge!r})"
            )
        wrong = ServerClient.from_url(
            self.url,
            timeout=self.timeout,
            auth_token=f"conform-wrong-{new_trace_id()}",
            idempotency=False,
            rate_limit_budget=0.0,
        )
        status, text = wrong.request_raw("GET", "/v2/jobs/conform-auth-probe")
        if status != 403:
            raise _Fail(
                f"wrong-token probe returned {status}, want 403"
            )
        self._error_envelope(status, text)
        return f"401 ({envelope.error}) without and 403 with a wrong token"

    def check_rate_limit_shape(self) -> str:
        limited: tuple[int, str] | None = None
        for _ in range(50):
            status, text = self.probe.request_raw(
                "GET", "/v2/jobs/conform-rate-probe"
            )
            if status == 429:
                limited = (status, text)
                break
        if limited is None:
            raise _Skip(
                "no 429 within 50 rapid requests; the rate limiter "
                "appears to be disabled on this deployment"
            )
        envelope = self._error_envelope(*limited)
        retry_after = self.probe.last_response_headers.get("retry-after")
        if retry_after is None:
            raise _Fail("429 response is missing the Retry-After header")
        try:
            seconds = float(retry_after)
        except ValueError as exc:
            raise _Fail(
                f"Retry-After {retry_after!r} is not a number of seconds"
            ) from exc
        if seconds <= 0.0:
            raise _Fail(f"Retry-After must be positive, got {seconds!r}")
        return (
            f"429 ({envelope.error}) with Retry-After {seconds:.3f}s"
        )


def run_conformance(
    url: str, auth_token: str | None = None, timeout: float = 30.0
) -> ConformanceReport:
    """Run the full suite against ``url`` and return its report."""
    return ConformanceSuite(url, auth_token=auth_token, timeout=timeout).run()
