"""Machine-readable conformance suite for the v2 envelope protocol.

Third-party client and server builds run this against any live broker
server (``repro conform --url http://host:port``) to verify the wire
contract PRs 2–9 define: envelope round-trips and key discipline,
idempotent replay byte-identity, 429/401 error shapes, and
trace-header behaviour.  The result is a :class:`ConformanceReport`
with per-check pass/fail/skip outcomes and a JSON form for CI
artifacts.
"""

from repro.conformance.suite import (
    CheckResult,
    ConformanceReport,
    ConformanceSuite,
    run_conformance,
)

__all__ = [
    "CheckResult",
    "ConformanceReport",
    "ConformanceSuite",
    "run_conformance",
]
