"""The initial invariant rule pack: REP001 — REP008.

Every rule encodes an invariant a previous PR established by hand and
the test suite can only sample:

==========  ==============================================================
``REP001``  Float accumulation must be explicit and ordered (no ``sum``/
            ``np.sum``/``math.fsum`` over float terms, no accumulating
            out of ``set``/``dict.values()`` iteration) in ``optimizer/``,
            ``sla/`` and ``availability/`` — the bit-identical
            cross-backend guarantee depends on exact operation order.
``REP002``  No blocking calls (pool shutdown, engine close, joins,
            socket/file IO) while holding a fast lock (``self._lock``) —
            the PR 5 eviction deadlock class.
``REP003``  No blocking calls (``time.sleep``, sync sockets/HTTP,
            ``subprocess``, file IO) inside ``async def`` in ``server/``
            — CPU/IO work must go through ``run_in_executor``.
``REP004``  Resource lifecycle: ``SharedMemory``/executor/``Manager``
            creations need a cleanup path in the same class, must not
            leak on exception windows, and ``.acquire()`` leases need a
            paired ``.release()``.
``REP005``  Wire envelopes round-trip: every dataclass field of every
            envelope in ``broker/envelope.py`` must appear in both the
            ``to_dict`` and ``from_dict`` key sets.
``REP006``  Registry parity: ``ENGINE_BACKENDS`` ↔ ``_BACKEND_TYPES``
            agree and every backend implements the ``Backend`` surface;
            every concrete ``PenaltyClause`` either overrides
            ``monthly_penalty_vector`` or is marked
            ``# repro: scalar-fallback``.
``REP007``  No ad-hoc clock (``time.time``/``time.monotonic``/
            ``time.perf_counter``/``datetime.now``) or global-RNG
            (``random.random`` etc.) reads anywhere outside the
            sanctioned sources — randomness comes from ``rng.py``,
            time comes from ``repro.obs.clock`` (the one module
            allowed to touch the ``time`` module directly).
``REP008``  Fork safety in ``server/``: processes are spawned, never
            forked — the serving stack already runs threads (the event
            loop's executor, ingest shard workers), and forking a
            threaded process inherits locks in whatever state the
            other threads held them.
==========  ==============================================================

``REP000`` (suppression hygiene / unparseable files) is built into the
driver itself — see :mod:`repro.analysis.core`.
"""

from __future__ import annotations

import ast

from repro.analysis.core import INTEGRITY_RULE_ID, LintContext, Rule

__all__ = [
    "DEFAULT_RULES",
    "RULE_DESCRIPTIONS",
    "FloatAccumulationRule",
    "LockDisciplineRule",
    "AsyncHygieneRule",
    "ResourceLifecycleRule",
    "WireRoundTripRule",
    "RegistryParityRule",
    "WallClockRule",
    "ForkSafetyRule",
]


def _dotted(expr: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _enclosing_statement(node: ast.AST, ctx: LintContext) -> ast.stmt | None:
    """The nearest ancestor-or-self that is a statement."""
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = ctx.parent(current)
    return current


def _sibling_after(stmt: ast.stmt, parent: ast.AST) -> ast.stmt | None:
    """The statement right after ``stmt`` in whichever block holds it."""
    for _, value in ast.iter_fields(parent):
        if isinstance(value, list) and stmt in value:
            index = value.index(stmt)
            if index + 1 < len(value):
                following = value[index + 1]
                return following if isinstance(following, ast.stmt) else None
            return None
    return None


# -- REP001 ----------------------------------------------------------------

class FloatAccumulationRule(Rule):
    """Order-sensitive float reductions must be explicit ordered loops."""

    rule_id = "REP001"
    title = "deterministic float accumulation"
    paths = ("optimizer/*", "sla/*", "availability/*")

    _REDUCERS = {"sum", "math.fsum"}
    _NUMPY_ROOTS = {"np", "numpy"}

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            flagged = dotted in self._REDUCERS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("sum", "prod")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in self._NUMPY_ROOTS
            )
            if flagged:
                ctx.report(
                    self,
                    node,
                    f"order-sensitive reduction {dotted or 'np reduction'}() "
                    "in a bit-identical code path",
                    hint=(
                        "accumulate with an explicit ordered loop "
                        "(total = 0.0; total += term) so the float op order "
                        "is pinned; suppress with a justification if the "
                        "operands are order-free integers"
                    ),
                )
            return
        if isinstance(node, ast.For) and self._unordered_iter(node.iter):
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.AugAssign) and isinstance(
                        inner.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
                    ):
                        ctx.report(
                            self,
                            node,
                            "accumulation over set/dict-.values() iteration; "
                            "the operation order is a container "
                            "implementation detail",
                            hint=(
                                "iterate a keyed, explicitly ordered "
                                "sequence (e.g. the topology's cluster "
                                "order) instead"
                            ),
                        )
                        return

    @staticmethod
    def _unordered_iter(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "values"
                and not expr.args
            ):
                return True
        return False


# -- REP002 ----------------------------------------------------------------

class LockDisciplineRule(Rule):
    """Never call blocking teardown/IO while holding a fast lock."""

    rule_id = "REP002"
    title = "no blocking calls under fast locks"
    paths = ()

    _BLOCKING_ATTRS = {
        "shutdown",
        "close",
        "join",
        "unlink",
        "terminate",
        "wait",
        "recv",
        "sendall",
        "connect",
        "result",
    }

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call) or not ctx.held_locks:
            return
        if self._is_condition_wait(node):
            return  # cond.wait() releases the lock it was built on
        dotted = _dotted(node.func)
        blocking = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._BLOCKING_ATTRS
        ) or dotted in ("open", "time.sleep")
        if blocking:
            lock = ctx.held_locks[-1]
            ctx.report(
                self,
                node,
                f"potentially blocking call {dotted or node.func.attr}() "
                f"while holding {lock}",
                hint=(
                    "collect the resource under the lock and "
                    "close/join/shutdown it after releasing (see "
                    "PoolRegistry._release), or rename the lock if it is "
                    "a slow-path lock that may legitimately block "
                    "(e.g. _build_lock)"
                ),
            )

    @staticmethod
    def _is_condition_wait(node: ast.Call) -> bool:
        """``cond.wait()`` *releases* the lock the Condition wraps."""
        if not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in ("wait", "wait_for", "notify", "notify_all"):
            return False
        receiver = node.func.value
        name = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id
            if isinstance(receiver, ast.Name)
            else ""
        )
        return name.lstrip("_").lower().endswith(("cond", "condition"))


# -- REP003 ----------------------------------------------------------------

class AsyncHygieneRule(Rule):
    """No blocking calls on the event loop in ``server/``."""

    rule_id = "REP003"
    title = "async handlers never block the event loop"
    paths = ("server/*",)

    _BLOCKING_DOTTED = {"time.sleep", "os.system", "os.popen", "open"}
    _BLOCKING_ROOTS = {"socket", "subprocess", "urllib", "requests"}
    _BLOCKING_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes"}

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call) or not ctx.in_async_function:
            return
        dotted = _dotted(node.func)
        root = dotted.split(".", 1)[0] if dotted else None
        blocking = (
            dotted in self._BLOCKING_DOTTED
            or root in self._BLOCKING_ROOTS
            or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BLOCKING_ATTRS
            )
        )
        if blocking:
            ctx.report(
                self,
                node,
                f"blocking call {dotted or '<call>'}() inside an "
                "async def — this stalls every connection on the loop",
                hint=(
                    "run it via loop.run_in_executor(None, ...) like the "
                    "recommend/ingest handlers, or use the asyncio-native "
                    "equivalent"
                ),
            )


# -- REP004 ----------------------------------------------------------------

class ResourceLifecycleRule(Rule):
    """Created resources need reachable cleanup, even on error paths."""

    rule_id = "REP004"
    title = "resource lifecycle pairing"
    paths = ()

    _CREATIONS = {
        "SharedMemory",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "Manager",
        "Pool",
    }
    _CLEANUP_ATTRS = {
        "close",
        "shutdown",
        "unlink",
        "release",
        "terminate",
        "stop",
        "join",
    }

    def __init__(self) -> None:
        self._class_creations: dict[ast.ClassDef, list[ast.Call]] = {}
        self._class_cleanup: set[ast.ClassDef] = set()
        self._class_acquires: dict[ast.ClassDef, list[ast.Call]] = {}
        self._class_releases: set[ast.ClassDef] = set()

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call):
            return
        cls = ctx.current_class
        if isinstance(node.func, ast.Attribute):
            if cls is not None and node.func.attr in self._CLEANUP_ATTRS:
                self._class_cleanup.add(cls)
            if cls is not None and node.func.attr == "release":
                self._class_releases.add(cls)
        terminal = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        if terminal in self._CREATIONS:
            if cls is not None:
                self._class_creations.setdefault(cls, []).append(node)
            self._check_exception_window(node, ctx, terminal)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and cls is not None
        ):
            stmt = _enclosing_statement(node, ctx)
            if isinstance(stmt, ast.Assign):
                self._class_acquires.setdefault(cls, []).append(node)

    def _check_exception_window(
        self, node: ast.Call, ctx: LintContext, terminal: str
    ) -> None:
        """A local-variable creation must not leak if a later stmt raises."""
        stmt = _enclosing_statement(node, ctx)
        if not isinstance(stmt, ast.Assign):
            return  # returned/with-item/expression: ownership moves out
        if not all(isinstance(target, ast.Name) for target in stmt.targets):
            return  # stored on self/container: reachable from cleanup
        # Only a Try ancestor protects the window: an enclosing `with`
        # (a lock, another resource) does not clean up what its *body*
        # creates.
        if any(
            isinstance(ancestor, ast.Try)
            for ancestor in self._ancestors_in_function(stmt, ctx)
        ):
            return
        parent = ctx.parent(stmt)
        following = (
            _sibling_after(stmt, parent) if parent is not None else None
        )
        while following is None and parent is not None and not isinstance(
            parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            stmt_above = _enclosing_statement(parent, ctx)
            if stmt_above is None or stmt_above is stmt:
                break
            parent = ctx.parent(stmt_above)
            following = (
                _sibling_after(stmt_above, parent)
                if parent is not None
                else None
            )
            stmt = stmt_above
        if following is None or isinstance(following, ast.Try):
            return  # nothing follows, or the very next statement handles it
        ctx.report(
            self,
            node,
            f"{terminal}(...) assigned to a local with statements "
            "following outside any try: an exception before cleanup "
            "registration leaks the resource",
            hint=(
                "wrap the window in try/except BaseException that "
                "closes/unlinks/shuts down the fresh resource, then "
                "re-raises"
            ),
        )

    @staticmethod
    def _ancestors_in_function(node: ast.AST, ctx: LintContext):
        for ancestor in ctx.ancestors(node):
            yield ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return

    def finish(self, tree: ast.Module, ctx: LintContext) -> None:
        for cls, creations in self._class_creations.items():
            if cls in self._class_cleanup:
                continue
            for node in creations:
                ctx.report(
                    self,
                    node,
                    f"class {cls.name} creates a pooled/OS resource but "
                    "has no close/shutdown/unlink/release path",
                    hint=(
                        "add a close()/shutdown() method (and ideally "
                        "__exit__) that tears the resource down "
                        "deterministically"
                    ),
                )
        for cls, acquires in self._class_acquires.items():
            if cls in self._class_releases:
                continue
            for node in acquires:
                ctx.report(
                    self,
                    node,
                    f"class {cls.name} acquires a lease but never calls "
                    ".release()",
                    hint=(
                        "pair every PoolHandle/lock acquire with a release "
                        "on every exit path"
                    ),
                )


# -- REP005 ----------------------------------------------------------------

class WireRoundTripRule(Rule):
    """Envelope dataclass fields must survive to_dict/from_dict."""

    rule_id = "REP005"
    title = "wire envelopes round-trip field-by-field"
    paths = ("broker/envelope.py",)

    _METADATA_KEYS = {"schema_version", "kind"}

    def finish(self, tree: ast.Module, ctx: LintContext) -> None:
        for cls in tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "to_dict" not in methods:
                continue
            fields = self._dataclass_fields(cls)
            to_keys = self._returned_dict_keys(methods["to_dict"])
            if "from_dict" not in methods:
                ctx.report(
                    self,
                    cls,
                    f"envelope {cls.name} serializes (to_dict) but cannot "
                    "be parsed back (no from_dict)",
                    hint=(
                        "add a from_dict classmethod validating the key "
                        "set, so clients can round-trip every wire object"
                    ),
                )
                continue
            from_keys = self._string_constants(methods["from_dict"])
            for name in fields:
                if to_keys and name not in to_keys:
                    ctx.report(
                        self,
                        cls,
                        f"{cls.name}.{name} is a dataclass field missing "
                        "from the to_dict key set",
                        hint="serialize every field or drop it",
                    )
                if name not in from_keys:
                    ctx.report(
                        self,
                        cls,
                        f"{cls.name}.{name} is a dataclass field never "
                        "read back in from_dict",
                        hint="parse every field or drop it",
                    )
            for key in sorted(to_keys - self._METADATA_KEYS - from_keys):
                ctx.report(
                    self,
                    cls,
                    f"{cls.name} serializes key {key!r} that from_dict "
                    "never reads",
                    hint="wire keys must round-trip both directions",
                )

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef) -> tuple[str, ...]:
        names = []
        for item in cls.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
                and "ClassVar" not in ast.dump(item.annotation)
            ):
                names.append(item.target.id)
        return tuple(names)

    @staticmethod
    def _returned_dict_keys(func: ast.FunctionDef) -> set[str]:
        keys: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Dict
            ):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.add(key.value)
        return keys

    @staticmethod
    def _string_constants(func: ast.FunctionDef) -> set[str]:
        return {
            node.value
            for node in ast.walk(func)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }


# -- REP006 ----------------------------------------------------------------

class RegistryParityRule(Rule):
    """Backend registry and penalty-clause vector parity."""

    rule_id = "REP006"
    title = "backend/clause registry parity"
    paths = ("optimizer/engine.py", "sla/*")

    _BACKEND_SURFACE = ("evaluate_stream", "close")
    _SCALAR_FALLBACK_MARKER = "repro: scalar-fallback"

    def finish(self, tree: ast.Module, ctx: LintContext) -> None:
        classes = {
            node.name: node
            for node in tree.body
            if isinstance(node, ast.ClassDef)
        }
        self._check_backend_registry(tree, classes, ctx)
        self._check_penalty_clauses(classes, ctx)

    # -- ENGINE_BACKENDS <-> _BACKEND_TYPES ---------------------------------

    def _check_backend_registry(self, tree, classes, ctx: LintContext) -> None:
        backends = types_map = None
        backends_node = types_node = None
        for node in tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "ENGINE_BACKENDS" and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                backends = tuple(
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                )
                backends_node = node
            elif target.id == "_BACKEND_TYPES" and isinstance(
                node.value, ast.Dict
            ):
                types_map = {
                    key.value: value.id
                    for key, value in zip(node.value.keys, node.value.values)
                    if isinstance(key, ast.Constant)
                    and isinstance(value, ast.Name)
                }
                types_node = node
        if backends is None or types_map is None:
            return
        if set(backends) != set(types_map):
            ctx.report(
                self,
                types_node or backends_node,
                "ENGINE_BACKENDS and _BACKEND_TYPES disagree: "
                f"{sorted(set(backends) ^ set(types_map))}",
                hint="every declared backend needs a factory and vice versa",
            )
        for backend, class_name in types_map.items():
            cls = classes.get(class_name)
            if cls is None:
                continue  # imported factory: out of static reach
            surface = self._resolved_names(cls, classes)
            missing = [
                method
                for method in self._BACKEND_SURFACE
                if method not in surface
            ]
            if "name" not in surface:
                missing.append("name attribute")
            if missing:
                ctx.report(
                    self,
                    cls,
                    f"backend {backend!r} ({class_name}) is missing the "
                    f"Backend protocol surface: {missing}",
                    hint=(
                        "implement evaluate_stream(engine, enumerated), "
                        "close() and a name class attribute"
                    ),
                )

    @staticmethod
    def _resolved_names(cls: ast.ClassDef, classes) -> set[str]:
        """Method/attr names defined on ``cls`` or its in-module bases."""
        names: set[str] = set()
        queue = [cls]
        seen = set()
        while queue:
            current = queue.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for item in current.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(item.name)
                elif isinstance(item, ast.Assign):
                    names.update(
                        target.id
                        for target in item.targets
                        if isinstance(target, ast.Name)
                    )
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
            for base in current.bases:
                if isinstance(base, ast.Name) and base.id in classes:
                    queue.append(classes[base.id])
        return names

    # -- PenaltyClause subclasses -------------------------------------------

    def _check_penalty_clauses(self, classes, ctx: LintContext) -> None:
        clause_names = {"PenaltyClause"}
        # Transitive closure of in-module subclasses.
        changed = True
        while changed:
            changed = False
            for cls in classes.values():
                if cls.name in clause_names:
                    continue
                if any(
                    isinstance(base, ast.Name) and base.id in clause_names
                    for base in cls.bases
                ):
                    clause_names.add(cls.name)
                    changed = True
        for cls in classes.values():
            if cls.name == "PenaltyClause" or cls.name not in clause_names:
                continue
            if self._is_abstract(cls):
                continue
            own = {
                item.name
                for item in cls.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "monthly_penalty_vector" in own:
                continue
            if self._SCALAR_FALLBACK_MARKER in ctx.segment_lines(cls):
                continue
            ctx.report(
                self,
                cls,
                f"penalty clause {cls.name} neither overrides "
                "monthly_penalty_vector nor is marked scalar-fallback",
                hint=(
                    "write the vector path in exact scalar op order, or "
                    "add '# repro: scalar-fallback' with a reason to use "
                    "the base class's scalar loop"
                ),
            )

    @staticmethod
    def _is_abstract(cls: ast.ClassDef) -> bool:
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in item.decorator_list:
                    name = _dotted(decorator)
                    if name and name.split(".")[-1] == "abstractmethod":
                        return True
        return False


# -- REP007 ----------------------------------------------------------------

class WallClockRule(Rule):
    """No ad-hoc clock or global-RNG reads outside the sanctioned sources.

    Randomness routes through ``rng.py``; time routes through
    ``repro.obs.clock`` — the single module blessed to call the ``time``
    module directly, so a reviewer can audit every clock read in one
    place and tests can fake time by patching one module.
    """

    rule_id = "REP007"
    title = "no ad-hoc clocks / global RNG"
    paths = ()

    _CLOCKS = {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
    }
    _MONOTONIC = {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
    _GLOBAL_RANDOM = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "normalvariate",
        "lognormvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
    }

    def applies_to(self, scope_path: str, config) -> bool:
        # rng.py owns randomness; obs/clock.py owns time.  Both get to
        # call the underlying stdlib primitives raw.
        if scope_path.endswith(("rng.py", "obs/clock.py")):
            return False
        return super().applies_to(scope_path, config)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call):
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self._CLOCKS:
            ctx.report(
                self,
                node,
                f"wall-clock read {dotted}() — results must not depend "
                "on when they run",
                hint=(
                    "route through repro.obs.clock (wall_clock() for "
                    "display anchors only, monotonic()/perf_counter() "
                    "for durations), or plumb an injectable clock like "
                    "BrokerSession._clock"
                ),
            )
            return
        if dotted in self._MONOTONIC:
            ctx.report(
                self,
                node,
                f"ad-hoc monotonic clock read {dotted}() — all time "
                "reads route through the sanctioned source",
                hint=(
                    "call repro.obs.clock.monotonic() (deadlines/TTLs) "
                    "or repro.obs.clock.perf_counter() (span timings, "
                    "benchmarks) instead"
                ),
            )
            return
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in self._GLOBAL_RANDOM
        ):
            ctx.report(
                self,
                node,
                f"global RNG call {dotted}() — shared interpreter state "
                "breaks reproducibility",
                hint=(
                    "take an explicit seed or random.Random via "
                    "repro.rng.make_rng / spawn"
                ),
            )


# -- REP008 ----------------------------------------------------------------

class ForkSafetyRule(Rule):
    """Server processes are spawned, never forked.

    The serving stack is threaded before any child process exists: the
    event loop's default executor runs handler work, ingest shards run
    on their own threads, and ``start_in_thread`` hosts the loop itself
    on one.  ``fork()`` clones only the calling thread but the *whole*
    address space — every lock another thread held at fork time stays
    locked forever in the child (the classic post-fork deadlock).  The
    gateway therefore builds workers from
    ``multiprocessing.get_context("spawn")``; this rule keeps fork (and
    the fork-defaulting conveniences) from creeping back in.
    """

    rule_id = "REP008"
    title = "spawn, never fork, in server/ processes"
    paths = ("server/*",)

    _FORK_CALLS = {"os.fork", "os.forkpty"}
    #: Process constructors bound to the *default* start method (fork on
    #: Linux).  ``<ctx>.Process`` from a spawn context is the sanctioned
    #: idiom and is not matched: only these exact roots are.
    _DEFAULT_PROCESS = {"multiprocessing.Process", "mp.Process", "Process"}
    _FORKING_METHODS = {"fork", "forkserver"}

    _HINT = (
        'build children via multiprocessing.get_context("spawn")'
        ".Process(...) as repro.server.gateway does"
    )

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call):
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self._FORK_CALLS:
            ctx.report(
                self,
                node,
                f"{dotted}() in a server module — forking a threaded "
                "process inherits locks mid-flight",
                hint=self._HINT,
            )
            return
        if dotted in self._DEFAULT_PROCESS:
            ctx.report(
                self,
                node,
                f"{dotted}(...) uses the platform-default start method "
                "(fork on Linux) in a threaded server process",
                hint=self._HINT,
            )
            return
        name = dotted.rsplit(".", 1)[-1]
        if name not in ("get_context", "set_start_method"):
            return
        method = None
        if node.args:
            first = node.args[0]
            if not isinstance(first, ast.Constant):
                return  # dynamic method name: out of static reach
            method = first.value
        if method is None or method in self._FORKING_METHODS:
            what = (
                f'{dotted}("{method}")' if method is not None
                else f"{dotted}() with no method"
            )
            ctx.report(
                self,
                node,
                f"{what} selects a fork-based (or platform-default) "
                "start method in a server module",
                hint=self._HINT,
            )


DEFAULT_RULES: tuple[type[Rule], ...] = (
    FloatAccumulationRule,
    LockDisciplineRule,
    AsyncHygieneRule,
    ResourceLifecycleRule,
    WireRoundTripRule,
    RegistryParityRule,
    WallClockRule,
    ForkSafetyRule,
)

#: ``--list-rules`` output: id -> (title, scope patterns).
RULE_DESCRIPTIONS: dict[str, tuple[str, tuple[str, ...]]] = {
    INTEGRITY_RULE_ID: (
        "lint integrity: justified suppressions, parseable files",
        (),
    ),
    **{
        rule.rule_id: (rule.title, rule.paths)
        for rule in DEFAULT_RULES
    },
}
