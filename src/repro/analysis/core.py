"""The invariant linter's rule engine: one AST pass, many rules.

The repo's headline guarantee — bit-identical results across every
evaluation backend and serving path — rests on a set of *unwritten*
rules the test suites can only sample: explicit-order float
accumulation, no blocking work under fast locks, no blocking calls on
the event loop, paired resource lifecycles, symmetric wire envelopes.
This module makes those rules executable.  Each invariant is a
:class:`Rule` with a stable ``REPxxx`` id; :func:`run_lint` parses each
source file once and drives every applicable rule over a single AST
walk with parent/scope/lock tracking, collecting :class:`Finding`\\ s.

Suppressions are inline and must be justified::

    total = sum(widths)  # repro: lint-ok[REP001] integer widths, order-free

A suppression comment with no justification text is itself a finding
(:data:`INTEGRITY_RULE_ID`), so every exemption documents *why* the
invariant does not apply.  A comment-only suppression line covers the
next source line, for statements that are awkward to annotate inline.

Rules are scoped per directory (``Rule.paths`` fnmatch patterns against
the path relative to the ``repro`` package root), so e.g. the float
determinism rule runs over ``optimizer/``, ``sla/`` and
``availability/`` without flagging the CLI's cosmetic arithmetic.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "LintReport",
    "Rule",
    "Suppressions",
    "iter_python_files",
    "run_lint",
]

#: Rule id reserved for the linter's own integrity findings: unparseable
#: files and suppression comments with no justification.
INTEGRITY_RULE_ID = "REP000"

#: Schema version of the JSON report (bumped on shape changes).
REPORT_SCHEMA_VERSION = 1

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[A-Za-z0-9_,\s]+)\](?P<why>[^#]*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file:line."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def format_text(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class _SuppressionEntry:
    rule_ids: tuple[str, ...]
    justified: bool
    line: int  # the line the comment sits on (for REP000 anchoring)


class Suppressions:
    """Per-file ``# repro: lint-ok[REPxxx]`` comment index.

    A trailing comment covers its own line; a comment-only line covers
    the next line.  ``use()`` records which suppressions actually fired
    so the report can count them.
    """

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, _SuppressionEntry] = {}
        self.used = 0
        for number, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            rule_ids = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            entry = _SuppressionEntry(
                rule_ids=rule_ids,
                justified=bool(match.group("why").strip()),
                line=number,
            )
            covered = number
            if text.strip().startswith("#"):
                covered = number + 1  # own-line comment covers the next line
            self._by_line[covered] = entry

    def entries(self) -> tuple[_SuppressionEntry, ...]:
        return tuple(
            self._by_line[line] for line in sorted(self._by_line)
        )

    def use(self, line: int, rule_id: str) -> bool:
        """True (and counted) when ``rule_id`` is suppressed on ``line``."""
        entry = self._by_line.get(line)
        if entry is None or rule_id not in entry.rule_ids:
            return False
        if not entry.justified:
            # An unjustified suppression never silences anything; the
            # integrity rule reports it instead.
            return False
        self.used += 1
        return True


@dataclass
class LintConfig:
    """Knobs for one lint run.

    ``select`` restricts which rule ids run (``None`` = all registered).
    ``rule_paths`` overrides a rule's directory scope, keyed by rule id
    — fixture tests use it to point a rule at arbitrary trees.
    ``fast_lock_names`` are the attribute names REP002 treats as
    never-block-while-held locks (slow-path locks like ``_build_lock``
    are exempt by naming convention).
    """

    select: tuple[str, ...] | None = None
    rule_paths: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    fast_lock_names: tuple[str, ...] = ("_lock", "lock")


class Rule:
    """Base class: one invariant, one stable id.

    Subclasses set ``rule_id``/``title``/``paths`` and override
    :meth:`visit` (called once per AST node, in source order, with the
    driver's context stacks live) and/or :meth:`finish` (called once
    after the walk, for whole-module invariants).  Rules are
    instantiated fresh per file, so they may keep per-module state.
    """

    rule_id: str = ""
    title: str = ""
    #: fnmatch patterns against the package-relative path ("" = all).
    paths: tuple[str, ...] = ()

    def applies_to(self, scope_path: str, config: LintConfig) -> bool:
        patterns = tuple(config.rule_paths.get(self.rule_id, self.paths))
        if not patterns:
            return True
        return any(fnmatch.fnmatch(scope_path, pattern) for pattern in patterns)

    def visit(self, node: ast.AST, ctx: "LintContext") -> None:
        """Per-node hook (source order, scope stacks live)."""

    def finish(self, tree: ast.Module, ctx: "LintContext") -> None:
        """Whole-module hook, after the walk."""


class LintContext:
    """What the driver knows at the current point of the walk.

    Exposes the parent map, the enclosing function/class stacks, and
    the lexically-held fast locks (masked inside nested ``def``\\ s,
    which do not run under the enclosing ``with``).
    """

    def __init__(
        self,
        *,
        display_path: str,
        scope_path: str,
        source: str,
        config: LintConfig,
    ) -> None:
        self.display_path = display_path
        self.scope_path = scope_path
        self.source = source
        self.config = config
        self.suppressions = Suppressions(source)
        self.findings: list[Finding] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        # Mixed stack of ("func", node) / ("class", node) / ("lock", name)
        # markers; locks are only "held" below their function boundary.
        self._stack: list[tuple[str, Any]] = []

    # -- structure ---------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    @property
    def function_stack(self) -> tuple[ast.AST, ...]:
        return tuple(node for kind, node in self._stack if kind == "func")

    @property
    def class_stack(self) -> tuple[ast.ClassDef, ...]:
        return tuple(node for kind, node in self._stack if kind == "class")

    @property
    def current_class(self) -> ast.ClassDef | None:
        classes = self.class_stack
        return classes[-1] if classes else None

    @property
    def in_async_function(self) -> bool:
        functions = self.function_stack
        return bool(functions) and isinstance(
            functions[-1], ast.AsyncFunctionDef
        )

    @property
    def held_locks(self) -> tuple[str, ...]:
        """Fast-lock names lexically held at this point of the walk.

        A ``def`` nested inside a ``with self._lock:`` body does *not*
        run under the lock, so markers above the innermost function
        boundary are masked.
        """
        held: list[str] = []
        for kind, value in self._stack:
            if kind == "func":
                held.clear()
            elif kind == "lock":
                held.append(value)
        return tuple(held)

    def segment_lines(self, node: ast.AST) -> str:
        """The raw source lines spanned by ``node`` (comments included)."""
        lines = self.source.splitlines()
        start = getattr(node, "lineno", 1) - 1
        end = getattr(node, "end_lineno", start + 1)
        return "\n".join(lines[start:end])

    # -- reporting ---------------------------------------------------------

    def report(
        self, rule: Rule, node: ast.AST, message: str, hint: str = ""
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.use(line, rule.rule_id):
            return
        self.findings.append(
            Finding(
                rule_id=rule.rule_id,
                path=self.display_path,
                line=line,
                col=col,
                message=message,
                hint=hint,
            )
        )


def _lock_name(
    expr: ast.AST, fast_lock_names: Sequence[str]
) -> str | None:
    """The fast-lock name a ``with`` item guards, or ``None``."""
    if isinstance(expr, ast.Attribute) and expr.attr in fast_lock_names:
        return expr.attr
    if isinstance(expr, ast.Name) and expr.id in fast_lock_names:
        return expr.id
    return None


class _ModuleLinter:
    """One file's single-pass walk, dispatching to the active rules."""

    def __init__(self, ctx: LintContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.rules = rules

    def run(self, tree: ast.Module) -> None:
        self._walk(tree)
        for rule in self.rules:
            rule.finish(tree, self.ctx)
        self._check_suppression_integrity()

    def _walk(self, node: ast.AST) -> None:
        ctx = self.ctx
        pushed = 0
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx._stack.append(("func", node))
            pushed += 1
        elif isinstance(node, ast.ClassDef):
            ctx._stack.append(("class", node))
            pushed += 1
        elif isinstance(node, ast.With):
            for item in node.items:
                name = _lock_name(
                    item.context_expr, ctx.config.fast_lock_names
                )
                if name is not None:
                    ctx._stack.append(("lock", name))
                    pushed += 1
        for rule in self.rules:
            rule.visit(node, ctx)
        for child in ast.iter_child_nodes(node):
            ctx._parents[child] = node
            self._walk(child)
        for _ in range(pushed):
            ctx._stack.pop()

    def _check_suppression_integrity(self) -> None:
        ctx = self.ctx
        for entry in ctx.suppressions.entries():
            if entry.justified:
                continue
            ctx.findings.append(
                Finding(
                    rule_id=INTEGRITY_RULE_ID,
                    path=ctx.display_path,
                    line=entry.line,
                    col=0,
                    message=(
                        "suppression "
                        f"lint-ok[{','.join(entry.rule_ids)}] has no "
                        "justification text"
                    ),
                    hint=(
                        "write WHY the invariant does not apply, e.g. "
                        "'# repro: lint-ok[REP001] integer counters, "
                        "order-free'"
                    ),
                )
            )


# -- file discovery ---------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, deterministically sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        yield from sorted(
            candidate
            for candidate in path.rglob("*.py")
            if not any(part in _SKIP_DIRS for part in candidate.parts)
        )


def _scope_path(path: Path, root: Path | None) -> str:
    """The path rules are scoped by: relative to the ``repro`` package.

    Falls back to the path relative to the scanned root (fixture trees
    have no ``repro`` component), then to the bare file name.
    """
    parts = list(path.parts)
    for marker in ("repro", "src"):
        if marker in parts:
            index = len(parts) - 1 - parts[::-1].index(marker)
            tail = parts[index + 1:]
            if tail:
                return "/".join(tail)
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.name


# -- the run ---------------------------------------------------------------

@dataclass(frozen=True)
class LintReport:
    """Everything one lint run produced."""

    findings: tuple[Finding, ...]
    files_checked: int
    suppressions_used: int
    rule_ids: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "rules": list(self.rule_ids),
            "files_checked": self.files_checked,
            "suppressions_used": self.suppressions_used,
            "finding_count": len(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        lines = [finding.format_text() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s); {self.suppressions_used} suppression(s) honoured"
        )
        return "\n".join(lines)


def run_lint(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[type[Rule]] | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the selected rules.

    ``rules`` is a sequence of :class:`Rule` *classes* (instantiated
    fresh per file); ``None`` uses the registered default pack.  Files
    that fail to parse produce an :data:`INTEGRITY_RULE_ID` finding
    rather than aborting the run.
    """
    if rules is None:
        from repro.analysis.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    config = config or LintConfig()
    if config.select is not None:
        known = {rule_class.rule_id for rule_class in rules}
        unknown = set(config.select) - known - {INTEGRITY_RULE_ID}
        if unknown:
            from repro.errors import ValidationError

            raise ValidationError(
                f"unknown lint rule id(s) {sorted(unknown)}; "
                f"known: {sorted(known | {INTEGRITY_RULE_ID})}"
            )
        rules = [
            rule_class
            for rule_class in rules
            if rule_class.rule_id in config.select
        ]

    findings: list[Finding] = []
    files_checked = 0
    suppressions_used = 0
    path_list = list(paths)
    roots = [Path(raw) for raw in path_list if Path(raw).is_dir()]
    root = roots[0] if roots else None
    for path in iter_python_files(path_list):
        files_checked += 1
        display = path.as_posix()
        scope = _scope_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(
                    rule_id=INTEGRITY_RULE_ID,
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"file cannot be linted: {exc}",
                )
            )
            continue
        ctx = LintContext(
            display_path=display,
            scope_path=scope,
            source=source,
            config=config,
        )
        active = [
            rule
            for rule in (rule_class() for rule_class in rules)
            if rule.applies_to(scope, config)
        ]
        # An empty rule list still runs: suppression integrity is global.
        _ModuleLinter(ctx, active).run(tree)
        findings.extend(ctx.findings)
        suppressions_used += ctx.suppressions.used
    findings.sort(key=lambda finding: finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        files_checked=files_checked,
        suppressions_used=suppressions_used,
        rule_ids=tuple(
            sorted({rule_class.rule_id for rule_class in rules})
        ),
    )
