"""Static analysis for the repo's unwritten invariants.

``repro.analysis`` is an AST-based rule-engine linter: the driver in
:mod:`repro.analysis.core` parses each file once and runs every
applicable :class:`Rule` over a single walk; the rule pack in
:mod:`repro.analysis.rules` encodes the determinism, lock-discipline,
async-hygiene, resource-lifecycle, wire-round-trip and registry-parity
invariants PRs 1–6 established by hand.  ``repro lint`` is the CLI
front end and the CI gate.
"""

from repro.analysis.core import (
    INTEGRITY_RULE_ID,
    REPORT_SCHEMA_VERSION,
    Finding,
    LintConfig,
    LintContext,
    LintReport,
    Rule,
    Suppressions,
    iter_python_files,
    run_lint,
)
from repro.analysis.rules import DEFAULT_RULES, RULE_DESCRIPTIONS

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "INTEGRITY_RULE_ID",
    "LintConfig",
    "LintContext",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "RULE_DESCRIPTIONS",
    "Rule",
    "Suppressions",
    "iter_python_files",
    "run_lint",
]
