"""CLI entry point: ``python -m repro`` / ``repro-broker``.

Subcommands
-----------
``case-study``
    Reproduce the paper's §III option table and Figure 10 summary.
``evaluate FILE``
    Evaluate Eq. 1-4 availability for a topology JSON file.
``simulate FILE``
    Monte Carlo-simulate a topology and compare with the analytic model.
``recommend``
    Run the brokered service over the built-in providers for a
    three-tier request with a given SLA and penalty.
``sweep``
    Sweep the penalty rate for the case study and show where the
    recommendation changes.
``scenario NAME``
    Optimize one of the named example scenarios.
``serve``
    Run the asyncio broker server (v2 envelopes over HTTP) with sharded
    telemetry ingestion, a ``/metrics`` endpoint, and optional
    protocol hardening (``--auth-token``, ``--rate-limit``,
    idempotency replay).
``conform``
    Run the machine-readable v2 protocol conformance suite against a
    live server (``--url``), emitting a JSON report.
``ingest FILE``
    Shard-ingest a JSONL telemetry trace locally, or POST it to a
    running server with ``--url``.
``trace [TRACE_ID]``
    List recent request traces (or render one trace's span tree) from a
    live ``serve --trace`` server via ``--url``, or from an exported
    span JSONL file via ``--file``.
``lint [PATHS]``
    Run the ``repro.analysis`` invariant linter (determinism, lock
    discipline, async hygiene, resource lifecycle, wire round-trip,
    registry parity) over source trees; nonzero exit on findings.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.broker.reports import render_option_table, render_summary
from repro.broker.request import STRATEGIES, three_tier_request

#: Mirrors ``repro.server.ingest.INGEST_BACKENDS`` — inlined so the CLI
#: only imports the server stack for the ``serve``/``ingest`` commands
#: (a drift test in tests/test_cli.py keeps the two in sync).
INGEST_BACKENDS = ("thread", "process")
from repro.optimizer.engine import ENGINE_BACKENDS, ENGINE_MODES
from repro.broker.service import BrokerService
from repro.cli.formatting import render_table
from repro.cloud.providers import all_providers
from repro.errors import ReproError
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.pruned import pruned_optimize
from repro.availability.model import evaluate_availability
from repro.simulation.validation import validate_against_model
from repro.sla.contract import Contract
from repro.topology.serialization import system_from_json
from repro.units import MINUTES_PER_YEAR
from repro.workloads.case_study import AS_IS_OPTION_ID, case_study_problem
from repro.workloads.scenarios import SCENARIOS, scenario


def _env_flag(name: str) -> bool:
    """Boolean environment default: unset/empty/0/false/no mean off."""
    return os.environ.get(name, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-broker",
        description="Uptime-optimized cloud architecture as a brokered service",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "case-study", help="reproduce the paper's §III case study"
    )

    evaluate = commands.add_parser(
        "evaluate", help="evaluate availability of a topology JSON file"
    )
    evaluate.add_argument("file", type=Path, help="topology JSON path")

    simulate = commands.add_parser(
        "simulate", help="Monte Carlo-simulate a topology JSON file"
    )
    simulate.add_argument("file", type=Path, help="topology JSON path")
    simulate.add_argument(
        "--replications", type=int, default=50, help="number of runs"
    )
    simulate.add_argument(
        "--years", type=float, default=1.0, help="simulated years per run"
    )
    simulate.add_argument("--seed", type=int, default=None, help="RNG seed")

    recommend = commands.add_parser(
        "recommend", help="brokered recommendation across built-in providers"
    )
    recommend.add_argument(
        "--sla", type=float, default=98.0, help="uptime SLA percent"
    )
    recommend.add_argument(
        "--penalty", type=float, default=100.0, help="penalty $/hour"
    )
    recommend.add_argument(
        "--compute-nodes", type=int, default=3, help="active compute nodes"
    )
    recommend.add_argument(
        "--observe-years",
        type=float,
        default=3.0,
        help="synthetic telemetry horizon per provider",
    )
    recommend.add_argument(
        "--extended",
        action="store_true",
        help="include the extended (future-work) HA catalog",
    )
    recommend.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="pruned",
        help="search strategy for the k^n enumeration",
    )
    recommend.add_argument(
        "--engine",
        choices=ENGINE_MODES,
        default="incremental",
        help="candidate evaluation mode: cached per-cluster combination "
        "(default) or full-topology fallback",
    )
    recommend.add_argument(
        "--parallel",
        action="store_true",
        help="legacy alias for --backend thread",
    )
    recommend.add_argument(
        "--backend",
        choices=ENGINE_BACKENDS,
        default=None,
        help="evaluation backend for exhaustive sweeps: serial (default), "
        "thread (GIL-bound chunking), process (true multi-core) or vector "
        "(numpy-vectorized combine; needs the [vector] extra, degrades to "
        "serial without it).  Applies to --strategy brute-force — pruned "
        "and branch-and-bound searches are inherently sequential.  "
        "Defaults honour $REPRO_BACKEND.",
    )
    recommend.add_argument("--seed", type=int, default=None, help="RNG seed")

    sweep = commands.add_parser(
        "sweep", help="sweep penalty rates over the case study"
    )
    sweep.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0],
        help="penalty rates ($/hour) to sweep",
    )

    run_scenario = commands.add_parser(
        "scenario", help="optimize one of the named example scenarios"
    )
    run_scenario.add_argument(
        "name", choices=sorted(SCENARIOS), help="scenario name"
    )

    advise = commands.add_parser(
        "advise", help="single-move upgrade advice from a deployed case-study option"
    )
    advise.add_argument(
        "--current",
        nargs=3,
        metavar=("COMPUTE", "STORAGE", "NETWORK"),
        default=["hypervisor-n+1", "raid-1", "dual-gateway"],
        help="deployed technology per layer ('none' for bare)",
    )
    advise.add_argument(
        "--migration-cost", type=float, default=0.0,
        help="one-off dollars per move",
    )
    advise.add_argument(
        "--amortization-months", type=int, default=12,
        help="months to amortize the migration cost over",
    )

    compliance = commands.add_parser(
        "compliance",
        help="settle simulated months against the case-study contract",
    )
    compliance.add_argument(
        "--option", type=int, default=3, choices=range(1, 9),
        help="case-study option id to settle",
    )
    compliance.add_argument(
        "--years", type=float, default=10.0, help="simulated years to settle"
    )
    compliance.add_argument("--seed", type=int, default=None, help="RNG seed")

    importance = commands.add_parser(
        "importance",
        help="rank a topology's clusters by availability importance",
    )
    importance.add_argument(
        "file", type=Path, nargs="?", default=None,
        help="topology JSON path (defaults to the case-study base system)",
    )

    commands.add_parser(
        "pareto", help="cost/uptime Pareto frontier of the case study"
    )

    batch = commands.add_parser(
        "batch",
        help="serve a JSON-lines file of request envelopes in one session",
    )
    batch.add_argument(
        "file", type=Path,
        help="JSONL path: one recommend-request envelope per line",
    )
    batch.add_argument(
        "--observe-years", type=float, default=3.0,
        help="synthetic telemetry horizon per provider",
    )
    batch.add_argument("--seed", type=int, default=None, help="RNG seed")
    batch.add_argument(
        "--max-workers", type=int, default=4,
        help="session worker-pool width for concurrent requests",
    )
    batch.add_argument(
        "--cache-capacity", type=int, default=16,
        help="engines retained by the cross-request cache (LRU)",
    )
    batch.add_argument(
        "--backend", choices=ENGINE_BACKENDS, default=None,
        help="default evaluation backend for envelopes that do not pin one",
    )
    batch.add_argument(
        "--output", type=Path, default=None,
        help="write report envelopes to this file instead of stdout",
    )

    serve = commands.add_parser(
        "serve",
        help="run the asyncio broker server (v2 envelopes over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8348,
        help="TCP port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int,
        default=int(os.environ.get("REPRO_WORKERS", "0") or "0"),
        help="worker processes behind a hardened gateway (0 serves "
        "in-process — the default; N >= 1 spawns N workers, each "
        "owning a disjoint partition of the engine cache, with auth / "
        "rate limiting / idempotency replay running once at the "
        "gateway); defaults to $REPRO_WORKERS when set",
    )
    serve.add_argument(
        "--observe-years", type=float, default=3.0,
        help="synthetic telemetry horizon per provider before serving",
    )
    serve.add_argument("--seed", type=int, default=None, help="RNG seed")
    serve.add_argument(
        "--shards", type=int, default=4,
        help="telemetry ingestion shard workers",
    )
    serve.add_argument(
        "--ingest-backend", choices=INGEST_BACKENDS, default="thread",
        help="shard worker backend (process adds parse parallelism)",
    )
    serve.add_argument(
        "--merge-interval", type=float, default=0.5,
        help="seconds between telemetry snapshot merges",
    )
    serve.add_argument(
        "--max-workers", type=int, default=4,
        help="session worker-pool width for concurrent requests",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=16,
        help="engines retained by the cross-request cache (LRU)",
    )
    serve.add_argument(
        "--backend", choices=ENGINE_BACKENDS, default=None,
        help="default evaluation backend for requests that do not pin one",
    )
    serve.add_argument(
        "--finished-job-ttl", type=float, default=3600.0,
        help="seconds before finished (even never-retrieved) jobs are "
        "evicted from the session job table; 0 disables age-based "
        "eviction (the retrieved-jobs count cap still applies)",
    )
    serve.add_argument(
        "--megabatch", action="store_true",
        help="stack concurrent same-engine vector requests into one "
        "numpy pass (needs --backend vector or per-request vector "
        "backends; results are bit-identical either way)",
    )
    serve.add_argument(
        "--megabatch-window", type=float, default=None,
        help="seconds a megabatch leader waits for co-scheduled "
        "requests (default 0.005)",
    )
    serve.add_argument(
        "--megabatch-max-rows", type=int, default=None,
        help="soft cap on candidate rows stacked per megabatch vector "
        "pass (default 65536)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        default=_env_flag("REPRO_TRACE"),
        help="record per-request span traces (GET /v2/traces, "
        "X-Repro-Trace-Id response headers, span-duration histograms "
        "in /metrics); defaults on when $REPRO_TRACE is set",
    )
    serve.add_argument(
        "--trace-capacity", type=int, default=256,
        help="recent traces retained by the in-memory store (ring "
        "buffer; oldest evicted beyond this)",
    )
    serve.add_argument(
        "--slow-request-threshold", type=float, default=None,
        help="log a structured warning for requests slower than this "
        "many seconds (implies --trace)",
    )
    serve.add_argument(
        "--profile-requests", action="store_true",
        help="run cProfile around each traced recommend and log the "
        "hottest functions (implies --trace; heavy — debugging only)",
    )
    serve.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_AUTH_TOKEN") or None,
        help="require 'Authorization: Bearer <token>' on every request "
        "(401/403 ErrorEnvelopes otherwise; /healthz and /metrics stay "
        "open); defaults to $REPRO_AUTH_TOKEN when set",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None,
        help="per-client token-bucket rate limit in requests/second "
        "(over-limit requests get 429 + Retry-After; off by default)",
    )
    serve.add_argument(
        "--rate-limit-burst", type=int, default=None,
        help="token-bucket burst capacity (default: max(1, rate))",
    )
    serve.add_argument(
        "--idempotency-capacity", type=int, default=1024,
        help="responses retained by the per-principal idempotency "
        "replay table (LRU)",
    )

    conform = commands.add_parser(
        "conform",
        help="run the v2 protocol conformance suite against a live server",
    )
    conform.add_argument(
        "--url", required=True,
        help="server base URL (e.g. http://127.0.0.1:8348)",
    )
    conform.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_AUTH_TOKEN") or None,
        help="bearer token for servers running with auth; defaults to "
        "$REPRO_AUTH_TOKEN when set",
    )
    conform.add_argument(
        "--json", type=Path, default=None, dest="json_path",
        help="also write the machine-readable JSON report to this path",
    )
    conform.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout and async-job polling deadline",
    )

    ingest = commands.add_parser(
        "ingest",
        help="shard-ingest a JSONL telemetry trace (local or via --url)",
    )
    ingest.add_argument(
        "file", type=Path,
        help="JSONL path: one telemetry record per line "
        "(exposure/failure/repair/failover)",
    )
    ingest.add_argument(
        "--shards", type=int, default=4, help="shard workers (local mode)"
    )
    ingest.add_argument(
        "--backend", choices=INGEST_BACKENDS, default="thread",
        help="shard worker backend (local mode)",
    )
    ingest.add_argument(
        "--url", default=None,
        help="POST the trace to a running `repro serve` instead "
        "(e.g. http://127.0.0.1:8348)",
    )

    trace = commands.add_parser(
        "trace",
        help="inspect request traces from a serve --trace server or an "
        "exported span JSONL file",
    )
    trace.add_argument(
        "trace_id", nargs="?", default=None,
        help="render this trace's span tree (omit to list traces)",
    )
    trace.add_argument(
        "--url", default=None,
        help="a running `repro serve --trace` server "
        "(e.g. http://127.0.0.1:8348)",
    )
    trace.add_argument(
        "--file", type=Path, default=None,
        help="read spans from an exported JSONL file instead of a server",
    )
    trace.add_argument(
        "--min-duration", type=float, default=0.0,
        help="only list traces whose root span took at least this many "
        "seconds",
    )
    trace.add_argument(
        "--limit", type=int, default=50,
        help="maximum traces to list",
    )

    lint = commands.add_parser(
        "lint",
        help="check source trees against the repo's invariant rules "
        "(REP001-REP008); exits 1 on findings",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--format", dest="output_format", choices=("text", "json"),
        default="text", help="report format",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and their scopes, then exit",
    )

    return parser


def _cmd_case_study() -> int:
    from repro.optimizer.engine import EvaluationEngine

    problem = case_study_problem()
    with EvaluationEngine(problem) as engine:
        result = brute_force_optimize(problem, engine=engine)
        print(render_option_table(result, title="Case study (Figures 3-9):"))
        print()
        print(render_summary(result, result.option(AS_IS_OPTION_ID)))
        print()
        pruned = pruned_optimize(problem, engine=engine)
        skipped = [f"#{i}" for i in range(1, 9) if not any(
            option.option_id == i for option in pruned.options
        )]
        print(
            f"Pruned search: {pruned.evaluations}/{pruned.space_size} "
            f"evaluated, clipped {', '.join(skipped) or 'none'} (§III-C)"
        )
        print(f"Evaluation engine: {engine.stats.describe()}")
    return 0


def _cmd_evaluate(path: Path) -> int:
    system = system_from_json(path.read_text())
    print(evaluate_availability(system).describe())
    return 0


def _cmd_simulate(path: Path, replications: int, years: float, seed: int | None) -> int:
    system = system_from_json(path.read_text())
    report = validate_against_model(
        system,
        replications=replications,
        horizon_minutes=years * MINUTES_PER_YEAR,
        seed=seed,
    )
    print(report.describe())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    broker = BrokerService(all_providers())
    print(f"Observing providers ({args.observe_years:g} synthetic years each)...")
    events = broker.observe_all(years=args.observe_years, seed=args.seed)
    print(f"  ingested {events} telemetry events")
    request = three_tier_request(
        Contract.linear(args.sla, args.penalty),
        compute_nodes=args.compute_nodes,
        extended_catalog=args.extended,
        strategy=args.strategy,
        engine=args.engine,
        parallel=args.parallel,
        backend=args.backend,
    )
    with broker.session() as session:
        report = session.recommend(request)
    print(report.describe())
    for recommendation in report.recommendations:
        if recommendation.engine_stats is not None:
            print(
                f"  [{recommendation.provider_name}] engine: "
                f"{recommendation.engine_stats.describe()}"
            )
    print()
    best = report.best
    print(render_option_table(
        best.result, title=f"Option table on {best.provider_name}:"
    ))
    return 0


def _cmd_sweep(rates: list[float]) -> int:
    rows = []
    for rate in rates:
        problem = case_study_problem()
        problem = type(problem)(
            base_system=problem.base_system,
            registry=problem.registry,
            contract=Contract.linear(98.0, rate),
            labor_rate=problem.labor_rate,
        )
        result = brute_force_optimize(problem)
        best = result.best
        rows.append(
            (
                f"${rate:,.0f}",
                best.label,
                f"{best.tco.uptime_probability * 100:.4f}%",
                f"${best.tco.total:,.2f}",
            )
        )
    print("Penalty-rate sweep over the case study (SLA fixed at 98%):")
    print(render_table(("S_P/hour", "recommended", "U_s", "TCO/mo"), rows))
    return 0


def _cmd_scenario(name: str) -> int:
    entry = scenario(name)
    print(f"Scenario {entry.name!r}: {entry.summary}")
    result = pruned_optimize(entry.problem)
    print(render_option_table(result, title="Evaluated options:"))
    print()
    print(f"recommended: {result.best.label} "
          f"(TCO ${result.best.tco.total:,.2f}/month)")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.optimizer.advisor import advise_upgrades

    advice = advise_upgrades(
        case_study_problem(),
        tuple(args.current),
        migration_cost=args.migration_cost,
        amortization_months=args.amortization_months,
    )
    print(advice.describe())
    return 0


def _cmd_compliance(args: argparse.Namespace) -> int:
    from repro.sla.measurement import measure_compliance
    from repro.workloads.case_study import case_study_contract

    result = brute_force_optimize(case_study_problem())
    option = result.option(args.option)
    report = measure_compliance(
        option.system, case_study_contract(), years=args.years, seed=args.seed
    )
    print(f"Settling {option.label}:")
    print(report.describe())
    return 0


def _cmd_importance(path: Path | None) -> int:
    from repro.availability.importance import importance_analysis
    from repro.workloads.case_study import case_study_base_system

    if path is None:
        system = case_study_base_system()
    else:
        system = system_from_json(path.read_text())
    report = importance_analysis(system)
    print(report.describe())
    print(
        f"priority: protect {report.most_critical().name!r} first "
        f"(up to {report.most_critical().improvement_potential * 100:.3f}% "
        "uptime recoverable)"
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.broker.envelope import RecommendEnvelope
    from repro.errors import ValidationError

    lines = [
        line for line in args.file.read_text().splitlines() if line.strip()
    ]
    if not lines:
        raise ValidationError(f"batch file {args.file} contains no envelopes")
    envelopes = [RecommendEnvelope.from_json(line) for line in lines]

    broker = BrokerService(all_providers())
    print(
        f"Observing providers ({args.observe_years:g} synthetic years each)...",
        file=sys.stderr,
    )
    broker.observe_all(years=args.observe_years, seed=args.seed)
    with broker.session(
        cache_capacity=args.cache_capacity,
        max_workers=args.max_workers,
        backend=args.backend,
    ) as session:
        job_ids = [session.submit(envelope) for envelope in envelopes]
        reports = [session.result_envelope(job_id) for job_id in job_ids]
        stats = session.engine_cache.stats
    payload = "\n".join(report.to_json() for report in reports)
    if args.output is not None:
        args.output.write_text(payload + "\n")
    else:
        print(payload)
    print(f"[batch] {len(reports)} report(s); {stats.describe()}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.transport import BrokerServer

    # --slow-request-threshold and --profile-requests are tracing
    # features; asking for either turns tracing on.
    trace = bool(
        args.trace
        or args.slow_request_threshold is not None
        or args.profile_requests
    )
    if trace:
        from repro.obs.logging import configure_json_logging

        configure_json_logging("repro.server")
    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}",
              file=sys.stderr)
        return 2
    broker = BrokerService(all_providers())
    print(
        f"Observing providers ({args.observe_years:g} synthetic years each)...",
        file=sys.stderr,
    )
    events = broker.observe_all(years=args.observe_years, seed=args.seed)
    print(f"  ingested {events} telemetry events", file=sys.stderr)
    if args.workers > 0:
        from repro.server.gateway import GatewayServer

        server_class = GatewayServer
        extra = {"workers": args.workers}
    else:
        server_class = BrokerServer
        extra = {}
    server = server_class(
        broker,
        **extra,
        host=args.host,
        port=args.port,
        shards=args.shards,
        ingest_backend=args.ingest_backend,
        merge_interval=args.merge_interval,
        max_workers=args.max_workers,
        cache_capacity=args.cache_capacity,
        eval_backend=args.backend,
        finished_job_ttl=args.finished_job_ttl or None,
        megabatch=args.megabatch,
        megabatch_window=args.megabatch_window,
        megabatch_max_rows=args.megabatch_max_rows,
        trace=trace,
        trace_capacity=args.trace_capacity,
        slow_request_threshold=args.slow_request_threshold,
        profile_requests=args.profile_requests,
        auth_token=args.auth_token,
        rate_limit=args.rate_limit,
        rate_limit_burst=args.rate_limit_burst,
        idempotency_capacity=args.idempotency_capacity,
    )

    hardening = []
    if args.auth_token is not None:
        hardening.append("auth on")
    if args.rate_limit is not None:
        hardening.append(f"rate limit {args.rate_limit:g}/s")

    mode = (
        f"gateway over {args.workers} worker process(es)"
        if args.workers > 0
        else "in-process"
    )

    async def run() -> None:
        try:
            await server.start()
            print(
                f"serving v2 envelopes on http://{server.host}:{server.port} "
                f"({mode}, {args.shards} ingest shards, "
                f"{args.max_workers} pool workers"
                f"{', tracing on' if trace else ''}"
                f"{''.join(', ' + item for item in hardening)}); "
                "Ctrl-C to stop",
                file=sys.stderr,
            )
            await server.serve_forever()
        finally:
            # Also runs when start() itself fails (e.g. port in use), so
            # the session and ingestion workers never outlive the bind.
            await asyncio.shield(server.stop())

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as exc:
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.conformance import run_conformance

    report = run_conformance(
        args.url, auth_token=args.auth_token, timeout=args.timeout
    )
    print(report.to_text())
    if args.json_path is not None:
        args.json_path.write_text(report.to_json(indent=2) + "\n")
        print(f"JSON report written to {args.json_path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.broker.knowledge_base import KnowledgeBase
    from repro.broker.telemetry import TelemetryStore
    from repro.server.client import ServerClient
    from repro.server.ingest import ShardedIngestor

    text = args.file.read_text()
    if args.url is not None:
        client = ServerClient.from_url(args.url)
        ack = client.ingest_jsonl(text)
        flushed = client.flush()
        print(
            f"routed {ack['routed']} record(s) across {ack['shards']} "
            f"shard(s) on {client.url}; merged {flushed['merged']}"
        )
        return 0
    store = TelemetryStore()
    with ShardedIngestor(
        store, num_shards=args.shards, backend=args.backend
    ) as ingestor:
        routed = ingestor.submit_jsonl(text)
        ingestor.flush()
        per_shard = ", ".join(
            f"shard {index}: {stats.ingested}"
            for index, stats in enumerate(ingestor.shard_stats())
        )
        rejected = sum(stats.rejected for stats in ingestor.shard_stats())
    print(
        f"ingested {routed - rejected}/{routed} record(s) over "
        f"{args.shards} {args.backend} shard(s) ({per_shard}; "
        f"{rejected} rejected)"
    )
    print(KnowledgeBase(store, min_failure_samples=1).describe())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.obs.trace import render_trace, spans_from_jsonl, summarize_traces

    if (args.url is None) == (args.file is None):
        raise ValidationError(
            "repro trace needs exactly one source: --url for a live "
            "serve --trace server, or --file for an exported span JSONL"
        )

    if args.file is not None:
        spans = spans_from_jsonl(args.file.read_text())
        if args.trace_id is not None:
            selected = [s for s in spans if s.trace_id == args.trace_id]
            if not selected:
                raise ValidationError(
                    f"no spans for trace {args.trace_id!r} in {args.file}"
                )
            print(render_trace(selected))
            return 0
        summaries = [
            summary
            for summary in summarize_traces(spans)
            if summary["duration_seconds"] >= args.min_duration
        ][: args.limit]
    else:
        from repro.server.client import ServerClient

        client = ServerClient.from_url(args.url)
        if args.trace_id is not None:
            print(render_trace(client.trace_spans(args.trace_id)))
            return 0
        summaries = client.traces(
            min_duration=args.min_duration, limit=args.limit
        )["traces"]

    if not summaries:
        print("(no traces)")
        return 0
    rows = [
        (
            summary["trace_id"],
            summary["name"],
            f"{summary['duration_seconds'] * 1000.0:.2f}ms",
            str(summary["spans"]),
        )
        for summary in summaries
    ]
    print(render_table(("trace id", "root", "duration", "spans"), rows))
    return 0


def _cmd_pareto() -> int:
    from repro.optimizer.pareto import pareto_frontier

    result = brute_force_optimize(case_study_problem())
    print("Cost/uptime Pareto frontier of the case study:")
    for option in pareto_frontier(result.options):
        print(
            f"  {option.label:<36} C_HA ${option.tco.ha_cost:>9,.2f}/mo  "
            f"U_s {option.tco.uptime_probability * 100:.4f}%"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULE_DESCRIPTIONS, LintConfig, run_lint

    if args.list_rules:
        for rule_id, (title, paths) in sorted(RULE_DESCRIPTIONS.items()):
            scope = ", ".join(paths) if paths else "all files"
            print(f"{rule_id}  {title}  [{scope}]")
        return 0
    select = None
    if args.rules:
        select = tuple(
            part.strip() for part in args.rules.split(",") if part.strip()
        )
    report = run_lint(args.paths, config=LintConfig(select=select))
    if args.output_format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "case-study":
            return _cmd_case_study()
        if args.command == "evaluate":
            return _cmd_evaluate(args.file)
        if args.command == "simulate":
            return _cmd_simulate(args.file, args.replications, args.years, args.seed)
        if args.command == "recommend":
            return _cmd_recommend(args)
        if args.command == "sweep":
            return _cmd_sweep(args.rates)
        if args.command == "scenario":
            return _cmd_scenario(args.name)
        if args.command == "advise":
            return _cmd_advise(args)
        if args.command == "compliance":
            return _cmd_compliance(args)
        if args.command == "importance":
            return _cmd_importance(args.file)
        if args.command == "pareto":
            return _cmd_pareto()
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "conform":
            return _cmd_conform(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "lint":
            return _cmd_lint(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
