"""Command-line interface.

``python -m repro`` (or the ``repro-broker`` console script) exposes the
library's main entry points: the paper's case study, availability
evaluation of a topology file, Monte Carlo simulation, brokered
recommendations over the built-in providers, and parameter sweeps.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
