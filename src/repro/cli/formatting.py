"""Small ASCII-table helper shared by CLI subcommands."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a left-padded ASCII table.

    Column widths adapt to content; numeric-looking cells are rendered
    by ``str`` so callers pre-format floats the way they want.
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
