"""Random workload generators for benchmarks and property tests.

Everything takes an explicit seed / :class:`random.Random` so that the
scaling benchmarks (E4) and hypothesis-adjacent stress tests are
reproducible run to run.
"""

from __future__ import annotations

import random

from repro.catalog.hypervisor import HypervisorHA
from repro.catalog.network import BGPDualCircuit, DualGateway
from repro.catalog.os_cluster import OSCluster
from repro.catalog.raid import RAID1, RAID10
from repro.catalog.registry import TechnologyRegistry
from repro.catalog.sds import SDSReplication
from repro.cost.rates import LaborRate
from repro.errors import ValidationError
from repro.optimizer.space import OptimizationProblem
from repro.rng import make_rng
from repro.sla.contract import Contract
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import Layer
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology

#: Layers are assigned round-robin to generated clusters.
_LAYER_CYCLE = (Layer.COMPUTE, Layer.STORAGE, Layer.NETWORK)


def random_node_spec(
    rng: random.Random | int | None = None,
    kind: str = "node",
    max_down_probability: float = 0.02,
) -> NodeSpec:
    """A random node class with plausible reliability and price."""
    rng = make_rng(rng)
    return NodeSpec(
        kind=kind,
        down_probability=rng.uniform(0.0005, max_down_probability),
        failures_per_year=rng.uniform(1.0, 12.0),
        monthly_cost=rng.uniform(50.0, 600.0),
    )


def random_system(
    rng: random.Random | int | None = None,
    clusters: int = 3,
    max_nodes_per_cluster: int = 4,
) -> SystemTopology:
    """A random bare serial system with ``clusters`` clusters."""
    if clusters < 1:
        raise ValidationError(f"clusters must be >= 1, got {clusters!r}")
    rng = make_rng(rng)
    builder = TopologyBuilder(f"random-{clusters}-tier")
    for index in range(clusters):
        layer = _LAYER_CYCLE[index % len(_LAYER_CYCLE)]
        node = random_node_spec(rng, kind=f"{layer.value}-node-{index}")
        builder.add_cluster(
            name=f"{layer.value}-{index}",
            layer=layer,
            node=node,
            nodes=rng.randint(1, max_nodes_per_cluster),
        )
    return builder.build()


def random_registry(
    rng: random.Random | int | None = None,
    choices_per_layer: int = 2,
) -> TechnologyRegistry:
    """A registry offering ``choices_per_layer`` HA options per layer.

    ``choices_per_layer`` counts only non-``none`` technologies, so the
    optimizer's per-cluster ``k`` is ``choices_per_layer + 1``.
    Supported range: 1-3 per layer.
    """
    if not 1 <= choices_per_layer <= 3:
        raise ValidationError(
            f"choices_per_layer must be in [1, 3], got {choices_per_layer!r}"
        )
    rng = make_rng(rng)

    def labor() -> float:
        return rng.uniform(1.0, 8.0)

    def money(low: float, high: float) -> float:
        return rng.uniform(low, high)

    compute_pool = [
        HypervisorHA(
            standby_nodes=1,
            failover_minutes=rng.uniform(5.0, 15.0),
            monthly_license_per_node=money(5.0, 40.0),
            monthly_labor_hours=labor(),
        ),
        HypervisorHA(
            standby_nodes=2,
            failover_minutes=rng.uniform(5.0, 15.0),
            monthly_license_per_node=money(5.0, 40.0),
            monthly_labor_hours=labor(),
        ),
        OSCluster(
            standby_nodes=1,
            failover_minutes=rng.uniform(10.0, 25.0),
            monthly_support_per_node=money(5.0, 30.0),
            monthly_labor_hours=labor(),
        ),
    ]
    storage_pool = [
        RAID1(
            failover_minutes=rng.uniform(0.5, 2.0),
            monthly_controller_cost=money(10.0, 60.0),
            monthly_labor_hours=labor(),
        ),
        RAID10(
            failover_minutes=rng.uniform(0.5, 2.0),
            monthly_controller_cost=money(10.0, 60.0),
            monthly_labor_hours=labor(),
        ),
        SDSReplication(
            replica_count=3,
            failover_minutes=rng.uniform(0.2, 1.0),
            monthly_software_cost=money(20.0, 120.0),
            monthly_labor_hours=labor(),
        ),
    ]
    network_pool = [
        DualGateway(
            failover_minutes=rng.uniform(1.0, 4.0),
            monthly_vip_cost=money(5.0, 40.0),
            monthly_labor_hours=labor(),
        ),
        BGPDualCircuit(
            failover_minutes=rng.uniform(2.0, 6.0),
            monthly_circuit_cost=money(100.0, 400.0),
            monthly_labor_hours=labor(),
        ),
        SDSReplication(  # placeholder third network choice is not
            replica_count=2,  # meaningful; reuse dual-gateway variant below
            failover_minutes=0.5,
        ),
    ]
    # The network pool only has two natural technologies; synthesize a
    # third as a faster dual gateway when asked for k=3.
    network_pool[2] = DualGateway(
        failover_minutes=rng.uniform(0.2, 1.0),
        monthly_vip_cost=money(40.0, 120.0),
        monthly_labor_hours=labor(),
    )
    # DualGateway instances share a name; the registry rejects duplicate
    # names per layer, so only include the synthetic one when k >= 3 and
    # rename is impossible — instead cap network choices at 2 distinct.
    registry = TechnologyRegistry()
    for technology in compute_pool[:choices_per_layer]:
        registry.register(technology)
    for technology in storage_pool[:choices_per_layer]:
        registry.register(technology)
    for technology in network_pool[: min(choices_per_layer, 2)]:
        registry.register(technology)
    return registry


def random_contract(rng: random.Random | int | None = None) -> Contract:
    """A random linear contract in the realistic SLA/penalty range."""
    rng = make_rng(rng)
    return Contract.linear(
        target_percent=rng.uniform(95.0, 99.9),
        penalty_per_hour=rng.uniform(10.0, 1000.0),
    )


def random_problem(
    rng: random.Random | int | None = None,
    clusters: int = 3,
    choices_per_layer: int = 2,
) -> OptimizationProblem:
    """A complete random optimization problem."""
    rng = make_rng(rng)
    return OptimizationProblem(
        base_system=random_system(rng, clusters=clusters),
        registry=random_registry(rng, choices_per_layer=choices_per_layer),
        contract=random_contract(rng),
        labor_rate=LaborRate(rng.uniform(15.0, 60.0)),
    )
