"""The paper's §III client case study, calibrated.

The system is a three-tier architecture on IBM SoftLayer: a serial
combination of compute, storage and network clusters.  Everything the
*text* states is encoded verbatim:

- uptime SLA 98%, slippage penalty $100/hour, labor $30/hour;
- compute protected by VMware-ESX-style HA in a **3+1** configuration
  (``K = 4``, ``K̂ = 1``);
- storage protected by **RAID-1**; network by **dual gateways**;
- ``k = 2`` choices per layer, ``n = 3`` → 8 solution options;
- the recommendation is **option #3** (HA for storage only);
- the first option meeting the SLA is **#5** (storage + network), so
  the pruned search clips #8 after evaluating #5;
- savings vs. the deployed ad-hoc option #8 ≈ **62%**.

The figures carrying the actual dollar amounts are images not present in
the paper text, so node reliability and rate-card numbers below are
*calibrated*: chosen so that every one of the textual outcomes above
holds.  The calibration reasoning is in DESIGN.md §4.
"""

from __future__ import annotations

from repro.catalog.registry import TechnologyRegistry, case_study_registry as _registry
from repro.cost.rates import LaborRate
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology

# ---------------------------------------------------------------------------
# Contract terms stated in the paper text (§III).
# ---------------------------------------------------------------------------

#: Contractual uptime SLA, percent.
SLA_PERCENT = 98.0
#: Slippage penalty, dollars per hour of outage beyond the SLA.
PENALTY_PER_HOUR = 100.0
#: Labor rate used to price HA sustainment effort.
LABOR_RATE_PER_HOUR = 30.0

# ---------------------------------------------------------------------------
# Calibrated node reliability (P_i, f_i) — see module docstring.
# ---------------------------------------------------------------------------

#: ESX host: P = 0.0025 (≈22 h/yr down), 6 failures/yr (MTTR ≈ 3.7 h).
COMPUTE_NODE = NodeSpec(
    kind="esx-host",
    down_probability=0.0025,
    failures_per_year=6.0,
    monthly_cost=330.0,
)

#: Block-storage volume: P = 0.015 (≈131 h/yr down), 5 failures/yr
#: (MTTR ≈ 26 h — storage incidents include data restore time).
STORAGE_NODE = NodeSpec(
    kind="block-volume",
    down_probability=0.015,
    failures_per_year=5.0,
    monthly_cost=170.0,
)

#: Gateway appliance: P = 0.01425 (≈125 h/yr down), 4 failures/yr
#: (MTTR ≈ 31 h — hardware replacement on site).
NETWORK_NODE = NodeSpec(
    kind="gateway",
    down_probability=0.01425,
    failures_per_year=4.0,
    monthly_cost=190.0,
)

#: Active node counts of the base architecture (compute runs 3 hosts).
COMPUTE_ACTIVE_NODES = 3
STORAGE_ACTIVE_NODES = 1
NETWORK_ACTIVE_NODES = 1

# ---------------------------------------------------------------------------
# Calibrated HA rate card (infrastructure + labor per month).
# The resulting C_HA per layer: compute $500, storage $260, network $280.
# ---------------------------------------------------------------------------

#: VMware-style HA license, dollars per host per month (4 hosts -> $50).
HYPERVISOR_LICENSE_PER_NODE = 12.5
#: Compute-HA sustainment, hours/month (-> $120 at $30/h).
HYPERVISOR_LABOR_HOURS = 4.0
#: Hypervisor failover: detect + VM restart + takeover, minutes.
HYPERVISOR_FAILOVER_MINUTES = 10.0

#: RAID controller/management addon, dollars/month.
RAID_CONTROLLER_COST = 30.0
#: Storage-HA sustainment, hours/month (-> $60).
RAID_LABOR_HOURS = 2.0
#: RAID degraded-mode entry, minutes.
RAID_FAILOVER_MINUTES = 1.0

#: Floating-VIP service for the gateway pair, dollars/month.
GATEWAY_VIP_COST = 30.0
#: Network-HA sustainment, hours/month (-> $60).
GATEWAY_LABOR_HOURS = 2.0
#: VRRP-style gateway takeover, minutes.
GATEWAY_FAILOVER_MINUTES = 2.0

# ---------------------------------------------------------------------------
# Paper-stated outcomes, used by tests and the benchmark harness.
# ---------------------------------------------------------------------------

#: The paper's recommendation: option #3 = HA for storage only (Fig. 6).
EXPECTED_BEST_OPTION_ID = 3
#: The paper's minimum-penalty recommendation: option #5 (Fig. 8).
EXPECTED_MIN_PENALTY_OPTION_ID = 5
#: The deployed ad-hoc strategy: option #8 = HA everywhere (Fig. 3).
AS_IS_OPTION_ID = 8
#: Headline savings of #3 vs #8 ("close to 62%").
EXPECTED_SAVINGS_FRACTION = 0.62
#: Tolerance on the reproduced savings (our rate card is synthetic).
SAVINGS_TOLERANCE = 0.03


def case_study_base_system() -> SystemTopology:
    """The bare three-tier architecture (no HA anywhere)."""
    return (
        TopologyBuilder("softlayer-three-tier")
        .compute("compute", COMPUTE_NODE, nodes=COMPUTE_ACTIVE_NODES)
        .storage("storage", STORAGE_NODE, nodes=STORAGE_ACTIVE_NODES)
        .network("network", NETWORK_NODE, nodes=NETWORK_ACTIVE_NODES)
        .build()
    )


def case_study_registry() -> TechnologyRegistry:
    """The k=2 choice set with the calibrated rate card."""
    return _registry(
        hypervisor_license_per_node=HYPERVISOR_LICENSE_PER_NODE,
        hypervisor_labor_hours=HYPERVISOR_LABOR_HOURS,
        hypervisor_failover_minutes=HYPERVISOR_FAILOVER_MINUTES,
        raid_controller_cost=RAID_CONTROLLER_COST,
        raid_labor_hours=RAID_LABOR_HOURS,
        raid_failover_minutes=RAID_FAILOVER_MINUTES,
        gateway_vip_cost=GATEWAY_VIP_COST,
        gateway_labor_hours=GATEWAY_LABOR_HOURS,
        gateway_failover_minutes=GATEWAY_FAILOVER_MINUTES,
    )


def case_study_contract() -> Contract:
    """98% uptime, $100/hour linear slippage penalty."""
    return Contract.linear(SLA_PERCENT, PENALTY_PER_HOUR)


def case_study_labor_rate() -> LaborRate:
    """$30/hour, as stated in §III."""
    return LaborRate(LABOR_RATE_PER_HOUR)


def case_study_problem() -> OptimizationProblem:
    """The full brokered-optimization input for the case study."""
    return OptimizationProblem(
        base_system=case_study_base_system(),
        registry=case_study_registry(),
        contract=case_study_contract(),
        labor_rate=case_study_labor_rate(),
    )
