"""Named realistic scenarios used by the example applications.

Each scenario is a complete :class:`OptimizationProblem` modeled on a
workload class the paper's introduction motivates: an enterprise web
property, a payments platform with a strict SLA, and a batch-analytics
pipeline with a lenient one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.registry import (
    TechnologyRegistry,
    case_study_registry,
    extended_registry,
)
from repro.cost.rates import LaborRate
from repro.errors import ValidationError
from repro.optimizer.space import OptimizationProblem
from repro.sla.contract import Contract
from repro.sla.penalty import CappedPenalty, LinearPenalty, TieredPenalty
from repro.sla.sla import UptimeSLA
from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeSpec
from repro.topology.system import SystemTopology


@dataclass(frozen=True)
class Scenario:
    """A named, self-describing optimization problem."""

    name: str
    summary: str
    problem: OptimizationProblem


def _ecommerce_system() -> SystemTopology:
    """Five serial tiers of an enterprise web property."""
    return (
        TopologyBuilder("ecommerce")
        .compute("web", NodeSpec("web-host", 0.003, 8.0, 220.0), nodes=4)
        .compute("app", NodeSpec("app-host", 0.0035, 7.0, 340.0), nodes=3)
        .compute("db", NodeSpec("db-host", 0.002, 4.0, 520.0), nodes=2)
        .storage("storage", NodeSpec("ssd-volume", 0.012, 5.0, 210.0), nodes=2)
        .network("network", NodeSpec("gateway", 0.009, 4.0, 180.0), nodes=1)
        .build()
    )


def _ecommerce() -> Scenario:
    problem = OptimizationProblem(
        base_system=_ecommerce_system(),
        registry=case_study_registry(
            hypervisor_license_per_node=15.0,
            hypervisor_labor_hours=5.0,
            raid_controller_cost=40.0,
            raid_labor_hours=2.0,
            gateway_vip_cost=25.0,
            gateway_labor_hours=2.0,
        ),
        contract=Contract.linear(99.5, 250.0),
        labor_rate=LaborRate(30.0),
    )
    return Scenario(
        name="ecommerce",
        summary=(
            "Five-tier enterprise web property, 99.5% SLA at $250/hour; "
            "k=2 HA choices on each of 5 layers (32 options)"
        ),
        problem=problem,
    )


def _payments() -> Scenario:
    """A payments platform: strict SLA, tiered-and-capped penalty."""
    system = (
        TopologyBuilder("payments")
        .compute("api", NodeSpec("api-host", 0.0015, 5.0, 410.0), nodes=3)
        .compute("ledger", NodeSpec("ledger-host", 0.001, 3.0, 650.0), nodes=2)
        .storage("ledger-store", NodeSpec("nvme-volume", 0.006, 4.0, 260.0), nodes=2)
        .network("edge", NodeSpec("edge-gateway", 0.004, 3.0, 240.0), nodes=1)
        .build()
    )
    penalty = CappedPenalty(
        inner=TieredPenalty(((1.0, 500.0), (4.0, 1500.0), (float("inf"), 4000.0))),
        monthly_cap=50000.0,
    )
    problem = OptimizationProblem(
        base_system=system,
        registry=extended_registry(),
        contract=Contract(sla=UptimeSLA(99.95), penalty=penalty),
        labor_rate=LaborRate(45.0),
    )
    return Scenario(
        name="payments",
        summary=(
            "Payments platform, 99.95% SLA with tiered+capped penalties; "
            "extended HA catalog including SDS, multipath and BGP"
        ),
        problem=problem,
    )


def _analytics() -> Scenario:
    """Batch analytics: lenient SLA where HA rarely pays for itself."""
    system = (
        TopologyBuilder("analytics")
        .compute("workers", NodeSpec("worker-host", 0.005, 10.0, 150.0), nodes=6)
        .storage("datalake", NodeSpec("hdd-volume", 0.02, 6.0, 90.0), nodes=4)
        .network("fabric", NodeSpec("tor-switch", 0.006, 3.0, 120.0), nodes=1)
        .build()
    )
    problem = OptimizationProblem(
        base_system=system,
        registry=case_study_registry(
            hypervisor_license_per_node=10.0,
            hypervisor_labor_hours=6.0,
            raid_controller_cost=25.0,
            raid_labor_hours=3.0,
            gateway_vip_cost=15.0,
            gateway_labor_hours=1.0,
        ),
        contract=Contract(sla=UptimeSLA(95.0), penalty=LinearPenalty(20.0)),
        labor_rate=LaborRate(25.0),
    )
    return Scenario(
        name="analytics",
        summary=(
            "Batch analytics pipeline, lenient 95% SLA at $20/hour; "
            "checks that the optimizer recommends little or no HA"
        ),
        problem=problem,
    )


def _build_all() -> dict[str, Scenario]:
    scenarios = (_ecommerce(), _payments(), _analytics())
    return {entry.name: entry for entry in scenarios}


#: All named scenarios, keyed by name.
SCENARIOS: dict[str, Scenario] = _build_all()


def scenario(name: str) -> Scenario:
    """Look up a scenario by name; raises with the valid names listed."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from exc
