"""Workloads: the paper's case study plus synthetic generators.

- :mod:`~repro.workloads.case_study` — the §III client case study with a
  calibrated parameter set (figure data is not in the paper text; see
  DESIGN.md for the calibration constraints).
- :mod:`~repro.workloads.generators` — random topologies and problems
  for scaling benchmarks and property tests.
- :mod:`~repro.workloads.scenarios` — named realistic scenarios used by
  the examples.
"""

from repro.workloads.case_study import (
    case_study_base_system,
    case_study_contract,
    case_study_labor_rate,
    case_study_problem,
    case_study_registry,
)
from repro.workloads.generators import (
    random_node_spec,
    random_problem,
    random_registry,
    random_system,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, scenario

__all__ = [
    "SCENARIOS",
    "Scenario",
    "case_study_base_system",
    "case_study_contract",
    "case_study_labor_rate",
    "case_study_problem",
    "case_study_registry",
    "random_node_spec",
    "random_problem",
    "random_registry",
    "random_system",
    "scenario",
]
