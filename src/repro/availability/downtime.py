"""Downtime budget: turn probabilities into operator-facing quantities.

Operators reason in "minutes per year", "hours per month" and "nines";
the model produces probabilities.  :class:`DowntimeBudget` is the bridge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.units import (
    availability_to_nines,
    probability_to_hours_per_month,
    probability_to_minutes_per_year,
)


@dataclass(frozen=True, slots=True)
class DowntimeBudget:
    """Expected downtime of a system expressed in several units.

    Built from a downtime *probability* (the model's ``D_s``); all other
    fields are derived views of the same number.
    """

    downtime_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.downtime_probability <= 1.0:
            raise ValidationError(
                "downtime_probability must be in [0, 1], got "
                f"{self.downtime_probability!r}"
            )

    @property
    def availability(self) -> float:
        """``U_s = 1 - D_s``."""
        return 1.0 - self.downtime_probability

    @property
    def minutes_per_year(self) -> float:
        """Expected downtime minutes in a year."""
        return probability_to_minutes_per_year(self.downtime_probability)

    @property
    def hours_per_month(self) -> float:
        """Expected downtime hours in a month (Eq. 5's time base)."""
        return probability_to_hours_per_month(self.downtime_probability)

    @property
    def nines(self) -> float:
        """Availability expressed as a count of nines (3.0 = 99.9%)."""
        return availability_to_nines(self.availability)

    def describe(self) -> str:
        """One-line summary, e.g. ``99.83% up (2.5 nines, 14.9 h/yr down)``."""
        hours_per_year = self.minutes_per_year / 60.0
        return (
            f"{self.availability * 100:.4f}% up "
            f"({self.nines:.2f} nines, {hours_per_year:.1f} h/yr down)"
        )
