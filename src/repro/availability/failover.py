"""Failover downtime probability ``F_s`` (paper Eq. 3).

Each failover transaction in cluster ``C_i`` blacks out the system for
``t_i`` minutes.  With ``f_i`` failures per node-year and ``K_i - K̂_i``
active nodes, cluster ``C_i`` accumulates ``f_i * t_i * (K_i - K̂_i)``
failover minutes per year.  To avoid double counting minutes when some
*other* cluster is simultaneously down, the term is weighted by
``P(X_i)`` — the probability that every other cluster's active nodes are
all up:

    F_s(C_i) = f_i t_i (K_i - K̂_i) / delta * prod_{j != i} (1-P_j)^(K_j - K̂_j)

    F_s = sum_i F_s(C_i)

Per DESIGN.md §3, a cluster without HA (``K̂_i = 0``) has no failover
mechanism: its ``t_i`` is forced to zero by the topology validator, so it
contributes nothing here (its failures appear in ``B_s`` instead).
"""

from __future__ import annotations

from repro.availability.cluster_math import active_nodes_up_probability
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR


def cluster_yearly_failover_minutes(cluster: ClusterSpec) -> float:
    """``f_i * t_i * (K_i - K̂_i)``: raw failover minutes per year."""
    return (
        cluster.node.failures_per_year
        * cluster.failover_minutes
        * cluster.active_nodes
    )


def others_quiet_probability(system: SystemTopology, cluster_name: str) -> float:
    """``P(X_i)``: all *other* clusters' active nodes are up."""
    product = 1.0
    for other in system.clusters:
        if other.name != cluster_name:
            product *= active_nodes_up_probability(other)
    return product


def cluster_failover_downtime(system: SystemTopology, cluster_name: str) -> float:
    """``F_s(C_i)``: downtime probability from ``C_i``'s failovers."""
    cluster = system.cluster(cluster_name)
    raw = cluster_yearly_failover_minutes(cluster) / MINUTES_PER_YEAR
    return raw * others_quiet_probability(system, cluster_name)


def failover_downtime_probability(system: SystemTopology) -> float:
    """``F_s``: total downtime probability from failover latencies.

    Accumulated in cluster declaration order with an explicit loop so
    the float addition order is pinned (REP001).
    """
    total = 0.0
    for cluster in system.clusters:
        total += cluster_failover_downtime(system, cluster.name)
    return total
