"""Component importance measures for the serial chain.

When a broker must prioritize where to spend HA budget, classical
reliability-engineering importance measures answer "which cluster
matters most?".  For the paper's serial chain (breakdown model, Eq. 2):

- **Birnbaum importance** ``I_B(i) = dU / dA_i`` — the partial
  derivative of system availability w.r.t. cluster ``i``'s
  availability.  For a serial system this is the product of the other
  clusters' availabilities.
- **Improvement potential** ``IP(i) = U(A_i := 1) - U`` — uptime gained
  if cluster ``i`` were made perfect; this is what an (idealized) HA
  investment in ``i`` could buy at most.
- **Risk achievement worth** ``RAW(i) = D(A_i := 0) / D`` — how much
  worse total downtime gets if cluster ``i`` is lost entirely; for a
  serial chain the numerator is 1, so ``RAW = 1/D``, identical across
  clusters — reported for completeness and for future non-serial use.

All three are computed on the breakdown availability (``1 - B_s``);
failover downtime is a property of the HA *choice*, not of the cluster
position, so it is excluded from positional importance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.cluster_math import cluster_up_probability
from repro.errors import ValidationError
from repro.topology.system import SystemTopology


@dataclass(frozen=True)
class ClusterImportance:
    """Importance measures of one cluster."""

    name: str
    availability: float
    birnbaum: float
    improvement_potential: float
    risk_achievement_worth: float


@dataclass(frozen=True)
class ImportanceReport:
    """All clusters' importance, plus the ranking the broker wants."""

    system_name: str
    system_availability: float
    clusters: tuple[ClusterImportance, ...]

    def ranked_by_improvement(self) -> tuple[ClusterImportance, ...]:
        """Clusters ordered by improvement potential, best first."""
        return tuple(
            sorted(
                self.clusters,
                key=lambda entry: entry.improvement_potential,
                reverse=True,
            )
        )

    def most_critical(self) -> ClusterImportance:
        """The cluster whose perfection would buy the most uptime."""
        return self.ranked_by_improvement()[0]

    def for_cluster(self, name: str) -> ClusterImportance:
        """Look up one cluster's measures."""
        for entry in self.clusters:
            if entry.name == name:
                return entry
        raise ValidationError(
            f"no importance entry for cluster {name!r}; have "
            f"{[entry.name for entry in self.clusters]}"
        )

    def describe(self) -> str:
        """Ranked table, one cluster per line."""
        lines = [
            f"Cluster importance for {self.system_name!r} "
            f"(breakdown availability {self.system_availability:.6f}):"
        ]
        for entry in self.ranked_by_improvement():
            lines.append(
                f"  {entry.name}: A={entry.availability:.6f} "
                f"Birnbaum={entry.birnbaum:.6f} "
                f"improvement={entry.improvement_potential:.6f}"
            )
        return "\n".join(lines)


def importance_analysis(system: SystemTopology) -> ImportanceReport:
    """Compute Birnbaum / improvement-potential / RAW for every cluster."""
    availabilities = {
        cluster.name: cluster_up_probability(cluster)
        for cluster in system.clusters
    }
    # Multiply in cluster declaration order (not dict iteration order),
    # keeping the float op order an explicit topology property (REP001).
    total = 1.0
    for cluster in system.clusters:
        total *= availabilities[cluster.name]
    downtime = 1.0 - total

    entries = []
    for cluster in system.clusters:
        own = availabilities[cluster.name]
        others = 1.0
        for name, value in availabilities.items():
            if name != cluster.name:
                others *= value
        birnbaum = others
        improvement = others - total  # U with A_i := 1, minus U
        raw = (1.0 / downtime) if downtime > 0.0 else float("inf")
        entries.append(
            ClusterImportance(
                name=cluster.name,
                availability=own,
                birnbaum=birnbaum,
                improvement_potential=improvement,
                risk_achievement_worth=raw,
            )
        )
    return ImportanceReport(
        system_name=system.name,
        system_availability=total,
        clusters=tuple(entries),
    )
