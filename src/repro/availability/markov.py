"""Exact birth-death Markov model of a cluster (ablation substrate).

The paper's Eq. 2 treats nodes as i.i.d. coins with down probability
``P_i`` — implicitly assuming every failed node is repaired in parallel
(an unlimited repair crew).  Real operations pools repair staff.  This
module models a cluster as a continuous-time birth-death chain on the
number of failed nodes:

- state ``j`` (``j`` nodes down) fails at rate ``(K - j) * lambda``;
- repairs complete at rate ``min(j, c) * mu`` with a crew of ``c``.

Steady-state probabilities follow from the standard balance equations:

    pi_j = pi_0 * prod_{i=0}^{j-1} [ (K - i) lambda / repair_rate(i+1) ]

With ``c >= K`` the chain is the M/M/inf-like independent-repair model
and its steady state is exactly ``Binomial(K, P)`` with
``P = lambda / (lambda + mu)`` — i.e. Eq. 2's inner sum.  With a finite
crew, repairs queue, failed nodes linger, and the cluster's breakdown
probability rises above the paper's estimate.  Experiment A1
(``benchmarks/bench_ablation_markov.py``) quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.cluster_math import up_probability
from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec
from repro.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class MarkovClusterModel:
    """Birth-death steady state of one cluster under a finite repair crew.

    Parameters
    ----------
    total_nodes:
        ``K`` — cluster size.
    failure_rate_per_hour:
        ``lambda`` — per-node failure rate while up.
    repair_rate_per_hour:
        ``mu`` — per-repair completion rate (1 / MTTR hours).
    repair_crew:
        ``c`` — simultaneous repairs possible; ``c >= K`` reproduces the
        paper's independent-node model exactly.
    """

    total_nodes: int
    failure_rate_per_hour: float
    repair_rate_per_hour: float
    repair_crew: int

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValidationError(
                f"total_nodes must be >= 1, got {self.total_nodes!r}"
            )
        if self.failure_rate_per_hour < 0.0:
            raise ValidationError(
                f"failure_rate_per_hour must be >= 0, got {self.failure_rate_per_hour!r}"
            )
        if self.repair_rate_per_hour <= 0.0:
            raise ValidationError(
                f"repair_rate_per_hour must be > 0, got {self.repair_rate_per_hour!r}"
            )
        if self.repair_crew < 1:
            raise ValidationError(
                f"repair_crew must be >= 1, got {self.repair_crew!r}"
            )

    @classmethod
    def from_cluster(cls, cluster: ClusterSpec, repair_crew: int | None = None) -> "MarkovClusterModel":
        """Derive rates from a cluster spec's ``(P, f)`` parameters.

        ``repair_crew=None`` means unlimited (``c = K``), matching the
        paper's model.
        """
        node = cluster.node
        if node.failures_per_year <= 0.0 or node.down_probability <= 0.0:
            # A never-failing node: any rates with lambda=0 work.
            return cls(
                total_nodes=cluster.total_nodes,
                failure_rate_per_hour=0.0,
                repair_rate_per_hour=1.0,
                repair_crew=repair_crew or cluster.total_nodes,
            )
        cycle_hours = HOURS_PER_YEAR / node.failures_per_year
        mttr_hours = node.down_probability * cycle_hours
        mtbf_hours = cycle_hours - mttr_hours
        return cls(
            total_nodes=cluster.total_nodes,
            failure_rate_per_hour=1.0 / mtbf_hours,
            repair_rate_per_hour=1.0 / mttr_hours,
            repair_crew=repair_crew or cluster.total_nodes,
        )

    def steady_state(self) -> tuple[float, ...]:
        """``pi_0 .. pi_K``: stationary distribution over #down nodes."""
        if self.failure_rate_per_hour == 0.0:
            return (1.0,) + (0.0,) * self.total_nodes
        weights = [1.0]
        for j in range(self.total_nodes):
            birth = (self.total_nodes - j) * self.failure_rate_per_hour
            death = min(j + 1, self.repair_crew) * self.repair_rate_per_hour
            weights.append(weights[-1] * birth / death)
        total = 0.0
        for weight in weights:  # explicit order: j = 0..K (REP001)
            total += weight
        return tuple(weight / total for weight in weights)

    def up_probability(self, standby_tolerance: int) -> float:
        """Probability at most ``K̂`` nodes are down at steady state."""
        if not 0 <= standby_tolerance < self.total_nodes:
            raise ValidationError(
                f"standby_tolerance must be in [0, K), got {standby_tolerance!r}"
            )
        pi = self.steady_state()
        up = 0.0
        for probability in pi[: standby_tolerance + 1]:  # j ascending (REP001)
            up += probability
        return up

    def expected_down_nodes(self) -> float:
        """Mean number of simultaneously failed nodes."""
        pi = self.steady_state()
        mean = 0.0
        for j, p in enumerate(pi):  # j ascending (REP001)
            mean += j * p
        return mean


def markov_cluster_up_probability(
    cluster: ClusterSpec, repair_crew: int | None = None
) -> float:
    """Cluster up-probability under a finite repair crew.

    With ``repair_crew=None`` this equals the paper's binomial model
    (verified by property tests); smaller crews yield lower values.
    """
    model = MarkovClusterModel.from_cluster(cluster, repair_crew)
    return model.up_probability(cluster.standby_tolerance)


def crew_size_penalty(cluster: ClusterSpec, repair_crew: int) -> float:
    """How much breakdown probability a finite crew adds over Eq. 2.

    Returns ``P_down(markov, crew) - P_down(binomial)`` — always >= 0.
    """
    binomial_up = up_probability(
        cluster.total_nodes,
        cluster.standby_tolerance,
        cluster.node.down_probability,
    )
    markov_up = markov_cluster_up_probability(cluster, repair_crew)
    return max(0.0, binomial_up - markov_up)
