"""The paper's probabilistic availability model (§II, Eq. 1-4).

System downtime probability decomposes into two mutually exclusive parts:

- ``B_s`` (:mod:`~repro.availability.breakdown`, Eq. 2) — one or more
  clusters broken beyond their redundancy budget;
- ``F_s`` (:mod:`~repro.availability.failover`, Eq. 3) — short outages
  while a cluster's standby node takes over.

``D_s = B_s + F_s`` and uptime ``U_s = 1 - D_s`` (Eq. 1 and 4), computed
by :func:`~repro.availability.model.evaluate_availability`, which returns
a rich :class:`~repro.availability.model.AvailabilityReport`.
"""

from repro.availability.breakdown import breakdown_downtime_probability, cluster_breakdown_contributions
from repro.availability.cluster_math import (
    binomial_pmf,
    cluster_down_probability,
    cluster_up_probability,
)
from repro.availability.downtime import DowntimeBudget
from repro.availability.failover import (
    cluster_failover_downtime,
    failover_downtime_probability,
)
from repro.availability.importance import (
    ClusterImportance,
    ImportanceReport,
    importance_analysis,
)
from repro.availability.markov import (
    MarkovClusterModel,
    crew_size_penalty,
    markov_cluster_up_probability,
)
from repro.availability.rbd import (
    block_availability,
    block_downtime_probability,
    cluster_effective_availability,
    parallel_gain,
)
from repro.availability.model import AvailabilityReport, ClusterAvailability, evaluate_availability
from repro.availability.sensitivity import SensitivityReport, sensitivity_analysis
from repro.availability.uncertainty import (
    ClusterInputUncertainty,
    TcoBand,
    UptimeUncertainty,
    propagate_uptime_uncertainty,
    recommendation_confidence,
    tco_band,
)

__all__ = [
    "AvailabilityReport",
    "ClusterAvailability",
    "ClusterImportance",
    "ClusterInputUncertainty",
    "DowntimeBudget",
    "TcoBand",
    "UptimeUncertainty",
    "propagate_uptime_uncertainty",
    "recommendation_confidence",
    "tco_band",
    "ImportanceReport",
    "MarkovClusterModel",
    "SensitivityReport",
    "block_availability",
    "block_downtime_probability",
    "cluster_effective_availability",
    "crew_size_penalty",
    "importance_analysis",
    "markov_cluster_up_probability",
    "parallel_gain",
    "binomial_pmf",
    "breakdown_downtime_probability",
    "cluster_breakdown_contributions",
    "cluster_down_probability",
    "cluster_failover_downtime",
    "cluster_up_probability",
    "evaluate_availability",
    "sensitivity_analysis",
]
