"""Propagating broker-estimate uncertainty into ``U_s`` and TCO.

§IV worries that the broker's ``P̂/f̂/t̂`` carry skew.  Sensitivity
analysis says how much a *given* error moves uptime; this module closes
the loop with the *statistical* error of the estimates themselves:

- first-order (delta-method) propagation: with independent input errors
  ``sigma_x`` and derivatives ``dU/dx`` from
  :func:`~repro.availability.sensitivity.sensitivity_analysis`,

      Var[U_s] ≈ Σ (dU/dx)² sigma_x²

- a TCO band per option, evaluating the contract's penalty at
  ``U ± z·sigma``;
- a recommendation-confidence score: the probability option A's TCO is
  really below option B's, treating both TCOs as independent normals.

All of it is approximate (first order, normality) and says so; the point
is to tell a broker *when its database is not yet good enough to commit
to a recommendation* — the actionable version of §IV's threat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.availability.sensitivity import sensitivity_analysis
from repro.errors import ValidationError
from repro.sla.contract import Contract
from repro.topology.system import SystemTopology

#: Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ClusterInputUncertainty:
    """Standard errors of one cluster's broker-supplied inputs."""

    sigma_down_probability: float = 0.0
    sigma_failures_per_year: float = 0.0
    sigma_failover_minutes: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (
            ("sigma_down_probability", self.sigma_down_probability),
            ("sigma_failures_per_year", self.sigma_failures_per_year),
            ("sigma_failover_minutes", self.sigma_failover_minutes),
        ):
            if value < 0.0:
                raise ValidationError(f"{label} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class UptimeUncertainty:
    """Delta-method uncertainty of a system's ``U_s``."""

    uptime_mean: float
    uptime_stderr: float
    variance_by_cluster: dict[str, float]

    @property
    def ci95(self) -> tuple[float, float]:
        """95% normal interval on ``U_s`` (clipped to [0, 1])."""
        half = _Z95 * self.uptime_stderr
        return (
            max(self.uptime_mean - half, 0.0),
            min(self.uptime_mean + half, 1.0),
        )

    @property
    def dominant_cluster(self) -> str:
        """The cluster contributing the most uptime variance."""
        return max(self.variance_by_cluster, key=self.variance_by_cluster.get)

    def describe(self) -> str:
        """One-line summary with the CI and the variance driver."""
        low, high = self.ci95
        return (
            f"U_s = {self.uptime_mean:.6f} +/- {self.uptime_stderr:.2e} "
            f"(95% CI [{low:.6f}, {high:.6f}]; "
            f"driven by {self.dominant_cluster!r})"
        )


def propagate_uptime_uncertainty(
    system: SystemTopology,
    uncertainties: Mapping[str, ClusterInputUncertainty],
) -> UptimeUncertainty:
    """First-order uncertainty of ``U_s`` from per-cluster input errors.

    Clusters absent from ``uncertainties`` are treated as exactly known.
    """
    unknown = set(uncertainties) - set(system.cluster_names)
    if unknown:
        raise ValidationError(
            f"uncertainties reference unknown clusters: {sorted(unknown)}"
        )
    report = sensitivity_analysis(system)
    variance_by_cluster: dict[str, float] = {}
    for entry in report.clusters:
        inputs = uncertainties.get(entry.name)
        if inputs is None:
            variance_by_cluster[entry.name] = 0.0
            continue
        variance = (
            (entry.wrt_down_probability * inputs.sigma_down_probability) ** 2
            + (entry.wrt_failures_per_year * inputs.sigma_failures_per_year) ** 2
            + (entry.wrt_failover_minutes * inputs.sigma_failover_minutes) ** 2
        )
        variance_by_cluster[entry.name] = variance
    # Sum variances in the sensitivity report's cluster order, not dict
    # iteration order, so the float addition order is pinned (REP001).
    total_variance = 0.0
    for entry in report.clusters:
        total_variance += variance_by_cluster[entry.name]
    return UptimeUncertainty(
        uptime_mean=report.baseline_uptime,
        uptime_stderr=math.sqrt(total_variance),
        variance_by_cluster=variance_by_cluster,
    )


@dataclass(frozen=True)
class TcoBand:
    """TCO evaluated across the uptime confidence interval."""

    tco_at_mean: float
    tco_low_uptime: float
    tco_high_uptime: float

    @property
    def spread(self) -> float:
        """Dollars between the optimistic and pessimistic TCO."""
        return self.tco_low_uptime - self.tco_high_uptime

    def describe(self) -> str:
        """E.g. ``TCO $395.35 [best $260.00, worst $540.12]``."""
        return (
            f"TCO ${self.tco_at_mean:,.2f} "
            f"[best ${self.tco_high_uptime:,.2f}, "
            f"worst ${self.tco_low_uptime:,.2f}]"
        )


def tco_band(
    ha_cost: float,
    contract: Contract,
    uncertainty: UptimeUncertainty,
) -> TcoBand:
    """Eq. 5 TCO at the uptime mean and at its 95% CI endpoints.

    Lower uptime means larger penalty, so ``tco_low_uptime`` is the
    pessimistic end of the band.
    """
    low_uptime, high_uptime = uncertainty.ci95
    return TcoBand(
        tco_at_mean=ha_cost
        + contract.expected_monthly_penalty(uncertainty.uptime_mean),
        tco_low_uptime=ha_cost + contract.expected_monthly_penalty(low_uptime),
        tco_high_uptime=ha_cost + contract.expected_monthly_penalty(high_uptime),
    )


def recommendation_confidence(
    tco_best: float,
    sigma_best: float,
    tco_runner_up: float,
    sigma_runner_up: float,
) -> float:
    """``Pr[TCO_best < TCO_runner_up]`` under independent normals.

    Returns 0.5 when both are identical with zero spread; approaches 1
    as the gap grows relative to the combined uncertainty.
    """
    for label, sigma in (("sigma_best", sigma_best), ("sigma_runner_up", sigma_runner_up)):
        if sigma < 0.0:
            raise ValidationError(f"{label} must be >= 0, got {sigma!r}")
    gap = tco_runner_up - tco_best
    combined = math.sqrt(sigma_best**2 + sigma_runner_up**2)
    if combined == 0.0:
        return 1.0 if gap > 0.0 else (0.5 if gap == 0.0 else 0.0)
    return 0.5 * (1.0 + math.erf(gap / (combined * math.sqrt(2.0))))
