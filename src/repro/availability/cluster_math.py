"""Per-cluster availability math: the binomial core of Eq. 2.

A cluster of ``K`` i.i.d. nodes, each down with probability ``P``, is up
when at least ``K - K̂`` nodes are up:

    Pr[cluster up] = sum_{j = K-K̂}^{K}  C(K, j) (1-P)^j P^(K-j)

This module implements that sum with exact integer binomial coefficients
(``math.comb``) — no scipy dependency in the hot path, and no overflow
for the node counts that occur in practice.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.topology.cluster import ClusterSpec


def binomial_pmf(successes: int, trials: int, success_probability: float) -> float:
    """``C(trials, successes) * p^successes * (1-p)^(trials-successes)``.

    Raises :class:`ValidationError` for out-of-range arguments rather
    than silently returning 0, because a bad index here almost always
    means the caller mixed up ``K`` and ``K̂``.
    """
    if trials < 0:
        raise ValidationError(f"trials must be >= 0, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValidationError(
            f"successes must be in [0, trials], got {successes!r} of {trials!r}"
        )
    if not 0.0 <= success_probability <= 1.0:
        raise ValidationError(
            f"success_probability must be in [0, 1], got {success_probability!r}"
        )
    return (
        math.comb(trials, successes)
        * success_probability**successes
        * (1.0 - success_probability) ** (trials - successes)
    )


def up_probability(total_nodes: int, standby_tolerance: int, node_down_probability: float) -> float:
    """Probability the cluster is up given raw parameters.

    Sums the binomial pmf over ``j`` in ``[K - K̂, K]`` up nodes.
    """
    if total_nodes < 1:
        raise ValidationError(f"total_nodes must be >= 1, got {total_nodes!r}")
    if not 0 <= standby_tolerance < total_nodes:
        raise ValidationError(
            f"standby_tolerance must be in [0, K), got {standby_tolerance!r} "
            f"with K={total_nodes!r}"
        )
    node_up = 1.0 - node_down_probability
    total = 0.0
    for up_nodes in range(total_nodes - standby_tolerance, total_nodes + 1):
        total += binomial_pmf(up_nodes, total_nodes, node_up)
    # Guard against floating-point drift just above 1.0.
    return min(total, 1.0)


def cluster_up_probability(cluster: ClusterSpec) -> float:
    """Probability that cluster ``C_i`` is up (the inner sum of Eq. 2)."""
    return up_probability(
        total_nodes=cluster.total_nodes,
        standby_tolerance=cluster.standby_tolerance,
        node_down_probability=cluster.node.down_probability,
    )


def cluster_down_probability(cluster: ClusterSpec) -> float:
    """Probability that cluster ``C_i`` is broken beyond recovery."""
    return 1.0 - cluster_up_probability(cluster)


def active_nodes_up_probability(cluster: ClusterSpec) -> float:
    """Probability that all currently *active* nodes of ``C_i`` are up.

    This is the ``(1 - P_j)^(K_j - K̂_j)`` factor of Eq. 3: the event
    that cluster ``C_j`` is experiencing no failover right now.
    """
    return cluster.node.up_probability**cluster.active_nodes
