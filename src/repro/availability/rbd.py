"""Availability of reliability block diagrams.

The recursive algebra (independent components):

- leaf: the cluster's availability;
- serial: product of child availabilities;
- parallel: ``1 - prod(1 - child availability)``.

Leaf availability comes in two flavours:

- ``include_failover=False`` — pure breakdown availability (Eq. 2's
  inner sum).  For a plain chain the serial evaluation then equals
  exactly ``1 - B_s``.
- ``include_failover=True`` — additionally debits the cluster's raw
  failover downtime ``f t (K - K̂) / delta``.  This *approximates*
  Eq. 3 (it omits the cross-cluster ``P(X_i)`` weighting, which is a
  second-order correction — the weighting factor is within ``1e-3`` of
  1 at realistic parameters), because the exact weighting does not
  factor through arbitrary parallel compositions.
"""

from __future__ import annotations

from repro.availability.cluster_math import cluster_up_probability
from repro.availability.failover import cluster_yearly_failover_minutes
from repro.errors import ValidationError
from repro.topology.blocks import Block, ClusterBlock, ParallelBlock, SerialBlock
from repro.topology.cluster import ClusterSpec
from repro.units import MINUTES_PER_YEAR


def cluster_effective_availability(
    cluster: ClusterSpec, include_failover: bool = True
) -> float:
    """One cluster's availability, optionally net of failover windows."""
    availability = cluster_up_probability(cluster)
    if include_failover:
        failover_fraction = (
            cluster_yearly_failover_minutes(cluster) / MINUTES_PER_YEAR
        )
        availability = max(0.0, availability - failover_fraction)
    return availability


def block_availability(block: Block, include_failover: bool = True) -> float:
    """Recursive RBD availability of an arbitrary diagram."""
    if isinstance(block, ClusterBlock):
        return cluster_effective_availability(block.cluster, include_failover)
    if isinstance(block, SerialBlock):
        product = 1.0
        for child in block.children:
            product *= block_availability(child, include_failover)
        return product
    if isinstance(block, ParallelBlock):
        all_down = 1.0
        for child in block.children:
            all_down *= 1.0 - block_availability(child, include_failover)
        return 1.0 - all_down
    raise ValidationError(f"unknown block type {type(block).__name__!r}")


def block_downtime_probability(block: Block, include_failover: bool = True) -> float:
    """``1 - availability`` of the diagram."""
    return 1.0 - block_availability(block, include_failover)


def parallel_gain(block: Block, include_failover: bool = True) -> float:
    """How much the diagram's parallelism buys over serializing it.

    Compares the diagram against the fully *serial* arrangement of the
    same leaves.  Zero for already-serial diagrams; positive whenever a
    parallel block actually protects something.
    """
    from repro.topology.blocks import SerialBlock as _Serial, ClusterBlock as _Leaf

    serialized = _Serial(
        children=tuple(_Leaf(cluster) for cluster in block.iter_clusters())
    )
    return block_availability(block, include_failover) - block_availability(
        serialized, include_failover
    )
