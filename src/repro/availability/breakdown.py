"""Breakdown downtime probability ``B_s`` (paper Eq. 2).

The system is a serial chain: it is broken whenever at least one cluster
has more than ``K̂_i`` simultaneous node failures.

    B_s = 1 - prod_i Pr[cluster C_i up]
"""

from __future__ import annotations

from repro.availability.cluster_math import cluster_up_probability
from repro.topology.system import SystemTopology


def breakdown_downtime_probability(system: SystemTopology) -> float:
    """``B_s``: probability the system is down due to cluster breakdown."""
    product = 1.0
    for cluster in system.clusters:
        product *= cluster_up_probability(cluster)
    return 1.0 - product


def cluster_breakdown_contributions(system: SystemTopology) -> dict[str, float]:
    """Per-cluster *down* probabilities, keyed by cluster name.

    Useful for reporting which cluster dominates ``B_s``.  Note these do
    not sum to ``B_s`` exactly (overlap of independent events); they are
    the marginal down-probabilities ``1 - Pr[C_i up]``.
    """
    return {
        cluster.name: 1.0 - cluster_up_probability(cluster)
        for cluster in system.clusters
    }
