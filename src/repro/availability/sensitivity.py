"""Sensitivity analysis of ``U_s`` to the broker-supplied inputs.

The paper's threats-to-validity section (§IV) worries about skew in the
broker's estimates of ``P_i``, ``f_i`` and ``t_i``.  This module
quantifies how much a given skew matters: it computes finite-difference
sensitivities of system uptime to each input, per cluster, so a broker
can see which estimate deserves the most observation effort.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.availability.model import evaluate_availability
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology


@dataclass(frozen=True, slots=True)
class ClusterSensitivity:
    """Partial sensitivities of ``U_s`` for one cluster's inputs.

    Each value approximates ``dU_s/dx`` for input ``x``; sign is almost
    always negative (worse inputs lower uptime).
    """

    name: str
    wrt_down_probability: float
    wrt_failures_per_year: float
    wrt_failover_minutes: float

    @property
    def dominant_input(self) -> str:
        """Which input's *relative* error moves ``U_s`` most."""
        magnitudes = {
            "down_probability": abs(self.wrt_down_probability),
            "failures_per_year": abs(self.wrt_failures_per_year),
            "failover_minutes": abs(self.wrt_failover_minutes),
        }
        return max(magnitudes, key=magnitudes.get)


@dataclass(frozen=True, slots=True)
class SensitivityReport:
    """Sensitivities for every cluster of a system."""

    system_name: str
    baseline_uptime: float
    clusters: tuple[ClusterSensitivity, ...]

    def for_cluster(self, name: str) -> ClusterSensitivity:
        """Look up one cluster's sensitivities by name."""
        for entry in self.clusters:
            if entry.name == name:
                return entry
        raise KeyError(f"no sensitivity entry for cluster {name!r}")

    def describe(self) -> str:
        """Multi-line summary, one row per cluster."""
        lines = [
            f"Sensitivity of U_s for {self.system_name!r} "
            f"(baseline {self.baseline_uptime:.6f}):"
        ]
        for entry in self.clusters:
            lines.append(
                f"  {entry.name}: dU/dP={entry.wrt_down_probability:+.4g} "
                f"dU/df={entry.wrt_failures_per_year:+.4g} "
                f"dU/dt={entry.wrt_failover_minutes:+.4g} "
                f"(dominant: {entry.dominant_input})"
            )
        return "\n".join(lines)


def _uptime_with(system: SystemTopology, name: str, cluster: ClusterSpec) -> float:
    return evaluate_availability(system.replace_cluster(name, cluster)).uptime_probability


def sensitivity_analysis(
    system: SystemTopology,
    relative_step: float = 0.01,
) -> SensitivityReport:
    """Finite-difference sensitivities of ``U_s`` per cluster input.

    Uses a central difference with a relative step (default 1%) for each
    of ``P_i``, ``f_i`` and ``t_i``.  Inputs currently at zero use a
    small absolute step instead so the derivative is still defined.
    """
    baseline = evaluate_availability(system).uptime_probability
    entries = []
    for cluster in system.clusters:
        node = cluster.node

        step_p = max(node.down_probability * relative_step, 1e-9)
        lo_p = max(node.down_probability - step_p, 0.0)
        hi_p = min(node.down_probability + step_p, 1.0 - 1e-12)
        d_up = _uptime_with(
            system, cluster.name, replace(cluster, node=replace(node, down_probability=hi_p))
        )
        d_dn = _uptime_with(
            system, cluster.name, replace(cluster, node=replace(node, down_probability=lo_p))
        )
        wrt_p = (d_up - d_dn) / (hi_p - lo_p)

        step_f = max(node.failures_per_year * relative_step, 1e-9)
        lo_f = max(node.failures_per_year - step_f, 0.0)
        hi_f = node.failures_per_year + step_f
        f_up = _uptime_with(
            system, cluster.name, replace(cluster, node=replace(node, failures_per_year=hi_f))
        )
        f_dn = _uptime_with(
            system, cluster.name, replace(cluster, node=replace(node, failures_per_year=lo_f))
        )
        wrt_f = (f_up - f_dn) / (hi_f - lo_f)

        if cluster.has_ha:
            step_t = max(cluster.failover_minutes * relative_step, 1e-9)
            lo_t = max(cluster.failover_minutes - step_t, 0.0)
            hi_t = cluster.failover_minutes + step_t
            t_up = _uptime_with(system, cluster.name, replace(cluster, failover_minutes=hi_t))
            t_dn = _uptime_with(system, cluster.name, replace(cluster, failover_minutes=lo_t))
            wrt_t = (t_up - t_dn) / (hi_t - lo_t)
        else:
            # No HA means no failover mechanism: t_i is pinned at zero and
            # uptime has no dependence on it.
            wrt_t = 0.0

        entries.append(
            ClusterSensitivity(
                name=cluster.name,
                wrt_down_probability=wrt_p,
                wrt_failures_per_year=wrt_f,
                wrt_failover_minutes=wrt_t,
            )
        )
    return SensitivityReport(
        system_name=system.name,
        baseline_uptime=baseline,
        clusters=tuple(entries),
    )
