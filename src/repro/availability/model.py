"""Top-level availability evaluation: Eq. 1 and Eq. 4.

:func:`evaluate_availability` combines the breakdown term (Eq. 2) and
failover term (Eq. 3) into the system downtime ``D_s`` and uptime
``U_s``, together with a per-cluster decomposition for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.breakdown import breakdown_downtime_probability
from repro.availability.cluster_math import cluster_up_probability
from repro.availability.downtime import DowntimeBudget
from repro.availability.failover import (
    cluster_failover_downtime,
    failover_downtime_probability,
)
from repro.topology.system import SystemTopology


@dataclass(frozen=True, slots=True)
class ClusterAvailability:
    """Per-cluster slice of the availability report."""

    name: str
    up_probability: float
    breakdown_probability: float
    failover_contribution: float

    def describe(self) -> str:
        """One-line summary for report tables."""
        return (
            f"{self.name}: up={self.up_probability:.6f} "
            f"breakdown={self.breakdown_probability:.2e} "
            f"failover={self.failover_contribution:.2e}"
        )


@dataclass(frozen=True, slots=True)
class AvailabilityReport:
    """Full evaluation of a system's expected availability.

    Attributes
    ----------
    breakdown_probability:
        ``B_s`` (Eq. 2).
    failover_probability:
        ``F_s`` (Eq. 3).
    clusters:
        Per-cluster decomposition, in chain order.
    """

    system_name: str
    breakdown_probability: float
    failover_probability: float
    clusters: tuple[ClusterAvailability, ...]

    @property
    def downtime_probability(self) -> float:
        """``D_s = B_s + F_s`` (Eq. 1)."""
        return self.breakdown_probability + self.failover_probability

    @property
    def uptime_probability(self) -> float:
        """``U_s = 1 - D_s`` (Eq. 4)."""
        return 1.0 - self.downtime_probability

    @property
    def budget(self) -> DowntimeBudget:
        """The downtime expressed in operator units."""
        return DowntimeBudget(min(max(self.downtime_probability, 0.0), 1.0))

    def describe(self) -> str:
        """Multi-line human summary of the evaluation."""
        lines = [
            f"Availability of {self.system_name!r}: {self.budget.describe()}",
            f"  B_s (breakdown) = {self.breakdown_probability:.6e}",
            f"  F_s (failover)  = {self.failover_probability:.6e}",
        ]
        lines.extend(f"  {cluster.describe()}" for cluster in self.clusters)
        return "\n".join(lines)


def evaluate_availability(system: SystemTopology) -> AvailabilityReport:
    """Evaluate Eq. 1-4 for ``system`` and return the full report."""
    per_cluster = tuple(
        ClusterAvailability(
            name=cluster.name,
            up_probability=cluster_up_probability(cluster),
            breakdown_probability=1.0 - cluster_up_probability(cluster),
            failover_contribution=cluster_failover_downtime(system, cluster.name),
        )
        for cluster in system.clusters
    )
    return AvailabilityReport(
        system_name=system.name,
        breakdown_probability=breakdown_downtime_probability(system),
        failover_probability=failover_downtime_probability(system),
        clusters=per_cluster,
    )


def uptime_probability(system: SystemTopology) -> float:
    """Shortcut for ``evaluate_availability(system).uptime_probability``."""
    return evaluate_availability(system).uptime_probability
