"""Top-level availability evaluation: Eq. 1 and Eq. 4.

:func:`evaluate_availability` combines the breakdown term (Eq. 2) and
failover term (Eq. 3) into the system downtime ``D_s`` and uptime
``U_s``, together with a per-cluster decomposition for reporting.

Every number in Eq. 1-4 factors into *per-cluster* terms (a cluster's up
probability, its all-active-up probability and its raw failover rate)
combined with O(n) products and sums.  :func:`cluster_availability_terms`
computes one cluster's factor set and :func:`availability_from_terms`
recombines precomputed factor sets — the optimizer's
:class:`~repro.optimizer.engine.EvaluationEngine` caches one
:class:`ClusterTerms` per (cluster, technology) pairing and evaluates
each of the ``k^n`` candidates from the cache instead of re-running the
binomial sums.  The recombination performs the exact same float
operations in the exact same order as the direct evaluation, so both
paths are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.availability.cluster_math import (
    active_nodes_up_probability,
    cluster_up_probability,
)
from repro.availability.downtime import DowntimeBudget
from repro.availability.failover import cluster_yearly_failover_minutes
from repro.topology.cluster import ClusterSpec
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR


@dataclass(frozen=True, slots=True)
class ClusterAvailability:
    """Per-cluster slice of the availability report."""

    name: str
    up_probability: float
    breakdown_probability: float
    failover_contribution: float

    def describe(self) -> str:
        """One-line summary for report tables."""
        return (
            f"{self.name}: up={self.up_probability:.6f} "
            f"breakdown={self.breakdown_probability:.2e} "
            f"failover={self.failover_contribution:.2e}"
        )


@dataclass(frozen=True, slots=True)
class AvailabilityReport:
    """Full evaluation of a system's expected availability.

    Attributes
    ----------
    breakdown_probability:
        ``B_s`` (Eq. 2).
    failover_probability:
        ``F_s`` (Eq. 3).
    clusters:
        Per-cluster decomposition, in chain order.
    """

    system_name: str
    breakdown_probability: float
    failover_probability: float
    clusters: tuple[ClusterAvailability, ...]

    @property
    def downtime_probability(self) -> float:
        """``D_s = B_s + F_s`` (Eq. 1)."""
        return self.breakdown_probability + self.failover_probability

    @property
    def uptime_probability(self) -> float:
        """``U_s = 1 - D_s`` (Eq. 4)."""
        return 1.0 - self.downtime_probability

    @property
    def budget(self) -> DowntimeBudget:
        """The downtime expressed in operator units."""
        return DowntimeBudget(min(max(self.downtime_probability, 0.0), 1.0))

    def describe(self) -> str:
        """Multi-line human summary of the evaluation."""
        lines = [
            f"Availability of {self.system_name!r}: {self.budget.describe()}",
            f"  B_s (breakdown) = {self.breakdown_probability:.6e}",
            f"  F_s (failover)  = {self.failover_probability:.6e}",
        ]
        lines.extend(f"  {cluster.describe()}" for cluster in self.clusters)
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class ClusterTerms:
    """One cluster's factor set in the Eq. 1-4 decomposition.

    Attributes
    ----------
    up_probability:
        ``Pr[C_i up]`` — the binomial sum inside Eq. 2.
    active_up_probability:
        ``(1 - P_i)^(K_i - K̂_i)`` — the "no failover in progress" factor
        of Eq. 3.
    failover_rate:
        ``f_i t_i (K_i - K̂_i) / delta`` — the cluster's raw failover
        downtime fraction before weighting by the other clusters.
    """

    up_probability: float
    active_up_probability: float
    failover_rate: float


def cluster_availability_terms(cluster: ClusterSpec) -> ClusterTerms:
    """Compute one cluster's availability factors (cacheable per spec)."""
    return ClusterTerms(
        up_probability=cluster_up_probability(cluster),
        active_up_probability=active_nodes_up_probability(cluster),
        failover_rate=cluster_yearly_failover_minutes(cluster) / MINUTES_PER_YEAR,
    )


def availability_values_from_terms(
    terms: tuple[ClusterTerms, ...],
) -> tuple[float, float, list[float]]:
    """The bare float math of Eq. 1-4 over per-cluster factor sets.

    Returns ``(breakdown_probability, failover_probability,
    per_cluster_failover_contributions)`` — everything a report needs
    that is not plain per-term data.  Split out so evaluation-backend
    workers can run (and ship) just the math while report *objects* are
    built lazily elsewhere; :func:`availability_from_terms` composes the
    two, so every path performs the identical operations in the
    identical order and stays bit-identical.
    """
    up_product = 1.0
    for term in terms:
        up_product *= term.up_probability

    contributions = []
    for i, term in enumerate(terms):
        others_quiet = 1.0
        for j, other in enumerate(terms):
            if j != i:
                others_quiet *= other.active_up_probability
        contributions.append(term.failover_rate * others_quiet)
    failover_total = 0.0
    for contribution in contributions:  # cluster order, pinned (REP001)
        failover_total += contribution
    return 1.0 - up_product, failover_total, contributions


def availability_from_terms(
    system_name: str,
    cluster_names: tuple[str, ...],
    terms: tuple[ClusterTerms, ...],
) -> AvailabilityReport:
    """Recombine per-cluster factor sets into the full Eq. 1-4 report.

    Performs the same float operations in the same order as evaluating
    the assembled topology directly, so the result is bit-identical to
    :func:`evaluate_availability` on the corresponding system.
    """
    breakdown, failover, contributions = availability_values_from_terms(terms)

    per_cluster = tuple(
        ClusterAvailability(
            name=name,
            up_probability=term.up_probability,
            breakdown_probability=1.0 - term.up_probability,
            failover_contribution=contribution,
        )
        for name, term, contribution in zip(cluster_names, terms, contributions)
    )
    return AvailabilityReport(
        system_name=system_name,
        breakdown_probability=breakdown,
        failover_probability=failover,
        clusters=per_cluster,
    )


def evaluate_availability(system: SystemTopology) -> AvailabilityReport:
    """Evaluate Eq. 1-4 for ``system`` and return the full report."""
    terms = tuple(
        cluster_availability_terms(cluster) for cluster in system.clusters
    )
    return availability_from_terms(system.name, system.cluster_names, terms)


def uptime_probability(system: SystemTopology) -> float:
    """Shortcut for ``evaluate_availability(system).uptime_probability``."""
    return evaluate_availability(system).uptime_probability
