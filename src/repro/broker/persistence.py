"""Persisting the broker's telemetry database.

A real broker's value is its accumulated history — it must survive
restarts.  This module snapshots a :class:`TelemetryStore` to a plain
JSON document (versioned, like the topology wire format) and restores
it, so examples and tests can build a knowledge base once and reload it.

The snapshot format itself lives on the store
(:meth:`TelemetryStore.snapshot` / :meth:`TelemetryStore.from_snapshot`)
because the sharded ingestion pipeline (:mod:`repro.server.ingest`)
ships the same documents between shard workers; this module is the
file-level wrapper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.broker.telemetry import SNAPSHOT_VERSION, TelemetryStore
from repro.errors import ValidationError

__all__ = [
    "SNAPSHOT_VERSION",
    "load_telemetry",
    "save_telemetry",
    "telemetry_from_dict",
    "telemetry_to_dict",
]


def telemetry_to_dict(store: TelemetryStore) -> dict[str, Any]:
    """Snapshot a telemetry store to JSON-safe types."""
    return store.snapshot()


def telemetry_from_dict(payload: Mapping[str, Any]) -> TelemetryStore:
    """Restore a telemetry store from a snapshot dict."""
    return TelemetryStore.from_snapshot(payload)


def save_telemetry(store: TelemetryStore, path: str | Path) -> None:
    """Write a snapshot to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(telemetry_to_dict(store), indent=2, sort_keys=True)
    )


def load_telemetry(path: str | Path) -> TelemetryStore:
    """Read a snapshot back from ``path``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid telemetry snapshot JSON: {exc}") from exc
    return telemetry_from_dict(payload)
