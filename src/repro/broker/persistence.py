"""Persisting the broker's telemetry database.

A real broker's value is its accumulated history — it must survive
restarts.  This module snapshots a :class:`TelemetryStore` to a plain
JSON document (versioned, like the topology wire format) and restores
it, so examples and tests can build a knowledge base once and reload it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.broker.telemetry import TelemetryStore, _ComponentStats
from repro.errors import ValidationError

#: Current snapshot format version.
SNAPSHOT_VERSION = 1


def telemetry_to_dict(store: TelemetryStore) -> dict[str, Any]:
    """Snapshot a telemetry store to JSON-safe types."""
    components = []
    for (provider, kind), stats in sorted(store._stats.items()):
        components.append(
            {
                "provider": provider,
                "component_kind": kind,
                "exposure_minutes": stats.exposure_minutes,
                "down_minutes": stats.down_minutes,
                "failures": stats.failures,
                "failover_samples": list(stats.failover_samples),
            }
        )
    return {"snapshot_version": SNAPSHOT_VERSION, "components": components}


def telemetry_from_dict(payload: Mapping[str, Any]) -> TelemetryStore:
    """Restore a telemetry store from a snapshot dict."""
    version = payload.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValidationError(
            f"unsupported telemetry snapshot_version {version!r}; "
            f"this library reads version {SNAPSHOT_VERSION}"
        )
    store = TelemetryStore()
    for entry in payload.get("components", []):
        stats = _ComponentStats(
            exposure_minutes=float(entry["exposure_minutes"]),
            down_minutes=float(entry["down_minutes"]),
            failures=int(entry["failures"]),
            failover_samples=[float(x) for x in entry["failover_samples"]],
        )
        if stats.exposure_minutes < 0 or stats.down_minutes < 0 or stats.failures < 0:
            raise ValidationError(
                f"negative statistics in snapshot entry {entry!r}"
            )
        store._stats[(entry["provider"], entry["component_kind"])] = stats
    return store


def save_telemetry(store: TelemetryStore, path: str | Path) -> None:
    """Write a snapshot to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(telemetry_to_dict(store), indent=2, sort_keys=True)
    )


def load_telemetry(path: str | Path) -> TelemetryStore:
    """Read a snapshot back from ``path``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid telemetry snapshot JSON: {exc}") from exc
    return telemetry_from_dict(payload)
