"""Recommendation requests: what a customer hands the broker.

Customers do not know component reliability — that is the broker's
database.  A request therefore describes the base architecture in
*requirement* terms (clusters, layers, node counts, optional SKU
preferences) plus the contract; the broker fills in ``P̂/f̂/t̂`` and
prices when materializing topologies per provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.optimizer.engine import (
    ENGINE_BACKENDS,
    ENGINE_MODES,
    TERM_TABLE_BACKENDS,
)
from repro.sla.contract import Contract
from repro.topology.cluster import COMPONENT_KIND_BY_LAYER, Layer

#: Maps architectural layers to the broker's component-kind vocabulary
#: (defined next to ``Layer`` itself; aliased here for callers).
LAYER_COMPONENT_KIND = COMPONENT_KIND_BY_LAYER

#: Search strategies a request may ask for.
STRATEGIES = ("pruned", "brute-force", "branch-and-bound")


@dataclass(frozen=True)
class ClusterRequirement:
    """One cluster of the customer's base architecture."""

    name: str
    layer: Layer
    nodes: int
    sku: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("ClusterRequirement.name must be non-empty")
        if self.nodes < 1:
            raise ValidationError(f"nodes must be >= 1, got {self.nodes!r}")

    @property
    def component_kind(self) -> str:
        """The telemetry vocabulary word for this cluster's nodes."""
        return LAYER_COMPONENT_KIND[self.layer]


@dataclass(frozen=True)
class RecommendationRequest:
    """A complete brokered-service request (§II-C inputs 1 and 2)."""

    system_name: str
    clusters: tuple[ClusterRequirement, ...]
    contract: Contract
    providers: tuple[str, ...] | None = None
    strategy: str = "pruned"
    engine: str = "incremental"
    parallel: bool = False
    backend: str | None = None
    extended_catalog: bool = False
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.system_name:
            raise ValidationError("system_name must be non-empty")
        if not self.clusters:
            raise ValidationError("request must contain at least one cluster")
        names = [cluster.name for cluster in self.clusters]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate cluster names in request: {names}")
        if self.strategy not in STRATEGIES:
            raise ValidationError(
                f"unknown strategy {self.strategy!r}; valid: {STRATEGIES}"
            )
        if self.engine not in ENGINE_MODES:
            raise ValidationError(
                f"unknown engine mode {self.engine!r}; valid: {ENGINE_MODES}"
            )
        if self.backend is not None and self.backend not in ENGINE_BACKENDS:
            raise ValidationError(
                f"unknown evaluation backend {self.backend!r}; "
                f"valid: {ENGINE_BACKENDS}"
            )
        if self.backend in TERM_TABLE_BACKENDS and self.engine == "direct":
            # Reject at the request boundary, like every other bad-shape
            # combination — otherwise it surfaces only as a failed job.
            raise ValidationError(
                f"backend={self.backend!r} requires engine='incremental': "
                "candidates are evaluated from per-cluster term tables, "
                "which cannot drive the full-topology direct path"
            )


def three_tier_request(
    contract: Contract,
    compute_nodes: int = 3,
    system_name: str = "three-tier",
    **kwargs,
) -> RecommendationRequest:
    """Convenience constructor for the classic three-tier request."""
    return RecommendationRequest(
        system_name=system_name,
        clusters=(
            ClusterRequirement("compute", Layer.COMPUTE, compute_nodes),
            ClusterRequirement("storage", Layer.STORAGE, 1),
            ClusterRequirement("network", Layer.NETWORK, 1),
        ),
        contract=contract,
        **kwargs,
    )
