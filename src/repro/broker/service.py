"""The brokered service itself: request in, recommendation out.

:class:`BrokerService` wires the pieces together exactly as Figure 2
sketches: the customer supplies a base architecture and contract; the
broker supplies reliability estimates (telemetry), rate-carded HA prices
(rate cards) and the optimization (``k^n`` enumeration with pruning);
out comes the recommended HA-enabled topology per provider, ranked by
total monthly cost.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.broker.knowledge_base import KnowledgeBase
from repro.broker.request import ClusterRequirement, RecommendationRequest
from repro.broker.telemetry import TelemetryStore
from repro.cloud.deployment import default_sku
from repro.cloud.faults import FaultInjector
from repro.cloud.provider import CloudProvider, Resource, ResourceKind
from repro.errors import (
    BrokerError,
    InsufficientTelemetryError,
    UnknownNameError,
    unknown_name_message,
)
from repro.optimizer.branch_bound import branch_and_bound_optimize
from repro.optimizer.brute_force import brute_force_optimize
from repro.optimizer.engine import EngineStats
from repro.optimizer.pruned import pruned_optimize
from repro.optimizer.result import OptimizationResult
from repro.rng import make_rng
from repro.topology.builder import TopologyBuilder
from repro.topology.cluster import Layer
from repro.topology.system import SystemTopology
from repro.units import MINUTES_PER_YEAR, format_money

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.broker.api import BrokerSession, EngineCache

_STRATEGY_FUNCTIONS = {
    "pruned": pruned_optimize,
    "brute-force": brute_force_optimize,
    "branch-and-bound": branch_and_bound_optimize,
}

#: Fleet size per component kind used by ``observe_provider``.
_DEFAULT_FLEET = {"vm": 40, "volume": 25, "gateway": 10}


def broker_rng(seed: int | random.Random | None) -> random.Random:
    """The broker's single seed-normalization point.

    Every stochastic entry point of the service (synthetic telemetry
    observation, fault injection) funnels its ``seed`` argument through
    here, so one integer seed pins the whole observation pipeline:
    passing the same int twice replays the identical event stream, and
    passing a shared :class:`random.Random` lets callers interleave
    several observations on one reproducible stream.
    """
    return make_rng(seed)


@dataclass(frozen=True)
class ProviderRecommendation:
    """The optimization outcome for one candidate provider."""

    provider_name: str
    base_system: SystemTopology
    result: OptimizationResult
    engine_stats: EngineStats | None = None

    @property
    def monthly_total(self) -> float:
        """Best option's Eq. 5 TCO plus the provider's base infra cost."""
        return self.result.best.tco.total_with_base

    def describe(self) -> str:
        """One-line provider ranking row."""
        best = self.result.best
        return (
            f"{self.provider_name:<12} {best.label:<28} "
            f"U_s={best.tco.uptime_probability * 100:8.4f}%  "
            f"base={format_money(best.tco.base_infra_cost):>12}  "
            f"TCO+base={format_money(self.monthly_total):>12}"
        )


@dataclass(frozen=True)
class RecommendationReport:
    """The broker's answer: per-provider results, best placement first."""

    request_name: str
    recommendations: tuple[ProviderRecommendation, ...]

    def __post_init__(self) -> None:
        if not self.recommendations:
            raise BrokerError("recommendation report has no providers")

    @property
    def best(self) -> ProviderRecommendation:
        """The cheapest provider placement (including base infra)."""
        return min(self.recommendations, key=lambda rec: rec.monthly_total)

    def for_provider(self, provider_name: str) -> ProviderRecommendation:
        """Look up one provider's recommendation."""
        for recommendation in self.recommendations:
            if recommendation.provider_name == provider_name:
                return recommendation
        raise UnknownNameError(
            unknown_name_message(
                "provider",
                provider_name,
                [rec.provider_name for rec in self.recommendations],
                label="have",
            )
        )

    def describe(self) -> str:
        """Ranked multi-line summary across providers."""
        ranked = sorted(self.recommendations, key=lambda rec: rec.monthly_total)
        lines = [f"Brokered recommendation for {self.request_name!r}:"]
        lines.extend(f"  {recommendation.describe()}" for recommendation in ranked)
        lines.append(
            f"  => place on {self.best.provider_name} as "
            f"{self.best.result.best.label}"
        )
        return "\n".join(lines)


class BrokerService:
    """A hybrid cloud service broker (Figure 2)."""

    def __init__(
        self,
        providers: tuple[CloudProvider, ...],
        telemetry: TelemetryStore | None = None,
        min_failure_samples: int = 5,
    ) -> None:
        if not providers:
            raise BrokerError("broker needs at least one provider")
        names = [provider.name for provider in providers]
        if len(set(names)) != len(names):
            raise BrokerError(f"duplicate provider names: {names}")
        self.providers = {provider.name: provider for provider in providers}
        self.telemetry = telemetry or TelemetryStore()
        self.knowledge_base = KnowledgeBase(
            self.telemetry, min_failure_samples=min_failure_samples
        )

    # -- telemetry acquisition ---------------------------------------------

    def observe_provider(
        self,
        provider_name: str,
        years: float = 3.0,
        fleet: dict[str, int] | None = None,
        seed: int | random.Random | None = None,
    ) -> int:
        """Accumulate ``years`` of synthetic fleet observations.

        Stands in for the broker's long-timeline production visibility:
        provisions a monitoring fleet per component kind, replays the
        provider's ground-truth failure processes over the horizon, and
        ingests the resulting event stream.  Returns events ingested.
        """
        if years <= 0.0:
            raise BrokerError(f"years must be > 0, got {years!r}")
        provider = self.provider(provider_name)
        fleet = dict(_DEFAULT_FLEET, **(fleet or {}))
        horizon = years * MINUTES_PER_YEAR
        rng = broker_rng(seed)

        resources: list[Resource] = []
        for kind_name, count in fleet.items():
            kind = ResourceKind(kind_name)
            sku = _observation_sku(provider, kind)
            for _ in range(count):
                if kind is ResourceKind.VOLUME:
                    resources.append(provider.provision_volume(sku, role="telemetry"))
                elif kind is ResourceKind.GATEWAY:
                    resources.append(provider.provision_gateway(sku, role="telemetry"))
                else:
                    resources.append(provider.provision_vm(sku, role="telemetry"))
            self.telemetry.register_exposure(
                provider.name, kind_name, count, horizon
            )

        injector = FaultInjector(provider, seed=rng)
        events = injector.inject(resources, horizon_minutes=horizon)
        ingested = self.telemetry.ingest(events)
        for resource in resources:
            provider.deprovision(resource.resource_id)
        return ingested

    def observe_all(
        self,
        years: float = 3.0,
        seed: int | random.Random | None = None,
    ) -> int:
        """Observe every registered provider; returns total events.

        The seed is normalized once through :func:`broker_rng` and the
        resulting stream is shared across providers in sorted-name
        order, so a single int seed reproduces the whole fleet's
        telemetry exactly.
        """
        rng = broker_rng(seed)
        return sum(
            self.observe_provider(name, years=years, seed=rng)
            for name in sorted(self.providers)
        )

    # -- recommendation ----------------------------------------------------

    def provider(self, name: str) -> CloudProvider:
        """Look up a registered provider by name."""
        try:
            return self.providers[name]
        except KeyError as exc:
            raise UnknownNameError(
                unknown_name_message(
                    "provider", name, self.providers, label="registered"
                )
            ) from exc

    def materialize_topology(
        self, request: RecommendationRequest, provider: CloudProvider
    ) -> SystemTopology:
        """Fill a request's requirements with estimates and prices.

        Node reliability comes from the knowledge base (never from the
        provider's ground truth — the broker only knows what it has
        observed); node prices come from the provider's catalog.
        """
        builder = TopologyBuilder(request.system_name)
        for requirement in request.clusters:
            sku_name = requirement.sku or default_sku(provider, requirement.layer)
            monthly_cost = _sku_price(provider, requirement, sku_name)
            node = self.knowledge_base.node_spec(
                provider.name, requirement.component_kind, monthly_cost
            )
            builder.add_cluster(
                name=requirement.name,
                layer=requirement.layer,
                node=node,
                nodes=requirement.nodes,
            )
        return builder.build()

    def session(
        self,
        *,
        engine_cache: "EngineCache | None" = None,
        cache_capacity: int | None = None,
        max_workers: int | None = None,
        max_finished_jobs: int | None = None,
        finished_job_ttl: float | None = None,
        backend: str | None = None,
        megabatch=False,
        tracer=None,
        job_id_start: int | None = None,
        job_id_stride: int | None = None,
    ) -> "BrokerSession":
        """Open a v2 :class:`~repro.broker.api.BrokerSession` over this broker.

        The session is the supported entry point for recommendations:
        it owns the cross-request engine cache, the batched/async job
        lifecycle and the streaming protocol.  Keyword arguments default
        to the session's own defaults when ``None``; ``backend`` sets
        the session's default evaluation backend, ``finished_job_ttl``
        enables age-based eviction of finished (even never-retrieved)
        jobs, and ``megabatch`` (bool or
        :class:`~repro.optimizer.megabatch.MegabatchConfig`) stacks
        concurrent same-engine vector requests into one numpy pass.
        ``tracer`` (a :class:`repro.obs.Tracer`) enables per-phase span
        recording; ``None`` leaves tracing disabled at zero cost.
        ``job_id_start``/``job_id_stride`` mint job ids from an
        arithmetic progression so partitioned worker processes can issue
        ids from disjoint sequences (see :mod:`repro.server.gateway`).
        """
        from repro.broker.api import BrokerSession

        kwargs: dict = {
            "engine_cache": engine_cache,
            "finished_job_ttl": finished_job_ttl,
            "backend": backend,
            "megabatch": megabatch,
            "tracer": tracer,
        }
        if cache_capacity is not None:
            kwargs["cache_capacity"] = cache_capacity
        if max_workers is not None:
            kwargs["max_workers"] = max_workers
        if max_finished_jobs is not None:
            kwargs["max_finished_jobs"] = max_finished_jobs
        if job_id_start is not None:
            kwargs["job_id_start"] = job_id_start
        if job_id_stride is not None:
            kwargs["job_id_stride"] = job_id_stride
        return BrokerSession(self, **kwargs)

    def recommend(self, request: RecommendationRequest) -> RecommendationReport:
        """Run the full brokered optimization for a request.

        .. deprecated:: v2
            Compatibility shim over a one-request
            :class:`~repro.broker.api.BrokerSession`; call
            :meth:`session` and use ``session.recommend(...)`` (or the
            batched/streaming entry points) instead.  Results are
            identical — but each shim call builds and discards a fresh
            engine cache, forfeiting cross-request reuse.
        """
        warnings.warn(
            "BrokerService.recommend() is deprecated; open a BrokerSession "
            "via BrokerService.session() to reuse engines across requests",
            DeprecationWarning,
            stacklevel=2,
        )
        with self.session() as session:
            return session.recommend(request)


def _observation_sku(provider: CloudProvider, kind: ResourceKind) -> str:
    """Cheapest SKU per kind — telemetry fleets don't need big boxes."""
    card = provider.rate_card
    if kind is ResourceKind.VOLUME:
        return card.volume_types[0].name
    if kind is ResourceKind.GATEWAY:
        return card.gateway_types[0].name
    return card.instance_types[0].name


def _sku_price(
    provider: CloudProvider, requirement: ClusterRequirement, sku_name: str
) -> float:
    """Monthly price of the SKU serving a requirement."""
    card = provider.rate_card
    if requirement.layer is Layer.STORAGE:
        return card.volume_type(sku_name).monthly_price
    if requirement.layer is Layer.NETWORK:
        return card.gateway_type(sku_name).monthly_price
    return card.instance_type(sku_name).monthly_price
