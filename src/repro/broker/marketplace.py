"""Cross-provider marketplace comparison (extension toward §V's
"commercial meta-cloud").

``compare_providers`` runs the same request against every registered
provider and lays the outcomes side by side: best option per provider,
expected uptime, and total monthly cost including the base fleet — the
numbers a broker's marketplace UI would show a customer choosing where
to land a workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.request import RecommendationRequest
from repro.broker.service import BrokerService, ProviderRecommendation
from repro.errors import BrokerError
from repro.units import format_money


@dataclass(frozen=True)
class MarketplaceComparison:
    """Ranked cross-provider placement comparison."""

    request_name: str
    ranked: tuple[ProviderRecommendation, ...]

    def __post_init__(self) -> None:
        if not self.ranked:
            raise BrokerError("marketplace comparison has no entries")

    @property
    def winner(self) -> ProviderRecommendation:
        """The cheapest total placement."""
        return self.ranked[0]

    @property
    def spread(self) -> float:
        """Monthly dollars between the best and worst placement."""
        return self.ranked[-1].monthly_total - self.ranked[0].monthly_total

    def premium_over_winner(self, provider_name: str) -> float:
        """How much more a given provider costs than the winner."""
        entry = next(
            (rec for rec in self.ranked if rec.provider_name == provider_name),
            None,
        )
        if entry is None:
            raise BrokerError(
                f"provider {provider_name!r} not in comparison; have "
                f"{[rec.provider_name for rec in self.ranked]}"
            )
        return entry.monthly_total - self.winner.monthly_total

    def describe(self) -> str:
        """Marketplace table, winner first."""
        lines = [
            f"Marketplace comparison for {self.request_name!r} "
            f"(spread {format_money(self.spread)}/month):"
        ]
        for rank, entry in enumerate(self.ranked, start=1):
            lines.append(f"  {rank}. {entry.describe()}")
        return "\n".join(lines)


def compare_providers(
    broker: BrokerService, request: RecommendationRequest
) -> MarketplaceComparison:
    """Rank all capable providers for a request by total monthly cost."""
    with broker.session() as session:
        report = session.recommend(request)
    ranked = tuple(
        sorted(report.recommendations, key=lambda rec: rec.monthly_total)
    )
    return MarketplaceComparison(request_name=request.system_name, ranked=ranked)
